"""ABL1 — ablation of Algorithm 1's 1/2 emission threshold.

Design choice probed: the paper rounds at every 1/2 of fractional mass.
A smaller threshold emits more calibrations (worse objective); a larger
threshold emits fewer but voids the Corollary 6 feasibility argument (the
carryover bound becomes > 1/2, so the 2x write-back no longer covers a
discarded job in the worst case).

Measured here: calibrations and EDF success rate per threshold across a
seed sweep — quantifying what the provable 1/2 costs versus aggressive
(unsafe) thresholds on benign inputs.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import InfeasibleScheduleError, validate_tise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowConfig, LongWindowSolver

THRESHOLDS = [0.25, 0.4, 0.5, 0.6, 0.75, 1.0]
SEEDS = range(8)


def bench_abl_rounding_threshold(benchmark, report):
    table = Table(
        title="ABL1: Algorithm 1 threshold ablation (paper: 0.5)",
        columns=[
            "threshold", "EDF success", "mean cals (ok runs)",
            "mean unpruned", "mean machines",
        ],
    )
    outcomes: dict[float, dict] = {}
    for threshold in THRESHOLDS:
        solver = LongWindowSolver(
            LongWindowConfig(rounding_threshold=threshold)
        )
        ok = 0
        cals: list[int] = []
        unpruned: list[int] = []
        machines: list[int] = []
        for seed in SEEDS:
            gen = long_window_instance(12, 2, 10.0, seed)
            try:
                result = solver.solve(gen.instance)
            except InfeasibleScheduleError:
                continue
            if not validate_tise(gen.instance, result.schedule).ok:
                continue
            ok += 1
            cals.append(result.num_calibrations)
            unpruned.append(result.unpruned_calibrations)
            machines.append(result.machines_used)
        outcomes[threshold] = {"ok": ok}
        table.add_row(
            threshold,
            f"{ok}/{len(list(SEEDS))}",
            sum(cals) / ok if ok else float("nan"),
            sum(unpruned) / ok if ok else float("nan"),
            sum(machines) / ok if ok else float("nan"),
        )
    table.add_note(
        "thresholds <= 0.5 are the provably safe regime (Cor. 6's feasibility "
        "argument needs them); larger thresholds void the guarantee — they "
        "may succeed on benign instances (as here) but lose the worst-case "
        "proof while buying only slightly fewer calibrations"
    )
    report(table, "abl_rounding_threshold")
    assert outcomes[0.5]["ok"] == len(list(SEEDS))
    assert outcomes[0.25]["ok"] == len(list(SEEDS))

    gen = long_window_instance(12, 2, 10.0, 0)
    solver = LongWindowSolver()
    benchmark(lambda: solver.solve(gen.instance))
