"""L7 — empirical verification of Lemma 7 (rounding quality).

Paper claim: Algorithm 1's output is a valid calibration calendar on 3m'
machines with at most 2 C* calibrations, where C* upper-bounds the LP value.

Measured here: the integer/fractional inflation factor across a sweep —
always <= 2 (tight when the mass is a multiple of 1/2, looser otherwise) —
and the calendar's max concurrency vs the 3m' machine pool (Lemma 4).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.instances import long_window_instance
from repro.longwindow import round_calibrations, solve_tise_lp

SWEEP = [
    (8, 1, 0), (8, 1, 1), (12, 2, 2), (16, 2, 3), (20, 3, 4), (24, 2, 5),
]


def bench_lem7_rounding_quality(benchmark, report):
    T = 10.0
    table = Table(
        title="L7: Algorithm 1 rounding quality",
        columns=[
            "n", "m", "seed", "LP mass", "rounded", "inflation (<=2)",
            "max concurrent", "pool 3m'", "overlaps",
        ],
    )
    sample = None
    for n, m, seed in SWEEP:
        gen = long_window_instance(n, m, T, seed)
        m_prime = 3 * m
        lp = solve_tise_lp(gen.instance.jobs, T, m_prime)
        result = round_calibrations(lp.calibrations, m_prime, T)
        if sample is None:
            sample = (lp, m_prime)
        overlaps = len(result.schedule.overlap_violations())
        table.add_row(
            n, m, seed,
            result.fractional_mass,
            result.num_calibrations,
            result.inflation,
            result.schedule.max_concurrent(),
            3 * m_prime,
            overlaps,
        )
        assert overlaps == 0
        assert result.inflation <= 2.0 + 1e-6
        assert result.schedule.max_concurrent() <= 3 * m_prime
    table.add_note(
        "inflation = integer calibrations / fractional LP mass; Lemma 7 "
        "bounds it by 2 and Lemma 4 bounds concurrency by the 3m' pool"
    )
    report(table, "lem7_rounding_quality")

    lp, m_prime = sample
    benchmark(lambda: round_calibrations(lp.calibrations, m_prime, T))
