"""UNIT — prior-work comparison on the Bender et al. [5] unit-job regime.

Paper context (Section 1): Bender et al. solved the p_j = 1 case — optimal
on one machine, 2-approximate on m.  This paper's contribution is the
general non-unit case; on unit inputs the general machinery still works but
pays its constant factors.

Measured here on unit instances: exact OPT, lazy binning (prior work), and
the general combined solver.  Expected shape ("who wins"): lazy binning
matches OPT on one machine and stays within 2x on several; the general
solver is feasible but pays its augmentation constants — exactly the
crossover the paper's introduction motivates (use [5] for unit jobs, this
paper for non-unit).  The library encodes that advice as
``ISEConfig(specialize_unit=True)``, whose column must match lazy binning.
"""

from __future__ import annotations

from repro import ISEConfig, solve_ise
from repro.analysis import Table, ratio
from repro.baselines import exact_unit_calibrations, lazy_binning
from repro.core import validate_ise
from repro.instances import unit_instance

SWEEP = [
    (6, 1, 3, 0), (6, 1, 3, 1), (6, 1, 3, 2),
    (7, 2, 3, 0), (7, 2, 3, 1), (8, 2, 4, 2),
]


def bench_unit_baselines(benchmark, report):
    table = Table(
        title="UNIT: exact vs lazy binning (prior work [5]) vs general solver",
        columns=[
            "n", "m", "T", "seed", "exact OPT", "lazy bin", "lazy/OPT",
            "general", "general/OPT", "specialized",
        ],
    )
    single_machine_optimal = True
    lazy_ratios = []
    for n, m, T, seed in SWEEP:
        gen = unit_instance(n, m, T, seed)
        exact = exact_unit_calibrations(gen.instance, max_calibrations=9)
        lazy = lazy_binning(gen.instance)
        assert validate_ise(gen.instance, lazy).ok
        general = solve_ise(gen.instance)
        assert validate_ise(gen.instance, general.schedule).ok
        specialized = solve_ise(gen.instance, ISEConfig(specialize_unit=True))
        lr = ratio(lazy.num_calibrations, exact)
        lazy_ratios.append(lr)
        if m == 1 and lazy.num_calibrations != exact:
            single_machine_optimal = False
        table.add_row(
            n, m, T, seed, exact,
            lazy.num_calibrations, lr,
            general.num_calibrations,
            ratio(general.num_calibrations, exact),
            specialized.num_calibrations,
        )
        assert lazy.num_calibrations <= 2 * exact  # the [5] 2-approx envelope
        assert specialized.num_calibrations == lazy.num_calibrations
    table.add_note(
        "lazy binning is optimal on every single-machine row "
        f"({'confirmed' if single_machine_optimal else 'VIOLATED'}); the "
        "general solver pays its constant-factor augmentation on this "
        "special case — the crossover the paper's introduction describes"
    )
    report(table, "unit_baselines")
    assert single_machine_optimal

    gen = unit_instance(7, 2, 3, 0)
    benchmark(lambda: lazy_binning(gen.instance))
