"""Shared fixtures for the benchmark harness.

Every bench prints a paper-style result table to stdout AND mirrors it into
``benchmarks/results/<experiment>.txt`` so the regenerated "figures" survive
the run.  The pytest-benchmark fixture times a representative kernel of each
experiment; the table contents are the reproduction artifact.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any

import pytest

from repro.analysis import Table, write_report

RESULTS_DIR = Path(__file__).parent / "results"

sys.path.insert(0, str(Path(__file__).parent))  # benchmarks/ is not a package
from perf_artifact import write_section  # noqa: E402


@pytest.fixture
def report():
    """Return a function that prints a Table and mirrors it to results/."""

    def _report(table: Table, name: str) -> None:
        table.print()
        write_report(table, RESULTS_DIR, name)

    return _report


@pytest.fixture
def perf_json():
    """Return a function recording a section of the BENCH_perf.json artifact.

    ``perf_json(section, payload)`` writes the payload to
    ``benchmarks/results/perf/<section>.json`` and re-merges all recorded
    sections into ``BENCH_perf.json`` at the repository root (see
    ``benchmarks/perf_artifact.py`` and docs/performance.md).
    """

    def _record(section: str, payload: dict[str, Any]) -> None:
        path = write_section(section, payload)
        print(f"[perf] recorded section {section!r} -> {path}")

    return _record
