"""Shared fixtures for the benchmark harness.

Every bench prints a paper-style result table to stdout AND mirrors it into
``benchmarks/results/<experiment>.txt`` so the regenerated "figures" survive
the run.  The pytest-benchmark fixture times a representative kernel of each
experiment; the table contents are the reproduction artifact.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Table, write_report

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Return a function that prints a Table and mirrors it to results/."""

    def _report(table: Table, name: str) -> None:
        table.print()
        write_report(table, RESULTS_DIR, name)

    return _report
