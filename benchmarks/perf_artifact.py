"""The machine-readable perf baseline artifact (``BENCH_perf.json``).

Perf-oriented benches record their measurements as JSON *sections* (one
file per section under ``benchmarks/results/perf/``); every write also
re-merges all sections into ``BENCH_perf.json`` at the repository root, so
the artifact is complete after any subset of the benches has run.  The
``collect_results.py`` aggregator performs the same merge, letting the
artifact be rebuilt without re-running anything.

Format (schema 1)::

    {
      "schema": 1,
      "sections": {
        "<section>": {...bench-specific payload...},
        ...
      }
    }

Section payloads are documented in docs/performance.md.  Everything in the
artifact that is structural (LP rows/cols/nonzeros, calibration counts,
schedule equality) is deterministic; wall-time fields are measurements and
vary run to run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.atomicio import atomic_write_text

ROOT = Path(__file__).resolve().parent.parent
PERF_DIR = Path(__file__).resolve().parent / "results" / "perf"
BENCH_PERF_PATH = ROOT / "BENCH_perf.json"
SCHEMA_VERSION = 1

__all__ = [
    "BENCH_PERF_PATH",
    "PERF_DIR",
    "SCHEMA_VERSION",
    "merge_sections",
    "write_section",
]


def write_section(section: str, payload: dict[str, Any]) -> Path:
    """Persist one section and refresh the merged artifact."""
    PERF_DIR.mkdir(parents=True, exist_ok=True)
    path = PERF_DIR / f"{section}.json"
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    merge_sections()
    return path


def merge_sections() -> Path:
    """Merge every recorded section into ``BENCH_perf.json``."""
    sections: dict[str, Any] = {}
    if PERF_DIR.is_dir():
        for path in sorted(PERF_DIR.glob("*.json")):
            sections[path.stem] = json.loads(path.read_text())
    artifact = {"schema": SCHEMA_VERSION, "sections": sections}
    atomic_write_text(
        BENCH_PERF_PATH, json.dumps(artifact, indent=2, sort_keys=True) + "\n"
    )
    return BENCH_PERF_PATH
