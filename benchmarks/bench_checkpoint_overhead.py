"""CKPT — journaling overhead of checkpointed sweeps.

A checkpointed sweep pays one JSON encode plus one flushed-and-fsynced
journal append per completed shard (see ``repro.core.checkpoint``).  The
acceptance bar is <2% end-to-end overhead on a serial sweep — crash safety
must be cheap enough to leave on for every long run.

Measured here: best-of-N wall time for ``run_sweep_report`` over a fixed
case list, plain vs with ``checkpoint_dir`` set (a fresh journal every
repeat, so each timed run journals every shard).  ``PERF_SMOKE=1``
restricts the sweep to its two smallest case groups.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time
from pathlib import Path

from repro.analysis import Table
from repro.analysis.sweep import SweepCase, run_sweep_report

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

FAMILIES = ("mixed",) if PERF_SMOKE else ("mixed", "short")
SEEDS = range(2 if PERF_SMOKE else 4)
SIZES = [40, 80] if PERF_SMOKE else [40, 80, 100]
REPEATS = 9


def _cases(n: int) -> list[SweepCase]:
    return [
        SweepCase(family=family, n=n, machines=2, calibration_length=4.0, seed=seed)
        for family in FAMILIES
        for seed in SEEDS
    ]


def _best_pair_ms(cases: list[SweepCase], scratch: Path) -> tuple[float, float]:
    """Best-of-N (plain, checkpointed) wall times, interleaved so clock
    drift and cache effects hit both configs equally.  Each checkpointed
    repeat journals from scratch — the overhead measured is the full
    per-shard encode + flush + fdatasync cost, not a warm resume."""
    plain_samples = []
    checkpointed_samples = []
    for index in range(REPEATS):
        tic = time.perf_counter()
        run_sweep_report(cases, mode="serial")
        plain_samples.append((time.perf_counter() - tic) * 1e3)

        checkpoint_dir = scratch / f"run{index}"
        checkpoint_dir.mkdir()
        tic = time.perf_counter()
        run_sweep_report(cases, mode="serial", checkpoint_dir=checkpoint_dir)
        checkpointed_samples.append((time.perf_counter() - tic) * 1e3)
    return min(plain_samples), min(checkpointed_samples)


def bench_checkpoint_overhead(benchmark, report, perf_json):
    table = Table(
        title="CKPT: journaling overhead of checkpointed sweeps",
        columns=["n", "cases", "plain ms", "checkpointed ms", "overhead %"],
    )
    overheads = []
    rows = []
    scratch = Path(tempfile.mkdtemp(prefix="bench-ckpt-"))
    try:
        for n in SIZES:
            cases = _cases(n)
            run_sweep_report(cases, mode="serial")  # warm every code path
            size_scratch = scratch / str(n)
            size_scratch.mkdir(parents=True)
            plain, checkpointed = _best_pair_ms(cases, size_scratch)
            overhead = (checkpointed - plain) / plain * 100.0
            overheads.append(overhead)
            rows.append(
                {
                    "n": n,
                    "cases": len(cases),
                    "plain_ms": round(plain, 3),
                    "checkpointed_ms": round(checkpointed, 3),
                    "overhead_pct": round(overhead, 3),
                }
            )
            table.add_row(n, len(cases), plain, checkpointed, overhead)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    table.add_note(
        f"overhead = (checkpointed - plain) / plain on best-of-{REPEATS} "
        "interleaved serial run_sweep_report calls; every repeat journals "
        "every shard (fresh journal, flush + fdatasync per record)"
    )
    table.add_note(
        f"mean overhead {statistics.mean(overheads):+.2f}% "
        "(acceptance bar: < 2%)"
    )
    report(table, "checkpoint_overhead")
    perf_json(
        "checkpoint_overhead",
        {
            "repeats": REPEATS,
            "mean_overhead_pct": round(statistics.mean(overheads), 3),
            "cases": rows,
        },
    )

    cases = _cases(SIZES[0])
    benchmark(lambda: run_sweep_report(cases, mode="serial"))
