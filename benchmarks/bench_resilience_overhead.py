"""RES — happy-path overhead of the resilience layer.

The resilience machinery (ambient budget polling in the simplex/B&B inner
loops, per-attempt closures, report bookkeeping) must be effectively free
when nothing fails: the acceptance bar is <2% end-to-end overhead on the
``bench_perf_scaling`` sizes.

Measured here: best-of-N end-to-end solve wall time per instance size, for
the strict default config vs the fully armed config (``strict=False`` plus
an active 300 s wall-clock budget — the budget never expires, so the cost
measured is pure bookkeeping).  Repeats interleave the two configs so
clock drift and cache effects hit both equally.
"""

from __future__ import annotations

import statistics
import time

from repro.analysis import Table
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import long_window_instance, short_window_instance

LONG_SIZES = [8, 16, 24, 32]
SHORT_SIZES = [10, 20, 40, 60]
REPEATS = 9

_BASELINE = ISEConfig()
_RESILIENT = ISEConfig(strict=False, timeout=300.0)


def _best_ms(instance, config) -> float:
    """Best-of-N wall time: the minimum filters scheduler/GC noise, which
    otherwise dwarfs the sub-percent effect being measured."""
    samples = []
    for _ in range(REPEATS):
        tic = time.perf_counter()
        solve_ise(instance, config)
        samples.append((time.perf_counter() - tic) * 1e3)
    return min(samples)


def bench_resilience_overhead(benchmark, report, perf_json):
    table = Table(
        title="RES: happy-path overhead of budgets + fallback chains",
        columns=[
            "family", "n", "strict ms", "resilient ms", "overhead %",
        ],
    )
    overheads = []
    cases = [("long", long_window_instance, n) for n in LONG_SIZES] + [
        ("short", short_window_instance, n) for n in SHORT_SIZES
    ]
    rows = []
    for family, generator, n in cases:
        instance = generator(n, 2, 10.0, seed=n).instance
        solve_ise(instance, _BASELINE)  # warm every code path once
        solve_ise(instance, _RESILIENT)
        base = _best_ms(instance, _BASELINE)
        armed = _best_ms(instance, _RESILIENT)
        overhead = (armed - base) / base * 100.0
        overheads.append(overhead)
        rows.append(
            {
                "family": family,
                "n": n,
                "strict_ms": round(base, 3),
                "resilient_ms": round(armed, 3),
                "overhead_pct": round(overhead, 3),
            }
        )
        table.add_row(family, n, base, armed, overhead)
    table.add_note(
        "overhead = (resilient - strict) / strict on best-of-"
        f"{REPEATS} end-to-end solves; resilient = strict=False + an "
        "active (never-expiring) 300 s budget"
    )
    table.add_note(
        f"mean overhead {statistics.mean(overheads):+.2f}% "
        f"(acceptance bar: < 2%)"
    )
    report(table, "resilience_overhead")
    perf_json(
        "resilience_overhead",
        {
            "repeats": REPEATS,
            "mean_overhead_pct": round(statistics.mean(overheads), 3),
            "cases": rows,
        },
    )

    gen = long_window_instance(16, 2, 10.0, seed=16)
    benchmark(lambda: solve_ise(gen.instance, _RESILIENT))
