"""T12 — empirical verification of Theorem 12 (long-window pipeline).

Paper claim: for any feasible long-window ISE instance on m machines with
optimal calibration count C*, the pipeline produces a feasible TISE schedule
on at most 18m machines with at most 12 C* calibrations.

Measured here over a sweep of feasible-by-construction instances, reporting
calibrations against the certified lower bound LB = LP(3m)/3 <= C* (so every
measured ratio upper-bounds the true one).  Expected shape: all ratios far
below the worst-case 12; machine usage far below 18m.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import validate_tise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowSolver

SWEEP = [
    # (n, machines, T, seed)
    (8, 1, 10.0, 0),
    (8, 1, 10.0, 1),
    (12, 2, 10.0, 0),
    (12, 2, 10.0, 1),
    (16, 2, 10.0, 2),
    (16, 3, 10.0, 3),
    (20, 2, 10.0, 4),
    (20, 3, 5.0, 5),
    (24, 2, 10.0, 6),
]


def bench_thm12_longwindow(benchmark, report):
    solver = LongWindowSolver()
    table = Table(
        title="T12: long-window pipeline vs Theorem 12 bounds",
        columns=[
            "n", "m", "T", "seed", "LB=LP/3", "cals", "ratio (<=12)",
            "unpruned (<=4LP)", "machines (<=18m)", "valid",
        ],
    )
    worst_ratio = 0.0
    results = []
    for n, m, T, seed in SWEEP:
        gen = long_window_instance(n, m, T, seed)
        result = solver.solve(gen.instance)
        valid = validate_tise(gen.instance, result.schedule).ok
        ratio = result.approximation_ratio
        worst_ratio = max(worst_ratio, ratio)
        results.append((gen, result))
        table.add_row(
            n, m, T, seed,
            result.lower_bound,
            result.num_calibrations,
            ratio,
            result.unpruned_calibrations,
            result.machines_used,
            valid,
        )
        assert valid
        assert ratio <= 12.0 + 1e-6
        assert result.unpruned_calibrations <= 4 * result.lp_value + 1e-6
        assert result.machines_used <= 18 * m
    table.add_note(
        f"worst measured ratio {worst_ratio:.2f} << 12 (theorem bound holds "
        "with large slack, as expected for non-adversarial inputs)"
    )
    report(table, "thm12_longwindow")

    # Timed kernel: one representative mid-size solve end to end.
    gen = long_window_instance(12, 2, 10.0, 0)
    benchmark(lambda: solver.solve(gen.instance))
