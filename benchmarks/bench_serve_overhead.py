"""SRV — solve-path overhead of the supervised solve service.

The service wraps every solve in admission (bounded queue + watermarks),
deadline bookkeeping (a started :class:`SolveBudget` per request), the
breaker board, and a worker-thread handoff.  That supervision must be
effectively free relative to the solve itself: the acceptance bar is <5%
end-to-end overhead on instances where the solve dominates.

Measured here: best-of-N wall time for ``solve_ise(instance, config)``
called directly vs ``service.solve(instance)`` through a running
:class:`SolveService` configured with the *same* solver config.  The
served path therefore pays exactly the supervision delta: submit, queue,
budget, dispatch, future wake-up.  ``PERF_SMOKE=1`` shrinks sizes and
repeats for CI.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.analysis import Table
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import mixed_instance
from repro.serve import ServiceConfig, SolveService

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

SIZES = [12, 24] if PERF_SMOKE else [12, 24, 40, 60]
REPEATS = 3 if PERF_SMOKE else 7

_SOLVER = ISEConfig(strict=False)


def _best_direct_ms(instance) -> float:
    samples = []
    for _ in range(REPEATS):
        tic = time.perf_counter()
        solve_ise(instance, _SOLVER)
        samples.append((time.perf_counter() - tic) * 1e3)
    return min(samples)


def _best_served_ms(service: SolveService, instance) -> float:
    samples = []
    for _ in range(REPEATS):
        tic = time.perf_counter()
        service.solve(instance, deadline=600.0, timeout=600.0)
        samples.append((time.perf_counter() - tic) * 1e3)
    return min(samples)


def bench_serve_overhead(benchmark, report, perf_json):
    table = Table(
        title="SRV: solve-path overhead of the supervised service",
        columns=["n", "direct ms", "served ms", "overhead %"],
    )
    config = ServiceConfig(workers=1, queue_capacity=8, solver=_SOLVER)
    rows = []
    overheads = []
    with SolveService(config) as service:
        for n in SIZES:
            instance = mixed_instance(n, 2, 10.0, seed=n).instance
            solve_ise(instance, _SOLVER)  # warm every code path once
            service.solve(instance, timeout=600.0)
            direct = _best_direct_ms(instance)
            served = _best_served_ms(service, instance)
            overhead = (served - direct) / direct * 100.0
            overheads.append(overhead)
            rows.append(
                {
                    "n": n,
                    "direct_ms": round(direct, 3),
                    "served_ms": round(served, 3),
                    "overhead_pct": round(overhead, 3),
                }
            )
            table.add_row(n, direct, served, overhead)
    table.add_note(
        "overhead = (served - direct) / direct on best-of-"
        f"{REPEATS} solves; served = SolveService.solve() with one worker, "
        "same solver config, 600 s deadline (admission + budget + handoff)"
    )
    table.add_note(
        f"mean overhead {statistics.mean(overheads):+.2f}% "
        "(acceptance bar: < 5%)"
    )
    report(table, "serve_overhead")
    perf_json(
        "serve_overhead",
        {
            "repeats": REPEATS,
            "smoke": PERF_SMOKE,
            "mean_overhead_pct": round(statistics.mean(overheads), 3),
            "cases": rows,
        },
    )

    instance = mixed_instance(SIZES[-1], 2, 10.0, seed=SIZES[-1]).instance
    with SolveService(config) as service:
        benchmark(lambda: service.solve(instance, timeout=600.0))
