"""T14 — empirical verification of Theorem 14 (machines-for-speed trade).

Paper claim: the TISE solution on 18m speed-1 machines transforms into an
ISE schedule on m machines at speed 36 with no more calibrations
(Lemma 13 charges every target calibration to a source calibration).

Measured here: machine count collapses to m, speed is exactly 36,
calibration count never increases, and the result stays ISE-feasible — plus
the intermediate trade-offs c = 2, 6 showing the full machines/speed curve.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowSolver, machines_to_speed

SWEEP = [(10, 1, 0), (12, 2, 1), (16, 2, 2), (16, 3, 3)]
GROUPS = [2, 6, 18]


def bench_thm14_speed_tradeoff(benchmark, report):
    solver = LongWindowSolver()
    table = Table(
        title="T14: Lemma 13 machines-for-speed curve",
        columns=[
            "n", "m", "seed", "c", "machines", "speed",
            "cals src", "cals tgt (<=src)", "valid",
        ],
    )
    prepared = []
    for n, m, seed in SWEEP:
        gen = long_window_instance(n, m, 10.0, seed)
        base = solver.solve(gen.instance)
        prepared.append((gen, base))
        for c in GROUPS:
            traded = machines_to_speed(gen.instance, base.schedule, c)
            valid = validate_ise(gen.instance, traded.schedule).ok
            table.add_row(
                n, m, seed, c,
                traded.schedule.num_machines,
                traded.schedule.speed,
                traded.source_calibrations,
                traded.target_calibrations,
                valid,
            )
            assert valid
            assert traded.target_calibrations <= traded.source_calibrations
            if c == 18:
                # Theorem 14: m machines at speed 36.
                assert traded.schedule.num_machines <= m
                assert traded.schedule.speed == 36.0
    table.add_note(
        "c = 18 rows realize Theorem 14 exactly: m machines, speed 36, "
        "calibrations <= the Theorem 12 count (hence <= 12 C*)"
    )
    report(table, "thm14_speed_tradeoff")

    gen, base = prepared[1]
    benchmark(lambda: machines_to_speed(gen.instance, base.schedule, 18))
