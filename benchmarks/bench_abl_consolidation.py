"""ABL4 — how much of the pipelines' constant-factor slack the local-search
post-optimizer recovers.

Paper hook: the conclusion — "we think that some of the constants in the
reduction could be reduced".  The consolidation pass (feasibility-preserving
repacking, repro.postopt) quantifies the practically recoverable slack on
each pipeline's output without touching the worst-case analysis.
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import long_window_instance, mixed_instance, short_window_instance
from repro.longwindow import LongWindowSolver
from repro.postopt import consolidate
from repro.shortwindow import ShortWindowSolver

SEEDS = range(4)


def bench_abl_consolidation(benchmark, report):
    table = Table(
        title="ABL4: local-search consolidation on pipeline outputs",
        columns=[
            "pipeline", "seed", "before", "after", "removed", "improvement",
            "LB", "ratio before", "ratio after",
        ],
    )
    cases = []
    for seed in SEEDS:
        gen = long_window_instance(14, 2, 10.0, seed)
        result = LongWindowSolver().solve(gen.instance)
        improved = consolidate(gen.instance, result.schedule)
        assert validate_ise(gen.instance, improved.schedule).ok
        lb = result.lower_bound
        table.add_row(
            "long (T12)", seed, result.num_calibrations,
            improved.final_calibrations, improved.removed_calibrations,
            f"{improved.improvement:.0%}", lb,
            result.num_calibrations / lb,
            improved.final_calibrations / lb,
        )
        cases.append((gen.instance, result.schedule))
    for seed in SEEDS:
        gen = short_window_instance(18, 2, 10.0, seed)
        result = ShortWindowSolver().solve(gen.instance)
        improved = consolidate(gen.instance, result.schedule)
        assert validate_ise(gen.instance, improved.schedule).ok
        lb = max(result.calibration_lower_bound, 1e-9)
        table.add_row(
            "short (T20)", seed, result.num_calibrations,
            improved.final_calibrations, improved.removed_calibrations,
            f"{improved.improvement:.0%}", lb,
            result.num_calibrations / lb,
            improved.final_calibrations / lb,
        )
    for seed in SEEDS:
        gen = mixed_instance(20, 2, 10.0, seed)
        result = solve_ise(gen.instance)
        improved = consolidate(gen.instance, result.schedule)
        assert validate_ise(gen.instance, improved.schedule).ok
        lb = max(result.lower_bound.best, 1e-9)
        table.add_row(
            "combined (T1)", seed, result.num_calibrations,
            improved.final_calibrations, improved.removed_calibrations,
            f"{improved.improvement:.0%}", lb,
            result.num_calibrations / lb,
            improved.final_calibrations / lb,
        )
    table.add_note(
        "consolidation is feasibility-preserving and monotone: it narrows "
        "the measured-to-lower-bound gap without changing worst-case bounds"
    )
    report(table, "abl_consolidation")

    instance, schedule = cases[0]
    benchmark(lambda: consolidate(instance, schedule))
