"""ABL3 — LP substrate ablation: in-repo simplex vs HiGHS.

Both backends must find the same TISE LP optimum (the simplex is the
independently implemented cross-check); HiGHS is expected to win on speed,
which is why it is the default.  Measured here: objective agreement and
wall-time per backend across instance sizes.
"""

from __future__ import annotations

import time

from repro.analysis import Table
from repro.instances import long_window_instance
from repro.longwindow import solve_tise_lp

SIZES = [4, 6, 8, 10]


def bench_abl_lp_backend(benchmark, report):
    T = 10.0
    table = Table(
        title="ABL3: TISE LP backends — in-repo simplex vs HiGHS",
        columns=[
            "n", "LP vars approx", "highs obj", "simplex obj", "agree",
            "highs ms", "simplex ms", "speedup",
        ],
    )
    for n in SIZES:
        gen = long_window_instance(n, 1, T, seed=n)
        jobs = gen.instance.jobs

        tic = time.perf_counter()
        h = solve_tise_lp(jobs, T, 3, backend="highs")
        h_ms = (time.perf_counter() - tic) * 1e3

        tic = time.perf_counter()
        s = solve_tise_lp(jobs, T, 3, backend="simplex")
        s_ms = (time.perf_counter() - tic) * 1e3

        agree = abs(h.objective - s.objective) < 1e-6
        table.add_row(
            n,
            n * n * (n + 1),  # coarse upper estimate of X variables
            h.objective,
            s.objective,
            agree,
            h_ms,
            s_ms,
            s_ms / max(h_ms, 1e-9),
        )
        assert agree
    table.add_note(
        "identical optima certify the two independent LP implementations "
        "against each other; HiGHS's sparse dual simplex wins on time, so "
        "it is the pipeline default"
    )
    report(table, "abl_lp_backend")

    gen = long_window_instance(6, 1, T, seed=6)
    benchmark(lambda: solve_tise_lp(gen.instance.jobs, T, 3, backend="simplex"))
