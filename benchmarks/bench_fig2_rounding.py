"""FIG2 — regenerate Figure 2: Algorithm 1 greedy calibration rounding.

Paper artifact: Figure 2 — four fractional calibrations; the running total
crosses 1/2 after the second point (one full calibration emitted there) and
crosses 1 and 3/2 at the fourth (two full calibrations emitted there).

Reproduction claim checked here: the emission trace matches exactly, and
the calibration count equals floor(total mass / (1/2)) (Lemma 7's 2x bound
is tight on this example).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.instances import figure2_fractional_calibrations
from repro.longwindow import rounded_start_times
from repro.viz import render_fractional_calibrations


def bench_fig2_rounding(benchmark, report):
    fractional = figure2_fractional_calibrations()
    starts = benchmark(lambda: rounded_start_times(fractional))

    points = sorted(fractional)
    table = Table(
        title="FIG2: Algorithm 1 rounding trace",
        columns=["point t", "C_t", "running total", "emitted here"],
    )
    running = 0.0
    for t in points:
        running += fractional[t]
        table.add_row(t, fractional[t], running, starts.count(t))
    table.add_note(
        f"total mass {running:.2f} -> {len(starts)} calibrations "
        f"(= floor(mass / 0.5)); paper: 1 at the 2nd point, 2 at the 4th"
    )
    report(table, "fig2_rounding")

    print("\n-- Figure 2: fractional bars and emissions (*) --")
    print(render_fractional_calibrations(fractional, starts))

    assert starts == [points[1], points[3], points[3]]
