"""VAR1 — the footnote-3 problem variant (overlapping calibrations).

Paper hook (footnote 3): "If a calibration is allowed to be performed before
the previous calibration ends, then no extra machines are necessary, just
extra calibrations.  We focus here on the more difficult version..."

Measured here: the short-window pipeline under both semantics.  Expected
shape: identical calibration counts (the dedicated crossing calibrations are
the same), strictly fewer machines in the overlapping variant (w vs up to
3w per interval), and validity under the overlap-aware checker + simulator.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import short_window_instance
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver
from repro.sim import simulate

SWEEP = [(15, 2, 0), (20, 2, 1), (25, 3, 2), (30, 3, 3)]


def bench_var_overlapping(benchmark, report):
    table = Table(
        title="VAR1: footnote-3 variant vs the standard (harder) problem",
        columns=[
            "n", "m", "seed", "std machines", "ovl machines",
            "std cals", "ovl cals", "crossing jobs", "ovl valid", "sim ok",
        ],
    )
    for n, m, seed in SWEEP:
        gen = short_window_instance(n, m, 10.0, seed, max_processing_frac=0.9)
        standard = ShortWindowSolver().solve(gen.instance)
        overlap = ShortWindowSolver(
            ShortWindowConfig(overlapping_calibrations=True)
        ).solve(gen.instance)
        crossings = sum(r.crossing_jobs for r in overlap.intervals)
        valid = validate_ise(
            gen.instance, overlap.schedule, allow_overlapping_calibrations=True
        ).ok
        sim_ok = simulate(
            gen.instance, overlap.schedule, allow_overlap=True
        ).ok
        table.add_row(
            n, m, seed,
            standard.machines_used, overlap.machines_used,
            standard.num_calibrations, overlap.num_calibrations,
            crossings, valid, sim_ok,
        )
        assert valid and sim_ok
        assert overlap.machines_used <= standard.machines_used
        assert overlap.unpruned_calibrations == standard.unpruned_calibrations
    table.add_note(
        "same calibration bill, fewer machines — exactly the trade footnote "
        "3 describes; this repo implements both variants"
    )
    report(table, "var_overlapping")

    gen = short_window_instance(20, 2, 10.0, 1)
    solver = ShortWindowSolver(ShortWindowConfig(overlapping_calibrations=True))
    benchmark(lambda: solver.solve(gen.instance))
