"""STRESS — the combined solver across every workload family.

Not a single paper artifact but the robustness sweep a release needs: every
generator family (including the adversarially-shaped ones) through the full
Theorem 1 stack, with validation, simulation, and ratio accounting.
Expected shape: feasible everywhere; ratios highest on rigid/heavy-tail
inputs (least scheduling freedom / hardest packing) and lowest on roomy
long-window inputs.
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import Table, ratio
from repro.core import validate_ise
from repro.instances import (
    clustered_instance,
    heavy_tail_instance,
    long_window_instance,
    mixed_instance,
    rigid_instance,
    short_window_instance,
    staircase_instance,
    unit_instance,
)
from repro.postopt import consolidate
from repro.sim import simulate

FAMILIES = [
    ("long", lambda s: long_window_instance(16, 2, 10.0, s)),
    ("short", lambda s: short_window_instance(16, 2, 10.0, s)),
    ("mixed", lambda s: mixed_instance(16, 2, 10.0, s)),
    ("clustered", lambda s: clustered_instance(16, 2, 10.0, s)),
    ("rigid", lambda s: rigid_instance(16, 2, 10.0, s)),
    ("staircase", lambda s: staircase_instance(16, 2, 10.0, s)),
    ("heavy_tail", lambda s: heavy_tail_instance(16, 2, 10.0, s)),
    ("unit", lambda s: unit_instance(16, 2, 4, s)),
]
SEEDS = [0, 1]


def bench_stress_families(benchmark, report):
    table = Table(
        title="STRESS: combined solver across all workload families",
        columns=[
            "family", "seed", "cals", "after postopt", "LB", "ratio",
            "machines", "valid", "sim ok",
        ],
    )
    for name, make in FAMILIES:
        for seed in SEEDS:
            gen = make(seed)
            result = solve_ise(gen.instance)
            improved = consolidate(gen.instance, result.schedule)
            valid = validate_ise(gen.instance, improved.schedule).ok
            sim_ok = simulate(gen.instance, improved.schedule).ok
            lb = result.lower_bound.best
            table.add_row(
                name, seed,
                result.num_calibrations,
                improved.final_calibrations,
                lb,
                ratio(improved.final_calibrations, lb),
                result.machines_used,
                valid,
                sim_ok,
            )
            assert valid and sim_ok
            assert improved.final_calibrations >= lb - 1e-6
    table.add_note(
        "every family feasible end-to-end (solver -> postopt -> validator "
        "-> simulator); hardest ratios on the least-slack families"
    )
    report(table, "stress_families")

    gen = FAMILIES[2][1](0)
    benchmark(lambda: solve_ise(gen.instance))
