"""Gate the compressed-LP model size against the recorded baseline.

Usage:  python benchmarks/check_perf_baseline.py

Reads the ``lp_compression`` section of ``BENCH_perf.json`` (produced by
``pytest benchmarks/bench_perf_scaling.py``) and compares the compressed
formulation's structural counters per instance size against
``benchmarks/results/perf_baseline.json``.  Model structure is fully
deterministic, so *any* growth in constraint nonzeros over the baseline is
a formulation regression and fails the check (exit 1).  Sizes the current
run did not measure (e.g. under ``PERF_SMOKE=1``) are skipped.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "results" / "perf_baseline.json"
ARTIFACT_PATH = ROOT / "BENCH_perf.json"

# Structural counters gated against the baseline (timings are not gated).
GATED = ("nnz", "machine_nnz")


def main() -> int:
    if not ARTIFACT_PATH.exists():
        print(f"error: {ARTIFACT_PATH} not found — run the perf benches first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())["compressed"]
    artifact = json.loads(ARTIFACT_PATH.read_text())
    section = artifact.get("sections", {}).get("lp_compression")
    if section is None:
        print("error: BENCH_perf.json has no lp_compression section — "
              "run benchmarks/bench_perf_scaling.py first")
        return 2

    failures = []
    checked = 0
    for row in section["sizes"]:
        n = str(row["n"])
        if n not in baseline:
            print(f"n={n}: not in baseline, skipped")
            continue
        checked += 1
        for key in GATED:
            measured = row["compressed"][key]
            recorded = baseline[n][key]
            status = "ok" if measured <= recorded else "REGRESSION"
            print(f"n={n} {key}: measured {measured} vs baseline {recorded} [{status}]")
            if measured > recorded:
                failures.append((n, key, measured, recorded))

    if not checked:
        print("error: no measured size overlaps the baseline")
        return 2
    if failures:
        print(f"\nFAIL: {len(failures)} compressed-LP counter(s) grew past the baseline")
        return 1
    print(f"\nOK: all gated counters within baseline across {checked} size(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
