"""Gate the perf artifact against the recorded baseline.

Usage:  python benchmarks/check_perf_baseline.py

Reads ``BENCH_perf.json`` (produced by the perf benches) and compares it
against ``benchmarks/results/perf_baseline.json``:

* ``lp_compression`` — the compressed formulation's structural counters
  per instance size.  Model structure is fully deterministic, so *any*
  growth in constraint nonzeros over the baseline is a formulation
  regression and fails the check (exit 1).
* ``lp_solver`` — the revised simplex must hold its cold speedup over the
  retired tableau at the gate size, and a warm restart must stay a small
  fraction of the cold wall.  Timing-based, so the thresholds carry slack.
* ``short_parallel`` / ``sweep_parallel`` — measured pool speedups must
  stay at or above ``parallel.min_speedup``.  Sections flagged
  ``under_provisioned`` (host has fewer cores than the pool has workers)
  are *skipped*: on a starved runner the number measures pool overhead,
  not parallelism, and failing on it would just punish small CI boxes.

Sizes the current run did not measure (e.g. under ``PERF_SMOKE=1``) are
skipped.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "results" / "perf_baseline.json"
ARTIFACT_PATH = ROOT / "BENCH_perf.json"

# Structural counters gated against the baseline (timings are not gated).
GATED = ("nnz", "machine_nnz")


def check_lp_compression(sections, baseline, failures) -> int:
    """Deterministic model-structure counters; returns sizes checked."""
    section = sections.get("lp_compression")
    if section is None:
        print("error: BENCH_perf.json has no lp_compression section — "
              "run benchmarks/bench_perf_scaling.py first")
        return -1
    recorded_sizes = baseline["compressed"]
    checked = 0
    for row in section["sizes"]:
        n = str(row["n"])
        if n not in recorded_sizes:
            print(f"lp_compression n={n}: not in baseline, skipped")
            continue
        checked += 1
        for key in GATED:
            measured = row["compressed"][key]
            recorded = recorded_sizes[n][key]
            status = "ok" if measured <= recorded else "REGRESSION"
            print(f"lp_compression n={n} {key}: measured {measured} "
                  f"vs baseline {recorded} [{status}]")
            if measured > recorded:
                failures.append(("lp_compression", n, key, measured, recorded))
    return checked


def check_lp_solver(sections, baseline, failures) -> None:
    """Revised-simplex speedup gate at the recorded gate size."""
    gate = baseline.get("lp_solver")
    section = sections.get("lp_solver")
    if gate is None:
        return
    if section is None:
        print("lp_solver: section missing from BENCH_perf.json, skipped "
              "(run benchmarks/bench_lp_solver.py to measure it)")
        return
    gate_n = int(gate["gate_n"])
    row = next((r for r in section["sizes"] if int(r["n"]) == gate_n), None)
    if row is None:
        print(f"lp_solver: gate size n={gate_n} not measured "
              "(PERF_SMOKE run?), skipped")
        return
    cold = float(row["cold_speedup"])
    floor = float(gate["min_cold_speedup"])
    status = "ok" if cold >= floor else "REGRESSION"
    print(f"lp_solver n={gate_n} cold_speedup: measured {cold} "
          f"vs floor {floor} [{status}]")
    if cold < floor:
        failures.append(("lp_solver", gate_n, "cold_speedup", cold, floor))
    warm = float(row["warm_cold_ratio"])
    ceiling = float(gate["max_warm_cold_ratio"])
    status = "ok" if warm <= ceiling else "REGRESSION"
    print(f"lp_solver n={gate_n} warm_cold_ratio: measured {warm} "
          f"vs ceiling {ceiling} [{status}]")
    if warm > ceiling:
        failures.append(("lp_solver", gate_n, "warm_cold_ratio", warm, ceiling))


def check_parallel(sections, baseline, failures) -> None:
    """Pool speedups, skipped wholesale on under-provisioned hosts."""
    gate = baseline.get("parallel")
    if gate is None:
        return
    floor = float(gate["min_speedup"])
    for name in ("short_parallel", "sweep_parallel"):
        section = sections.get(name)
        if section is None:
            print(f"{name}: section missing from BENCH_perf.json, skipped")
            continue
        if section.get("under_provisioned"):
            print(f"{name}: host under-provisioned "
                  f"(cpu_count={section.get('cpu_count')} < "
                  f"workers={section.get('workers')}), speedup checks skipped")
            continue
        speedups = (
            [(str(r["n"]), float(r["speedup"])) for r in section["sizes"]]
            if "sizes" in section
            else [("all", float(section["speedup"]))]
        )
        for label, speedup in speedups:
            status = "ok" if speedup >= floor else "REGRESSION"
            print(f"{name} n={label} speedup: measured {speedup} "
                  f"vs floor {floor} [{status}]")
            if speedup < floor:
                failures.append((name, label, "speedup", speedup, floor))


def check_certify_overhead(sections, baseline, failures) -> None:
    """Verified-mode (solve certificate) overhead ceiling."""
    gate = baseline.get("certify")
    if gate is None:
        return
    section = sections.get("certify_overhead")
    if section is None:
        print("certify_overhead: section missing from BENCH_perf.json, "
              "skipped (run benchmarks/bench_certify_overhead.py to measure it)")
        return
    measured = float(section["mean_overhead_pct"])
    ceiling = float(gate["max_overhead_pct"])
    status = "ok" if measured <= ceiling else "REGRESSION"
    print(f"certify_overhead mean_overhead_pct: measured {measured} "
          f"vs ceiling {ceiling} [{status}]")
    if measured > ceiling:
        failures.append(
            ("certify_overhead", "all", "mean_overhead_pct", measured, ceiling)
        )


def main() -> int:
    if not ARTIFACT_PATH.exists():
        print(f"error: {ARTIFACT_PATH} not found — run the perf benches first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    artifact = json.loads(ARTIFACT_PATH.read_text())
    sections = artifact.get("sections", {})

    failures: list[tuple] = []
    checked = check_lp_compression(sections, baseline, failures)
    if checked < 0:
        return 2
    check_lp_solver(sections, baseline, failures)
    check_parallel(sections, baseline, failures)
    check_certify_overhead(sections, baseline, failures)

    if not checked:
        print("error: no measured size overlaps the baseline")
        return 2
    if failures:
        print(f"\nFAIL: {len(failures)} gated value(s) regressed past the baseline")
        return 1
    print(f"\nOK: all gated values within baseline "
          f"({checked} lp_compression size(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
