"""PERF — revised simplex vs legacy tableau, cold and warm-started.

The tentpole claim for the LP stage: the bounded-variable revised simplex
(factorized basis, vectorized pricing/ratio test) beats the retired dense
tableau by >=5x on the long-window TISE LP at n=32, and a warm restart
from the previous optimal basis re-solves the *same* model in a small
fraction of the cold wall (a zero-pivot feasibility check plus one
refactorization).

Per size the same compressed TISE LP is solved four ways — legacy
tableau, revised cold, revised warm (basis from the cold solve), and
HiGHS as the reference optimum — and all objectives must agree within
tolerance.  Walls, iteration counts, and the cold/warm ratios land in the
``lp_solver`` section of ``BENCH_perf.json``; ``check_perf_baseline.py``
gates the n=32 speedups against ``results/perf_baseline.json``.

With ``PERF_SMOKE=1`` only the two smallest sizes run and the 5x
assertion is skipped (it is gated at n=32, which smoke mode never
measures).
"""

from __future__ import annotations

import os
import time

from repro.analysis import Table
from repro.core.tolerance import close
from repro.instances import long_window_instance
from repro.longwindow import build_tise_lp
from repro.lp import solve_highs, solve_simplex, solve_tableau

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

LP_SIZES = [8, 16] if PERF_SMOKE else [8, 16, 24, 32]
MACHINE_BUDGET = 3
GATE_N = 32
MIN_COLD_SPEEDUP = 5.0


def _best_of(fn, repeats: int = 3):
    """Return (best wall in ms, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        tic = time.perf_counter()
        result = fn()
        best = min(best, (time.perf_counter() - tic) * 1e3)
    return best, result


def bench_lp_solver(report, perf_json):
    """Tableau vs revised simplex (cold + warm) on the TISE LP."""
    table = Table(
        title="PERF (LP solver): tableau vs revised simplex, cold and warm",
        columns=[
            "n", "rows", "cols", "tableau ms", "cold ms", "warm ms",
            "cold speedup", "warm/cold", "cold iters", "warm iters",
        ],
    )
    rows = []
    for n in LP_SIZES:
        gen = long_window_instance(n, 2, 10.0, seed=n)
        jobs = gen.instance.jobs
        T = gen.instance.calibration_length
        model = build_tise_lp(
            jobs, T, MACHINE_BUDGET, formulation="compressed", names=False
        )
        lp = model.lp

        reference = solve_highs(lp)
        # The tableau is the yardstick being replaced: one timed run is
        # enough, its wall is orders of magnitude above timer noise.
        tableau_ms, tableau_sol = _best_of(lambda: solve_tableau(lp), repeats=1)
        cold_ms, cold_sol = _best_of(lambda: solve_simplex(lp))
        assert cold_sol.basis is not None, f"n={n}: cold solve returned no basis"
        basis = cold_sol.basis
        warm_ms, warm_sol = _best_of(lambda: solve_simplex(lp, warm_basis=basis))

        for name, sol in (("tableau", tableau_sol), ("cold", cold_sol), ("warm", warm_sol)):
            assert close(sol.objective, reference.objective), (
                f"n={n}: {name} objective {sol.objective} != "
                f"HiGHS {reference.objective}"
            )
        assert warm_sol.warm_started, f"n={n}: warm solve fell back to cold start"
        assert warm_sol.iterations == 0, (
            f"n={n}: warm restart of the identical LP took "
            f"{warm_sol.iterations} pivots; expected a zero-pivot restart"
        )

        cold_speedup = tableau_ms / cold_ms if cold_ms > 0 else float("inf")
        warm_ratio = warm_ms / cold_ms if cold_ms > 0 else 0.0
        if n >= GATE_N:
            assert cold_speedup >= MIN_COLD_SPEEDUP, (
                f"n={n}: revised simplex only {cold_speedup:.2f}x over the "
                f"tableau; the acceptance bar is {MIN_COLD_SPEEDUP}x"
            )
        rows.append(
            {
                "n": n,
                "rows": int(model.stats["rows"]),
                "cols": int(model.stats["cols"]),
                "nnz": int(model.stats["nnz"]),
                "tableau_ms": round(tableau_ms, 3),
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
                "cold_speedup": round(cold_speedup, 3),
                "warm_cold_ratio": round(warm_ratio, 4),
                "cold_iterations": cold_sol.iterations,
                "warm_iterations": warm_sol.iterations,
                "cold_refactorizations": cold_sol.refactorizations,
                "objective": cold_sol.objective,
            }
        )
        table.add_row(
            n, int(model.stats["rows"]), int(model.stats["cols"]),
            tableau_ms, cold_ms, warm_ms, cold_speedup, warm_ratio,
            cold_sol.iterations, warm_sol.iterations,
        )
    table.add_note(
        "identical objectives to HiGHS at every size; warm restarts of an "
        "unchanged model are zero-pivot (one refactorization + feasibility "
        "check)"
    )
    report(table, "perf_lp_solver")
    perf_json(
        "lp_solver",
        {
            "machine_budget": MACHINE_BUDGET,
            "gate_n": GATE_N,
            "min_cold_speedup": MIN_COLD_SPEEDUP,
            "sizes": rows,
        },
    )
