"""ABL2 — ablation of the Definition 1 long/short threshold (2T).

Design choice probed: the remark after Definition 1 — "making the threshold
larger is okay, but that would weaken the bounds for short-window jobs."
A larger factor routes more jobs through the short-window pipeline (whose
per-interval overhead is 2*gamma calibrations per base machine and grows
with gamma).

Measured here: calibrations, machines and the long/short split per factor
on mixed workloads.  Expected shape: the paper's factor 2 is on the
efficient frontier; larger factors inflate the short side's base-calendar
cost.
"""

from __future__ import annotations

from repro import ISEConfig, solve_ise
from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import mixed_instance

FACTORS = [2.0, 3.0, 4.0]
SEEDS = range(5)


def bench_abl_window_threshold(benchmark, report):
    table = Table(
        title="ABL2: Definition 1 threshold ablation (paper: 2T)",
        columns=[
            "factor", "mean n_long", "mean n_short", "mean cals",
            "mean unpruned", "mean machines", "all valid",
        ],
    )
    means = {}
    for factor in FACTORS:
        cals: list[int] = []
        unpruned: list[int] = []
        machines: list[int] = []
        n_long: list[int] = []
        n_short: list[int] = []
        all_valid = True
        for seed in SEEDS:
            gen = mixed_instance(20, 2, 10.0, seed, long_fraction=0.6)
            result = solve_ise(gen.instance, ISEConfig(window_factor=factor))
            all_valid &= validate_ise(gen.instance, result.schedule).ok
            cals.append(result.num_calibrations)
            up = (
                (result.long_result.unpruned_calibrations if result.long_result else 0)
                + (result.short_result.unpruned_calibrations if result.short_result else 0)
            )
            unpruned.append(up)
            machines.append(result.machines_used)
            n_long.append(result.partition.n_long)
            n_short.append(result.partition.n_short)
        k = len(list(SEEDS))
        means[factor] = sum(unpruned) / k
        table.add_row(
            factor,
            sum(n_long) / k,
            sum(n_short) / k,
            sum(cals) / k,
            sum(unpruned) / k,
            sum(machines) / k,
            all_valid,
        )
        assert all_valid
    table.add_note(
        "larger factors push borderline jobs into the short pipeline whose "
        "base calendar costs 2*gamma calibrations per machine per interval "
        "— the paper's remark quantified"
    )
    report(table, "abl_window_threshold")

    gen = mixed_instance(20, 2, 10.0, 0)
    benchmark(lambda: solve_ise(gen.instance, ISEConfig(window_factor=3.0)))
