"""L18 — quality of the Lemma 18 interval lower bound.

Paper claim (Lemma 18): for jobs nested in disjoint intervals at one offset,
OPT needs at least sum_i w_i*/2 calibrations and max_i w_i* machines.

Measured here on small *unit-job short-window* instances where the exact
optimum is computable: LB(Lemma 18) <= exact OPT <= witness, and the gap
factor exact/LB.  Expected shape: the bound is within a small constant of
OPT (its /2 and preemptive-relaxation slack), certifying it as a usable
ratio denominator.
"""

from __future__ import annotations

from repro.analysis import Table, ratio
from repro.baselines import exact_unit_calibrations
from repro.analysis import short_window_lower_bound, work_lower_bound
from repro.instances import unit_instance

SEEDS = range(6)


def bench_lem18_lowerbound(benchmark, report):
    T = 3
    table = Table(
        title="L18: interval lower bound vs exact optimum (unit jobs)",
        columns=[
            "seed", "n", "LB work", "LB Lem18", "best LB", "exact OPT",
            "witness", "OPT / LB",
        ],
    )
    gaps = []
    cases = []
    for seed in SEEDS:
        gen = unit_instance(7, 2, T, seed, max_window=5)  # all windows < 2T
        shorts = [j for j in gen.instance.jobs if not j.is_long(float(T))]
        if len(shorts) != gen.instance.n:
            continue  # keep the exact comparison apples-to-apples
        lb18 = short_window_lower_bound(gen.instance.jobs, float(T))
        lbw = work_lower_bound(gen.instance.jobs, float(T))
        best = max(lb18, float(lbw))
        exact = exact_unit_calibrations(gen.instance, max_calibrations=8)
        gap = ratio(exact, best)
        gaps.append(gap)
        cases.append(gen)
        table.add_row(
            seed, gen.instance.n, lbw, lb18, best, exact,
            gen.witness_calibrations, gap,
        )
        assert lb18 <= exact + 1e-6
        assert best <= exact + 1e-6
        assert exact <= gen.witness_calibrations
    table.add_note(
        f"mean OPT/LB gap {sum(gaps)/len(gaps):.2f} — the Lemma 18 bound "
        "is a constant-factor-tight denominator on these workloads"
    )
    report(table, "lem18_lowerbound")

    gen = cases[0]
    benchmark(
        lambda: short_window_lower_bound(gen.instance.jobs, float(T))
    )
