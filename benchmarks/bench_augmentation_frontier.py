"""AUG — the machines-versus-speed feasibility frontier.

Paper hook (Section 1): ISE feasibility is NP-hard, so the paper's results
live in the `w`-machine `s`-speed augmentation model, and its reduction
shows speed and machines are fungible (Lemma 13 trades 18x machines for 36x
speed on the algorithm side).  This bench measures the *instance-side*
frontier: for NP-hard Partition gadgets and regular workloads, the minimal
speed at which m machines suffice, with the preemptive relaxation as a
lower bound.

Expected shape: the partition gadget needs speed ~2 on one machine and
speed 1 at m = 2 (the hidden perfect split); regular feasible instances sit
at speed 1 for their stated m; preemptive and exact speeds coincide except
where nonpreemptive packing genuinely binds.
"""

from __future__ import annotations

from repro.analysis import augmentation_frontier, minimum_speed
from repro.analysis import Table
from repro.instances import partition_instance, short_window_instance


def bench_augmentation_frontier(benchmark, report):
    table = Table(
        title="AUG: minimal feasible speed by machine count",
        columns=[
            "instance", "m", "speed LB (preemptive)", "speed (exact)",
            "np-gap",
        ],
    )
    cases = [
        ("partition(k=4)", partition_instance(4, seed=1).instance, 3),
        ("partition(k=6)", partition_instance(6, seed=2).instance, 3),
        ("short(n=10,m=2)", short_window_instance(10, 2, 10.0, 0).instance, 3),
        ("short(n=14,m=2)", short_window_instance(14, 2, 10.0, 1).instance, 3),
    ]
    for name, instance, max_m in cases:
        points = augmentation_frontier(
            instance, max_machines=max_m, precision=1e-3
        )
        for point in points:
            gap = (
                point.speed_achievable / point.speed_preemptive
                if point.speed_preemptive > 0
                else float("inf")
            )
            table.add_row(
                name, point.machines, point.speed_preemptive,
                point.speed_achievable, gap,
            )
            assert point.speed_preemptive <= point.speed_achievable + 1e-3
        # The stated machine count never needs meaningful augmentation for
        # witness-backed instances; the m=2 partition gadget hides a perfect
        # split, so it is feasible at speed ~1 there too.
        at_stated = next(p for p in points if p.machines == instance.machines)
        assert at_stated.speed_achievable <= 1.0 + 1e-2
    table.add_note(
        "speed LB is the preemptive max-flow relaxation; np-gap > 1 marks "
        "instances where nonpreemptive packing itself forces augmentation"
    )
    report(table, "augmentation_frontier")

    instance = cases[0][1]
    benchmark(lambda: minimum_speed(instance.jobs, 1, method="exact"))
