"""FIG3 — regenerate Figure 3: Algorithm 3 fractional job write-back.

Paper artifact: Figure 3 — the rounding delays part of job 2 past its
TISE-latest calibration point; that tail is discarded, and the point of
Corollary 6 is that "such discarding can only occur if the job is already
sufficiently scheduled" (the 2x write-back covers it).

Reproduction claims checked here: the calibrations equal Algorithm 1's; job
2's tail is discarded; the discard never exceeds the Lemma 5 carryover bound
of 1/2; both Lemma 5 invariants hold throughout the scan (the implementation
asserts them at every step).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.instances import figure3_inputs
from repro.longwindow import augmented_round, rounded_start_times


def bench_fig3_augmented_rounding(benchmark, report):
    jobs, calibrations, assignments = figure3_inputs()
    result = benchmark(
        lambda: augmented_round(jobs, calibrations, assignments, 10.0)
    )

    table = Table(
        title="FIG3: Algorithm 3 write-back on the Figure 2 calibrations",
        columns=["job", "assigned mass", "written (2y wb)", "discarded tail"],
    )
    for job in jobs:
        assigned = sum(
            x for (jid, _), x in assignments.items() if jid == job.job_id
        )
        table.add_row(
            job.job_id,
            assigned,
            result.assignment.coverage(job.job_id),
            result.discarded.get(job.job_id, 0.0),
        )
    table.add_note(
        "Lemma 5 telemetry: max(y_j - carryover) = "
        f"{result.max_y_minus_carryover:.2e}, "
        f"max carried-work excess = {result.max_carried_work_excess:.2e} "
        "(both <= 0 up to float tolerance)"
    )
    table.add_note(
        "paper: job 2's delayed fraction is discarded; discard <= 1/2 "
        "(Cor. 6: the job was already sufficiently scheduled)"
    )
    report(table, "fig3_augmented_rounding")

    assert list(result.assignment.calibration_starts) == rounded_start_times(
        calibrations
    )
    assert result.discarded.get(2, 0.0) > 0.0
    assert result.discarded[2] <= 0.5 + 1e-9
    assert result.max_y_minus_carryover <= 1e-6
    assert result.max_carried_work_excess <= 1e-6
