"""T20 — empirical verification of Theorem 20 (short-window pipeline).

Paper claim: with an alpha-approximate MM black box, the short-window
algorithm produces a feasible ISE schedule on at most 6 alpha w* machines
with at most 16 gamma alpha C* calibrations (gamma = 2).

Measured here per MM black box (the Theorem 1 "A" slot): calibrations vs
the Lemma 18 interval lower bound, machines vs the per-pass pools, and the
black box's own measured alpha (MM machines / preemptive flow bound).
Expected shape: exact <= best_greedy <= single greedy machine counts;
all ratios far below 16*gamma*alpha = 32 alpha.
"""

from __future__ import annotations

from repro.analysis import Table, ratio
from repro.core import validate_ise
from repro.instances import short_window_instance
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver

SWEEP = [(15, 2, 0), (20, 2, 1), (25, 3, 2)]
MM_BOXES = ["greedy_edf", "best_greedy", "backtrack", "lp_rounding", "auto"]


def bench_thm20_shortwindow(benchmark, report):
    table = Table(
        title="T20: short-window pipeline per MM black box",
        columns=[
            "n", "m", "seed", "MM box", "alpha (meas)", "cals",
            "LB (Lem18)", "ratio", "bound 16*g*a", "machines", "valid",
        ],
    )
    for n, m, seed in SWEEP:
        gen = short_window_instance(n, m, 10.0, seed)
        for mm in MM_BOXES:
            solver = ShortWindowSolver(ShortWindowConfig(mm_algorithm=mm))
            result = solver.solve(gen.instance)
            valid = validate_ise(gen.instance, result.schedule).ok
            alpha = max(
                (
                    r.mm_machines / r.mm_lower_bound
                    for r in result.intervals
                    if r.mm_lower_bound
                ),
                default=1.0,
            )
            lb = result.calibration_lower_bound
            r = ratio(result.num_calibrations, lb)
            bound = 16 * result.gamma * alpha
            table.add_row(
                n, m, seed, mm, alpha, result.num_calibrations, lb, r,
                bound, result.machines_used, valid,
            )
            assert valid
            assert result.unpruned_calibrations <= bound * max(lb, 1e-9) + 1e-6
    table.add_note(
        "alpha is measured per interval against the preemptive flow lower "
        "bound; ratios stay far below the 16*gamma*alpha envelope"
    )
    report(table, "thm20_shortwindow")

    gen = short_window_instance(20, 2, 10.0, 1)
    solver = ShortWindowSolver()
    benchmark(lambda: solver.solve(gen.instance))
