"""PERF — running-time scaling, LP compression, and parallel execution.

Paper claim (Theorem 1): the algorithm runs in time polynomial in the input
length times the MM black box's time.  Measured here:

* per-stage wall time as n grows (long and short pipelines);
* the compressed (telescoped) constraint-(1) LP vs the legacy literal
  encoding — rows/nonzeros/build time, with identical optima;
* serial vs parallel execution of the per-interval MM solves and the sweep
  case loop — schedules must be byte-identical, walls are recorded.

Everything measured lands in the machine-readable ``BENCH_perf.json``
artifact via the ``perf_json`` fixture (see docs/performance.md).  With
``PERF_SMOKE=1`` in the environment only the two smallest sizes per axis
run — the CI perf-smoke job uses this to keep the artifact fresh cheaply.

Note on speedup assertions: this host may be single-core (CI sandboxes
often are), in which case worker pools cannot beat the serial wall no
matter how independent the tasks are.  Parallel-vs-serial *identity* is
asserted unconditionally; wall-time improvement is asserted only when the
host has at least two cores.
"""

from __future__ import annotations

import os
import time

from repro.analysis import Table
from repro.analysis.sweep import SweepCase, run_sweep
from repro.core.tolerance import close
from repro.instances import long_window_instance, short_window_instance
from repro.longwindow import LongWindowSolver, build_tise_lp, solve_tise_lp
from repro.shortwindow import ShortWindowConfig, ShortWindowSolver

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

LONG_SIZES = [8, 16] if PERF_SMOKE else [8, 16, 24, 32]
SHORT_SIZES = [10, 20] if PERF_SMOKE else [10, 20, 40, 60]
PARALLEL_SHORT_SIZES = [60, 120] if PERF_SMOKE else [120, 240, 400]
WORKERS = 4
CPU_COUNT = os.cpu_count() or 1


def _cpu_note(table: Table) -> None:
    if CPU_COUNT < 2:
        table.add_note(
            f"host has {CPU_COUNT} core(s): pool overhead cannot be recouped, "
            "so only output identity is asserted, not wall-time improvement"
        )


def bench_lp_compression(report, perf_json):
    """Legacy vs compressed constraint-(1) encoding: size and optimum."""
    table = Table(
        title="PERF (LP): legacy vs compressed constraint-(1) encoding",
        columns=[
            "n", "legacy nnz", "compressed nnz", "legacy mach nnz",
            "compressed mach nnz", "mach ratio", "legacy ms", "compressed ms",
        ],
    )
    rows = []
    for n in LONG_SIZES:
        gen = long_window_instance(n, 2, 10.0, seed=n)
        jobs = gen.instance.jobs
        T = gen.instance.calibration_length
        per_size: dict[str, object] = {"n": n}
        for formulation in ("legacy", "compressed"):
            tic = time.perf_counter()
            model = build_tise_lp(jobs, T, 3, formulation=formulation, names=False)
            build_ms = (time.perf_counter() - tic) * 1e3
            tic = time.perf_counter()
            solution = solve_tise_lp(jobs, T, 3, formulation=formulation)
            solve_ms = (time.perf_counter() - tic) * 1e3
            per_size[formulation] = {
                **{k: int(v) for k, v in model.stats.items()},
                "build_ms": round(build_ms, 3),
                "solve_ms": round(solve_ms, 3),
                "objective": solution.objective,
            }
        legacy, compressed = per_size["legacy"], per_size["compressed"]
        assert close(legacy["objective"], compressed["objective"]), (
            f"n={n}: compressed LP optimum {compressed['objective']} != "
            f"legacy {legacy['objective']}"
        )
        ratio = legacy["machine_nnz"] / max(1, compressed["machine_nnz"])
        per_size["machine_nnz_ratio"] = round(ratio, 2)
        if n >= 32:
            assert ratio >= 3.0, (
                f"n={n}: compressed machine-budget nonzeros only {ratio:.2f}x "
                "smaller; the acceptance bar is 3x"
            )
        rows.append(per_size)
        table.add_row(
            n, legacy["nnz"], compressed["nnz"], legacy["machine_nnz"],
            compressed["machine_nnz"], ratio,
            legacy["build_ms"], compressed["build_ms"],
        )
    table.add_note(
        "identical LP optima; the telescoped window rows carry O(1) amortized "
        "terms per calibration point instead of O(window)"
    )
    report(table, "perf_lp_compression")
    perf_json("lp_compression", {"machine_budget": 3, "sizes": rows})


def bench_perf_scaling_long(benchmark, report, perf_json):
    solver = LongWindowSolver()
    table = Table(
        title="PERF (long side): per-stage wall time vs n",
        columns=["n", "points ms", "lp ms", "rounding ms", "edf ms", "validate ms", "total ms"],
    )
    rows = []
    for n in LONG_SIZES:
        gen = long_window_instance(n, 2, 10.0, seed=n)
        tic = time.perf_counter()
        result = solver.solve(gen.instance)
        total = (time.perf_counter() - tic) * 1e3
        wt = result.wall_times
        rows.append(
            {
                "n": n,
                "stage_ms": {k: round(v * 1e3, 3) for k, v in wt.items()},
                "total_ms": round(total, 3),
                "lp_stats": result.lp_stats,
            }
        )
        table.add_row(
            n,
            wt["points"] * 1e3,
            wt["lp"] * 1e3,
            wt["rounding"] * 1e3,
            wt["edf"] * 1e3,
            wt.get("validate", 0.0) * 1e3,
            total,
        )
    table.add_note("LP solve dominates; the compressed model keeps its growth polynomial")
    report(table, "perf_scaling_long")
    perf_json("long_stage_times", {"sizes": rows})

    gen = long_window_instance(16, 2, 10.0, seed=16)
    benchmark(lambda: solver.solve(gen.instance))


def bench_perf_scaling_short(benchmark, report, perf_json):
    solver = ShortWindowSolver()
    table = Table(
        title="PERF (short side): per-stage wall time vs n",
        columns=["n", "partition ms", "mm ms", "lift ms", "validate ms", "intervals"],
    )
    rows = []
    for n in SHORT_SIZES:
        gen = short_window_instance(n, 2, 10.0, seed=n)
        result = solver.solve(gen.instance)
        wt = result.wall_times
        rows.append(
            {
                "n": n,
                "stage_ms": {k: round(v * 1e3, 3) for k, v in wt.items()},
                "intervals": len(result.intervals),
            }
        )
        table.add_row(
            n,
            wt["partition"] * 1e3,
            wt["mm"] * 1e3,
            wt["lift"] * 1e3,
            wt.get("validate", 0.0) * 1e3,
            len(result.intervals),
        )
    table.add_note(
        "the MM black box dominates; its cost is per-interval, so the total "
        "grows with the number of occupied intervals, not the horizon"
    )
    report(table, "perf_scaling_short")
    perf_json("short_stage_times", {"sizes": rows})

    gen = short_window_instance(20, 2, 10.0, seed=20)
    benchmark(lambda: solver.solve(gen.instance))


def bench_perf_parallel_short(report, perf_json):
    """Serial vs parallel per-interval MM solves: identical output, walls."""
    table = Table(
        title="PERF (parallel): per-interval MM fan-out, serial vs pool",
        columns=[
            "n", "intervals", "serial mm ms", "pool mm ms", "speedup",
            "workers", "identical",
        ],
    )
    rows = []
    for n in PARALLEL_SHORT_SIZES:
        gen = short_window_instance(n, 4, 10.0, seed=n)
        instance = gen.instance
        serial_cfg = ShortWindowConfig(mm_algorithm="exact")
        pool_cfg = ShortWindowConfig(mm_algorithm="exact", max_workers=WORKERS)
        ShortWindowSolver(serial_cfg).solve(instance)  # warm caches
        tic = time.perf_counter()
        serial = ShortWindowSolver(serial_cfg).solve(instance)
        serial_wall = time.perf_counter() - tic
        tic = time.perf_counter()
        pooled = ShortWindowSolver(pool_cfg).solve(instance)
        pool_wall = time.perf_counter() - tic
        identical = serial.schedule == pooled.schedule
        assert identical, f"n={n}: parallel short-window schedule differs from serial"
        if CPU_COUNT >= 2:
            assert pool_wall < serial_wall, (
                f"n={n}: {WORKERS} workers on {CPU_COUNT} cores did not beat "
                f"the serial wall ({pool_wall:.3f}s vs {serial_wall:.3f}s)"
            )
        speedup = serial_wall / pool_wall if pool_wall > 0 else float("inf")
        rows.append(
            {
                "n": n,
                "intervals": len(serial.intervals),
                "serial_wall_ms": round(serial_wall * 1e3, 3),
                "parallel_wall_ms": round(pool_wall * 1e3, 3),
                "serial_mm_ms": round(serial.wall_times["mm"] * 1e3, 3),
                "parallel_mm_ms": round(pooled.wall_times["mm"] * 1e3, 3),
                "parallel_mm_cpu_ms": round(pooled.wall_times["mm_cpu"] * 1e3, 3),
                "speedup": round(speedup, 3),
                "workers_used": pooled.workers_used,
                "identical_schedules": identical,
            }
        )
        table.add_row(
            n, len(serial.intervals), serial.wall_times["mm"] * 1e3,
            pooled.wall_times["mm"] * 1e3, speedup, pooled.workers_used,
            identical,
        )
    _cpu_note(table)
    report(table, "perf_parallel_short")
    perf_json(
        "short_parallel",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            # Honest flag for starved runners: with fewer cores than
            # workers the speedup number measures pool overhead, not
            # parallelism, and the baseline gate must not regress on it.
            "under_provisioned": CPU_COUNT < WORKERS,
            "mm_algorithm": "exact",
            "sizes": rows,
        },
    )


def bench_perf_parallel_sweep(report, perf_json):
    """Serial vs parallel sweep case loop: identical outcomes, walls."""
    sweep_n = 16 if PERF_SMOKE else 24
    cases = [
        SweepCase(family=family, n=sweep_n, machines=2, calibration_length=10.0, seed=seed)
        for family in ("mixed", "short", "long")
        for seed in range(2 if PERF_SMOKE else 4)
    ]
    tic = time.perf_counter()
    serial = run_sweep(cases)
    serial_wall = time.perf_counter() - tic
    tic = time.perf_counter()
    pooled = run_sweep(cases, workers=WORKERS)
    pool_wall = time.perf_counter() - tic

    def strip(outcome):
        return (
            outcome.case, outcome.calibrations, outcome.calibrations_postopt,
            outcome.lower_bound, outcome.machines_used, outcome.valid,
        )

    identical = [strip(a) for a in serial] == [strip(b) for b in pooled]
    assert identical, "parallel sweep outcomes differ from serial"
    if CPU_COUNT >= 2:
        assert pool_wall < serial_wall, (
            f"{WORKERS} workers on {CPU_COUNT} cores did not beat the serial "
            f"sweep wall ({pool_wall:.3f}s vs {serial_wall:.3f}s)"
        )
    speedup = serial_wall / pool_wall if pool_wall > 0 else float("inf")
    table = Table(
        title="PERF (parallel): sweep case loop, serial vs pool",
        columns=["cases", "serial ms", "pool ms", "speedup", "identical"],
    )
    table.add_row(
        len(cases), serial_wall * 1e3, pool_wall * 1e3, speedup, identical
    )
    _cpu_note(table)
    report(table, "perf_parallel_sweep")
    perf_json(
        "sweep_parallel",
        {
            "workers": WORKERS,
            "cpu_count": CPU_COUNT,
            "under_provisioned": CPU_COUNT < WORKERS,
            "cases": len(cases),
            "serial_wall_ms": round(serial_wall * 1e3, 3),
            "parallel_wall_ms": round(pool_wall * 1e3, 3),
            "speedup": round(speedup, 3),
            "identical_outcomes": identical,
        },
    )
