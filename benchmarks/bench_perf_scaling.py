"""PERF — running-time scaling of every pipeline stage.

Paper claim (Theorem 1): the algorithm runs in time polynomial in the input
length times the MM black box's time.  Measured here: wall time per stage
(calibration points, LP, rounding, EDF, validation; MM + lifting on the
short side) as n grows.  Expected shape: LP solve dominates the long side
and grows polynomially (the LP has O(n^2) points / O(n^3) variables);
everything else is near-linear.
"""

from __future__ import annotations

import time

from repro.analysis import Table
from repro.instances import long_window_instance, short_window_instance
from repro.longwindow import LongWindowSolver
from repro.shortwindow import ShortWindowSolver

LONG_SIZES = [8, 16, 24, 32]
SHORT_SIZES = [10, 20, 40, 60]


def bench_perf_scaling_long(benchmark, report):
    solver = LongWindowSolver()
    table = Table(
        title="PERF (long side): per-stage wall time vs n",
        columns=["n", "points ms", "lp ms", "rounding ms", "edf ms", "validate ms", "total ms"],
    )
    for n in LONG_SIZES:
        gen = long_window_instance(n, 2, 10.0, seed=n)
        tic = time.perf_counter()
        result = solver.solve(gen.instance)
        total = (time.perf_counter() - tic) * 1e3
        wt = result.wall_times
        table.add_row(
            n,
            wt["points"] * 1e3,
            wt["lp"] * 1e3,
            wt["rounding"] * 1e3,
            wt["edf"] * 1e3,
            wt.get("validate", 0.0) * 1e3,
            total,
        )
    table.add_note("LP dominates and scales with the O(n^2)-point model size")
    report(table, "perf_scaling_long")

    gen = long_window_instance(16, 2, 10.0, seed=16)
    benchmark(lambda: solver.solve(gen.instance))


def bench_perf_scaling_short(benchmark, report):
    solver = ShortWindowSolver()
    table = Table(
        title="PERF (short side): per-stage wall time vs n",
        columns=["n", "partition ms", "mm ms", "lift ms", "validate ms", "intervals"],
    )
    for n in SHORT_SIZES:
        gen = short_window_instance(n, 2, 10.0, seed=n)
        result = solver.solve(gen.instance)
        wt = result.wall_times
        table.add_row(
            n,
            wt["partition"] * 1e3,
            wt["mm"] * 1e3,
            wt["lift"] * 1e3,
            wt.get("validate", 0.0) * 1e3,
            len(result.intervals),
        )
    table.add_note(
        "the MM black box dominates; its cost is per-interval, so the total "
        "grows with the number of occupied intervals, not the horizon"
    )
    report(table, "perf_scaling_short")

    gen = short_window_instance(20, 2, 10.0, seed=20)
    benchmark(lambda: solver.solve(gen.instance))
