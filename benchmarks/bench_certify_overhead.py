"""CRT — end-to-end overhead of verified mode (solve certificates).

Verified mode (``ISEConfig(verify=True)``) runs an independent
re-validation pass on the merged result and issues a checksummed
:class:`SolveCertificate` before the result escapes.  That pass is one
``validate_ise`` sweep plus two digests — it must stay a small fraction
of the solve itself: the acceptance bar is <5% end-to-end overhead on
instances where the solve dominates.

Measured here: best-of-N wall time for ``solve_ise(instance, config)``
with ``verify=False`` vs the identical config with ``verify=True``.
Everything else — strictness, backends, budgets — is held fixed, so the
verified path pays exactly the certification delta.  ``PERF_SMOKE=1``
shrinks sizes and repeats for CI.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time

from repro.analysis import Table
from repro.core.solver import ISEConfig, solve_ise
from repro.instances import mixed_instance

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

SIZES = [12, 24] if PERF_SMOKE else [12, 24, 40, 60]
REPEATS = 3 if PERF_SMOKE else 7

_PLAIN = ISEConfig(strict=False)
_VERIFIED = dataclasses.replace(_PLAIN, verify=True)


def _best_ms(instance, config: ISEConfig) -> float:
    samples = []
    for _ in range(REPEATS):
        tic = time.perf_counter()
        solve_ise(instance, config)
        samples.append((time.perf_counter() - tic) * 1e3)
    return min(samples)


def bench_certify_overhead(benchmark, report, perf_json):
    table = Table(
        title="CRT: end-to-end overhead of verified mode",
        columns=["n", "plain ms", "verified ms", "overhead %"],
    )
    rows = []
    overheads = []
    for n in SIZES:
        instance = mixed_instance(n, 2, 10.0, seed=n).instance
        solve_ise(instance, _VERIFIED)  # warm every code path once
        plain = _best_ms(instance, _PLAIN)
        verified = _best_ms(instance, _VERIFIED)
        overhead = (verified - plain) / plain * 100.0
        overheads.append(overhead)
        rows.append(
            {
                "n": n,
                "plain_ms": round(plain, 3),
                "verified_ms": round(verified, 3),
                "overhead_pct": round(overhead, 3),
            }
        )
        table.add_row(n, plain, verified, overhead)
    table.add_note(
        "overhead = (verified - plain) / plain on best-of-"
        f"{REPEATS} solves; verified = same config with verify=True "
        "(independent validate_ise + certificate digests)"
    )
    table.add_note(
        f"mean overhead {statistics.mean(overheads):+.2f}% "
        "(acceptance bar: < 5%)"
    )
    report(table, "certify_overhead")
    perf_json(
        "certify_overhead",
        {
            "repeats": REPEATS,
            "smoke": PERF_SMOKE,
            "mean_overhead_pct": round(statistics.mean(overheads), 3),
            "cases": rows,
        },
    )

    instance = mixed_instance(SIZES[-1], 2, 10.0, seed=SIZES[-1]).instance
    benchmark(lambda: solve_ise(instance, _VERIFIED))
