"""SA: wall time of the whole-program flow analyzer over src/repro.

The ``repro-lint --flow`` gate runs in CI and is suggested as a pre-commit
step (via ``--changed``), so its latency is a product property: the
acceptance bar from the issue is a **full-repo run under 10 seconds**.
Three figures are recorded:

* *cold* — empty cache: every module parsed and summarized from source;
* *warm* — second run against the hash-keyed summary cache (graph
  assembly and rule evaluation still happen, parsing does not);
* *changed* — warm cache with one touched file, the ``--changed``
  pre-commit scenario.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.analysis import Table
from repro.devtools.flow import FlowConfig, GraphCache, analyze_package

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
BAR_SECONDS = 10.0


def _timed(cache_dir: Path) -> tuple[float, int]:
    tic = time.perf_counter()
    result = analyze_package(
        SRC_ROOT, config=FlowConfig.default(), cache_dir=cache_dir
    )
    elapsed = time.perf_counter() - tic
    assert result.diagnostics == [], "src/repro must be flow-clean"
    return elapsed, len(result.graph.summaries)


def bench_flow_analysis(benchmark, report, perf_json):
    scratch = Path(tempfile.mkdtemp(prefix="bench-flow-"))
    try:
        cache = scratch / "cache"
        cold_s, modules = _timed(cache)
        warm_s, _ = _timed(cache)
        # --changed scenario: evict one module's summary so exactly one
        # file is re-parsed against an otherwise warm cache.
        store = GraphCache(cache, SRC_ROOT.name)
        summaries = store.load()
        summaries.pop(next(iter(sorted(summaries))))
        store.store(summaries)
        changed_s, _ = _timed(cache)

        table = Table(
            title="SA: flow-analyzer wall time over src/repro",
            columns=["scenario", "seconds", "modules"],
        )
        rows = {"cold_s": cold_s, "warm_s": warm_s, "changed_s": changed_s}
        for scenario, seconds in rows.items():
            table.add_row(scenario.removesuffix("_s"), round(seconds, 3), modules)
        table.add_note(
            f"acceptance bar: full-repo cold run < {BAR_SECONDS:.0f} s "
            f"(measured {cold_s:.2f} s)"
        )
        assert cold_s < BAR_SECONDS, (
            f"flow analysis took {cold_s:.2f}s, bar is {BAR_SECONDS}s"
        )
        report(table, "flow_analysis")
        perf_json(
            "static_analysis",
            {
                "modules": modules,
                "bar_seconds": BAR_SECONDS,
                **{key: round(value, 3) for key, value in rows.items()},
            },
        )
        benchmark(lambda: _timed(cache))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
