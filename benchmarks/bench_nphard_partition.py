"""NPH — the Section 1 NP-hardness gadget in practice.

Paper remark: feasibility testing is NP-hard by reduction from Partition
(m = 2, r_j = 0, d_j = T, sum p_j = 2T), which is why resource augmentation
is necessary for polynomial-time algorithms.

Measured here: exact feasibility search cost (branch-and-bound nodes /
time) growing with the number of values, while the augmented short-window
pipeline solves every gadget in polynomial time using extra machines.
Expected shape: exact cost grows sharply; the augmented solver's cost grows
mildly and its machine usage exceeds the m = 2 budget (the augmentation at
work).
"""

from __future__ import annotations

import time

from repro import solve_ise
from repro.analysis import Table
from repro.core import validate_ise
from repro.mm import ExactMM
from repro.instances import partition_instance

SIZES = [3, 5, 7, 9, 11]


def bench_nphard_partition(benchmark, report):
    table = Table(
        title="NPH: Partition gadgets — exact search vs augmented solver",
        columns=[
            "k values", "n jobs", "exact MM time (ms)", "exact w",
            "aug time (ms)", "aug cals", "aug machines", "valid",
        ],
    )
    for k in SIZES:
        gen = partition_instance(k, seed=k)
        tic = time.perf_counter()
        exact_w = ExactMM(node_budget=500_000).solve(gen.instance.jobs).num_machines
        exact_ms = (time.perf_counter() - tic) * 1e3

        tic = time.perf_counter()
        result = solve_ise(gen.instance)
        aug_ms = (time.perf_counter() - tic) * 1e3
        valid = validate_ise(gen.instance, result.schedule).ok
        table.add_row(
            k, gen.instance.n, exact_ms, exact_w,
            aug_ms, result.num_calibrations, result.machines_used, valid,
        )
        assert valid
        assert exact_w == 2  # a perfect partition exists by construction
    table.add_note(
        "each gadget hides a perfect partition (exact w = 2 always); the "
        "augmented solver never needs to find it — it spends machines "
        "instead of solving Partition"
    )
    report(table, "nphard_partition")

    gen = partition_instance(7, seed=7)
    benchmark(lambda: solve_ise(gen.instance))
