"""T1 — the headline result: the combined solver on mixed workloads.

Paper claim (Theorem 1): given an s-speed O(alpha)-approximate MM black box,
the combined algorithm is an O(alpha)-machine s-speed O(alpha)-approximation
for ISE.

Measured here: end-to-end calibrations vs the certified combined lower
bound, against the two naive baselines.  Expected shape ("who wins, by what
factor"): the combined solver beats one-calibration-per-job by the sharing
factor and beats the always-calibrated policy by a factor growing with the
workload's idle gaps (dramatic on the clustered family).
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import Table, ratio
from repro.baselines import always_calibrated, one_calibration_per_job
from repro.core import validate_ise
from repro.instances import clustered_instance, mixed_instance

SWEEP = [
    ("mixed", lambda s: mixed_instance(20, 2, 10.0, s)),
    ("mixed", lambda s: mixed_instance(30, 3, 10.0, s + 10)),
    ("clustered", lambda s: clustered_instance(24, 2, 10.0, s)),
    ("clustered", lambda s: clustered_instance(24, 2, 10.0, s, intercluster_gap_factor=12.0)),
]
SEEDS = [0, 1]


def bench_thm1_endtoend(benchmark, report):
    table = Table(
        title="T1: combined solver vs baselines (calibrations)",
        columns=[
            "family", "seed", "LB", "ours", "ratio",
            "per-job", "always-cal", "win vs per-job", "win vs always",
        ],
    )
    wins_perjob = []
    wins_always = []
    for family, make in SWEEP:
        for seed in SEEDS:
            gen = make(seed)
            result = solve_ise(gen.instance)
            assert validate_ise(gen.instance, result.schedule).ok
            perjob = one_calibration_per_job(gen.instance).num_calibrations
            always = always_calibrated(gen.instance).num_calibrations
            lb = result.lower_bound.best
            ours = result.num_calibrations
            table.add_row(
                family, seed, lb, ours, ratio(ours, lb),
                perjob, always,
                ratio(perjob, ours), ratio(always, ours),
            )
            wins_perjob.append(perjob / max(ours, 1))
            wins_always.append(always / max(ours, 1))
    table.add_note(
        f"mean win vs per-job {sum(wins_perjob)/len(wins_perjob):.2f}x, "
        f"vs always-calibrated {sum(wins_always)/len(wins_always):.2f}x "
        "(always-calibrated pays for idle gaps -> largest on clustered)"
    )
    report(table, "thm1_endtoend")
    # The combined solver should win on average against both baselines.
    assert sum(wins_always) / len(wins_always) > 1.0

    gen = mixed_instance(20, 2, 10.0, 0)
    benchmark(lambda: solve_ise(gen.instance))
