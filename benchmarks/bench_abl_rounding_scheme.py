"""ABL5 — Algorithm 1's greedy scan vs per-point ceiling rounding.

Design choice probed: Algorithm 1 carries fractional mass *across* points
and emits one calibration per 1/2 accumulated, paying an unconditional 2x
(Lemma 7).  The obvious alternative — round each point up independently —
is also sound (pointwise dominance keeps the LP's own assignment feasible)
and costs ``mass + O(support)`` instead.

Measured here on real LP solutions: when the LP concentrates mass (small
support, near-integer masses) the ceiling wins; when it fractionalizes
across many points the ceiling's support term blows past 2x mass.  The
paper's scheme is the one whose bound holds on *every* input — the 2x is
the price of worst-case insurance, and this bench shows both regimes.
"""

from __future__ import annotations

from repro.analysis import Table, ratio
from repro.instances import long_window_instance
from repro.longwindow import naive_ceil_round, rounded_start_times, solve_tise_lp

SWEEP = [(8, 1, 0), (12, 2, 1), (16, 2, 2), (20, 2, 3), (24, 3, 4)]


def bench_abl_rounding_scheme(benchmark, report):
    T = 10.0
    table = Table(
        title="ABL5: Algorithm 1 greedy scan vs per-point ceiling",
        columns=[
            "n", "m", "seed", "LP mass", "support", "greedy (<=2x mass)",
            "ceil", "ceil/greedy",
        ],
    )
    sample = None
    total_greedy = total_ceil = 0
    for n, m, seed in SWEEP:
        gen = long_window_instance(n, m, T, seed)
        lp = solve_tise_lp(gen.instance.jobs, T, 3 * m)
        if sample is None:
            sample = lp
        greedy = rounded_start_times(lp.calibrations)
        ceil = naive_ceil_round(lp.calibrations)
        total_greedy += len(greedy)
        total_ceil += len(ceil)
        table.add_row(
            n, m, seed,
            lp.objective,
            len(lp.calibrations),
            len(greedy),
            len(ceil),
            ratio(len(ceil), len(greedy)),
        )
        # Each scheme's own guarantee:
        assert len(greedy) <= 2 * lp.objective + 1e-6            # Lemma 7
        assert len(ceil) <= lp.objective + len(lp.calibrations)  # mass+support
    # The reverse regime, synthetically: mass spread thin across the support.
    spread = {float(t): 0.05 for t in range(100)}
    spread_greedy = len(rounded_start_times(spread))
    spread_ceil = len(naive_ceil_round(spread))
    table.add_row(
        "-", "-", "spread", sum(spread.values()), len(spread),
        spread_greedy, spread_ceil, ratio(spread_ceil, spread_greedy),
    )
    assert spread_ceil == 100 and spread_greedy == 10
    table.add_note(
        f"totals on LP rows: greedy {total_greedy} vs ceiling {total_ceil} — "
        "vertex LP solutions concentrate mass, so the ceiling wins there; "
        "the synthetic spread row shows the 10x reversal that makes the "
        "paper's accumulating scan the only scheme with a worst-case bound"
    )
    report(table, "abl_rounding_scheme")

    benchmark(lambda: rounded_start_times(sample.calibrations))
