"""ONL — online sessions: competitive ratio, repair latency, journal cost.

Three questions about :class:`~repro.online.session.ISESession`:

1. **Competitive ratio** — streaming a release-ordered trace through a
   session (with a live commit horizon, so calibrations become immutable
   mid-stream) costs how many calibrations relative to the clairvoyant
   offline solve of the same instance?  The never-retract constraint is
   exactly what the offline solver doesn't pay for.
2. **Per-arrival repair latency** — how long does one ``submit_job``
   take, and how often does the cheap local-repair path absorb an arrival
   without a re-solve?
3. **Journal overhead** — the durable journal versus the same session
   kept purely in memory, under both sync policies.  Every mutation's
   records are batched into one write, so the remaining cost is the
   durability primitive itself: ``sync="os"`` (flush to the kernel —
   survives any process death, SIGKILL included, which is the chaos
   suite's entire failure model) must stay a rounding error next to the
   solves — the gated acceptance bar is < 5% end-to-end.  ``sync="full"``
   (fdatasync per mutation — survives power loss) is reported alongside;
   it pays the raw fdatasync floor (~0.2–0.5 ms) per mutation, which
   against sub-millisecond incremental solves is irreducibly tens of
   percent and is priced honestly rather than gated.

``PERF_SMOKE=1`` shrinks sizes and repeats for CI.
"""

from __future__ import annotations

import os
import shutil
import statistics
import tempfile
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis import Table
from repro.core.job import Instance
from repro.core.solver import solve_ise
from repro.instances import mixed_instance
from repro.online import ISESession

PERF_SMOKE = bool(os.environ.get("PERF_SMOKE"))

SIZES = [8, 16] if PERF_SMOKE else [8, 16, 24, 32]
REPEATS = 2 if PERF_SMOKE else 4
HORIZON = 2.0


def _trace(n: int, seed: int):
    """A release-ordered arrival trace plus its clamped offline twin."""
    instance = mixed_instance(n, 2, 10.0, seed).instance
    clamped = Instance(
        jobs=tuple(
            replace(job, release=max(job.release, 0.0))
            for job in instance.jobs
        ),
        machines=instance.machines,
        calibration_length=instance.calibration_length,
        name=instance.name,
    )
    arrivals = sorted(clamped.jobs, key=lambda job: job.release)
    return clamped, arrivals


def _stream(
    instance, arrivals, directory, sync: str = "full"
) -> tuple[ISESession, list[float]]:
    """Run one trace through a session; returns it plus per-arrival ms."""
    session = ISESession.create(
        directory,
        f"bench-{instance.name}",
        machines=instance.machines,
        calibration_length=instance.calibration_length,
        commit_horizon=HORIZON,
        sync=sync,
    )
    latencies = []
    for job in arrivals:
        tic = time.perf_counter()
        session.submit_job(
            job.job_id,
            release=job.release,
            deadline=job.deadline,
            processing=job.processing,
            at=job.release,
        )
        latencies.append((time.perf_counter() - tic) * 1e3)
    session.advance(instance.horizon[1] + instance.calibration_length)
    return session, latencies


def _journal_overhead_pct(instance, arrivals, sync: str) -> float:
    """Durable-write time as % of the solve time, same-run accounting.

    The journal records the wall time of its own durable writes
    (:attr:`~repro.online.session.ISESession.journal_write_seconds`), so
    overhead is write-time over everything-else *within one run* — no
    separately-timed in-memory control run whose solve-time variance
    (easily ±30% at these sizes) would swamp a sub-millisecond signal.
    Best-of-``REPEATS``.
    """
    samples = []
    for _ in range(REPEATS):
        directory = Path(tempfile.mkdtemp(prefix="bench-sessions-"))
        try:
            tic = time.perf_counter()
            session, _ = _stream(instance, arrivals, directory, sync)
            total = time.perf_counter() - tic
            journal = session.journal_write_seconds
            samples.append(journal / (total - journal) * 100.0)
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return min(samples)


def bench_online_sessions(benchmark, report, perf_json):
    table = Table(
        title="ONL: streaming sessions vs clairvoyant offline solves",
        columns=[
            "n", "offline cals", "online cals", "ratio", "repairs",
            "arrival ms (mean/max)", "journal overhead % (os/full)",
        ],
    )
    rows = []
    ratios = []
    os_overheads = []
    full_overheads = []
    for n in SIZES:
        instance, arrivals = _trace(n, seed=n)
        offline = solve_ise(instance).num_calibrations
        session, latencies = _stream(instance, arrivals, None)
        online = len(session.schedule.calibrations)
        ratio = online / offline
        ratios.append(ratio)

        os_overhead = _journal_overhead_pct(instance, arrivals, sync="os")
        full_overhead = _journal_overhead_pct(instance, arrivals, sync="full")
        os_overheads.append(os_overhead)
        full_overheads.append(full_overhead)

        mean_ms = statistics.mean(latencies)
        max_ms = max(latencies)
        rows.append(
            {
                "n": n,
                "offline_calibrations": offline,
                "online_calibrations": online,
                "competitive_ratio": round(ratio, 4),
                "repairs": session.repairs,
                "replans": session.replans,
                "arrival_mean_ms": round(mean_ms, 3),
                "arrival_max_ms": round(max_ms, 3),
                "journal_overhead_pct": round(os_overhead, 3),
                "fsync_overhead_pct": round(full_overhead, 3),
            }
        )
        table.add_row(
            n, offline, online, f"{ratio:.3f}", session.repairs,
            f"{mean_ms:.2f}/{max_ms:.2f}",
            f"{os_overhead:+.2f}/{full_overhead:+.2f}",
        )
    table.add_note(
        f"streamed release-ordered with commit horizon {HORIZON} "
        "(calibrations lock mid-stream); offline = clairvoyant solve_ise "
        "of the full instance"
    )
    mean_os = statistics.mean(os_overheads)
    table.add_note(
        f"journal overhead on best-of-{REPEATS} full traces: sync='os' "
        f"(SIGKILL-durable) mean {mean_os:+.2f}% — gated < 5%; sync='full' "
        f"(power-loss-durable) mean {statistics.mean(full_overheads):+.2f}% "
        "= the raw per-mutation fdatasync floor, reported not gated"
    )
    report(table, "online_sessions")
    perf_json(
        "online_sessions",
        {
            "repeats": REPEATS,
            "smoke": PERF_SMOKE,
            "commit_horizon": HORIZON,
            "mean_competitive_ratio": round(statistics.mean(ratios), 4),
            "max_competitive_ratio": round(max(ratios), 4),
            "mean_journal_overhead_pct": round(mean_os, 3),
            "mean_fsync_overhead_pct": round(
                statistics.mean(full_overheads), 3
            ),
            "cases": rows,
        },
    )
    # The gate: process-crash durability must be a rounding error.
    assert mean_os < 5.0, (
        f"sync='os' journal overhead {mean_os:+.2f}% breaches the < 5% bar"
    )

    instance, arrivals = _trace(SIZES[0], seed=SIZES[0])
    benchmark(lambda: _stream(instance, arrivals, None))
