"""Collect every bench's result table into a single RESULTS.md.

Usage:  python benchmarks/collect_results.py
Run it after ``pytest benchmarks/ --benchmark-only`` has (re)generated the
per-experiment tables in ``benchmarks/results/``; it writes ``RESULTS.md``
at the repository root with all tables in the DESIGN.md experiment order.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.atomicio import atomic_write_text

ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

# DESIGN.md experiment order (files missing on disk are skipped with a note).
ORDER = [
    ("FIG1", "fig1_tise_transform"),
    ("FIG2", "fig2_rounding"),
    ("FIG3", "fig3_augmented_rounding"),
    ("T12", "thm12_longwindow"),
    ("T14", "thm14_speed_tradeoff"),
    ("L7", "lem7_rounding_quality"),
    ("T20", "thm20_shortwindow"),
    ("T1", "thm1_endtoend"),
    ("L18", "lem18_lowerbound"),
    ("UNIT", "unit_baselines"),
    ("NPH", "nphard_partition"),
    ("AUG", "augmentation_frontier"),
    ("ABL1", "abl_rounding_threshold"),
    ("ABL2", "abl_window_threshold"),
    ("ABL3", "abl_lp_backend"),
    ("ABL4", "abl_consolidation"),
    ("ABL5", "abl_rounding_scheme"),
    ("VAR1", "var_overlapping"),
    ("BASE2", "base_greedy_vs_lp"),
    ("STRESS", "stress_families"),
    ("PERF", "perf_lp_compression"),
    ("PERF", "perf_scaling_long"),
    ("PERF", "perf_scaling_short"),
    ("PERF", "perf_parallel_short"),
    ("PERF", "perf_parallel_sweep"),
    ("RES", "resilience_overhead"),
    ("CKPT", "checkpoint_overhead"),
]


def main() -> int:
    lines = [
        "# RESULTS — regenerated experiment tables",
        "",
        "Produced by `python benchmarks/collect_results.py` from the tables",
        "written by `pytest benchmarks/ --benchmark-only`.  See EXPERIMENTS.md",
        "for the paper-claim-vs-measured discussion of each experiment.",
        "",
    ]
    missing = []
    for exp_id, name in ORDER:
        path = RESULTS_DIR / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            continue
        lines.append(f"## {exp_id}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    if missing:
        lines.append(
            f"_missing (bench not yet run): {', '.join(missing)}_"
        )
    out = ROOT / "RESULTS.md"
    atomic_write_text(out, "\n".join(lines) + "\n")
    print(f"wrote {out} ({len(ORDER) - len(missing)} tables)")

    from perf_artifact import merge_sections  # script-dir import

    bench_perf = merge_sections()
    print(f"wrote {bench_perf}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
