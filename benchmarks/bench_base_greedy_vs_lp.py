"""BASE2 — the LP pipeline vs direct lazy greed on long-window inputs.

Question the paper leaves implicit: the Theorem 12 pipeline pays an LP solve
and constant factors for its worst-case guarantee — what does an LP-free
lazy greedy achieve on the same instances?

Expected shape: on benign random inputs the greedy is competitive or better
(no mirroring overhead, no rounding slack); its weakness is the lack of any
guarantee — the pipeline's calibration count is provably <= 12 LB on *every*
feasible input, the greedy's is not.  Both sides are post-optimized for a
fair comparison.
"""

from __future__ import annotations

from repro.analysis import Table, ratio
from repro.baselines import lazy_tise_greedy
from repro.core import validate_tise
from repro.instances import long_window_instance, staircase_instance
from repro.longwindow import LongWindowSolver
from repro.postopt import consolidate

SWEEP = [
    ("long", lambda s: long_window_instance(14, 2, 10.0, s)),
    ("long", lambda s: long_window_instance(20, 3, 10.0, s + 10)),
    ("staircase", lambda s: staircase_instance(14, 2, 10.0, s)),
]
SEEDS = [0, 1, 2]


def bench_base_greedy_vs_lp(benchmark, report):
    solver = LongWindowSolver()
    table = Table(
        title="BASE2: Theorem 12 LP pipeline vs lazy TISE greedy (postopt'd)",
        columns=[
            "family", "seed", "LB", "LP pipeline", "greedy",
            "pipeline ratio", "greedy ratio", "winner",
        ],
    )
    wins = {"pipeline": 0, "greedy": 0, "tie": 0}
    for family, make in SWEEP:
        for seed in SEEDS:
            gen = make(seed)
            pipe = solver.solve(gen.instance)
            pipe_count = consolidate(
                gen.instance, pipe.schedule
            ).final_calibrations
            greedy_schedule = lazy_tise_greedy(gen.instance)
            assert validate_tise(gen.instance, greedy_schedule).ok
            greedy_count = consolidate(
                gen.instance, greedy_schedule
            ).final_calibrations
            lb = pipe.lower_bound
            if greedy_count < pipe_count:
                winner = "greedy"
            elif pipe_count < greedy_count:
                winner = "pipeline"
            else:
                winner = "tie"
            wins[winner] += 1
            table.add_row(
                family, seed, lb, pipe_count, greedy_count,
                ratio(pipe_count, lb), ratio(greedy_count, lb), winner,
            )
    table.add_note(
        f"wins: {wins} — greed is competitive on benign inputs but carries "
        "no guarantee; the pipeline's count is provably <= 12 LB on every "
        "feasible instance"
    )
    report(table, "base_greedy_vs_lp")

    gen = long_window_instance(14, 2, 10.0, 0)
    benchmark(lambda: lazy_tise_greedy(gen.instance))
