"""FIG1 — regenerate Figure 1: the Lemma 2 ISE-to-TISE transformation.

Paper artifact: Figure 1, panels (A) job windows, (B) the feasible one-
machine ISE schedule, (C) the constructed 3-machine TISE schedule where jobs
1 and 5 are advanced and job 7 is delayed.

Reproduction claim checked here: the transformation triples machines and
calibrations exactly, keeps the schedule TISE-feasible, and moves exactly
the jobs the caption says it moves.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import validate_ise, validate_tise
from repro.instances import figure1_instance
from repro.longwindow import ise_to_tise
from repro.viz import render_schedule, render_windows

EXPECTED_ACTIONS = {
    1: "advance",
    2: "keep",
    3: "keep",
    4: "keep",
    5: "advance",
    6: "keep",
    7: "delay",
}


def bench_fig1_tise_transform(benchmark, report):
    instance, ise_schedule = figure1_instance()
    tise_schedule, traces = benchmark(lambda: ise_to_tise(instance, ise_schedule))

    assert validate_ise(instance, ise_schedule).ok
    assert validate_tise(instance, tise_schedule).ok

    table = Table(
        title="FIG1: Lemma 2 transformation on the Figure 1 example",
        columns=["job", "action", "machine i -> target", "start -> new start", "matches paper"],
    )
    actions = {}
    for trace in sorted(traces, key=lambda t: t.job_id):
        actions[trace.job_id] = trace.action
        table.add_row(
            trace.job_id,
            trace.action,
            f"{trace.source_machine} -> {trace.target_machine}",
            f"{trace.old_start:g} -> {trace.new_start:g}",
            trace.action == EXPECTED_ACTIONS[trace.job_id],
        )
    table.add_note(
        f"machines {ise_schedule.num_machines} -> {tise_schedule.num_machines} (x3), "
        f"calibrations {ise_schedule.num_calibrations} -> "
        f"{tise_schedule.num_calibrations} (x3); TISE-valid: yes"
    )
    report(table, "fig1_tise_transform")

    print("\n-- Figure 1 (A): job windows --")
    print(render_windows(instance.jobs))
    print("\n-- Figure 1 (B): ISE schedule on machine i --")
    print(render_schedule(instance, ise_schedule))
    print("\n-- Figure 1 (C): constructed TISE schedule on i', i+, i- --")
    print(render_schedule(instance, tise_schedule))

    assert actions == EXPECTED_ACTIONS
    assert tise_schedule.num_machines == 3 * ise_schedule.num_machines
    assert tise_schedule.num_calibrations == 3 * ise_schedule.num_calibrations
