"""Parameter study: quality distributions across workload families.

Runs the "standard" preset suite through the combined solver + post
optimizer and reports the kind of distributional summary an evaluation
section would print: per-family mean/median/p95 approximation ratios
(against certified lower bounds), post-optimization recovery, and solve
time.

Run:  python examples/parameter_study.py          (~30 s)
      python examples/parameter_study.py smoke    (seconds)
"""

from __future__ import annotations

import sys

from repro.analysis import distribution_table, run_sweep, sweep_table
from repro.instances import preset_cases


def main(preset: str = "standard") -> None:
    cases = preset_cases(preset)
    print(f"running preset {preset!r}: {len(cases)} cases ...")
    outcomes = run_sweep(cases)

    distribution_table(
        outcomes, title=f"quality distribution — preset {preset}"
    ).print()

    worst = max(outcomes, key=lambda o: o.quality_ratio)
    print(
        f"\nworst case: {worst.case.family} seed={worst.case.seed} "
        f"ratio={worst.quality_ratio:.2f} "
        f"({worst.calibrations_postopt} calibrations vs LB {worst.lower_bound:.2f})"
    )
    print(
        "reminder: ratios are measured against certified lower bounds, so "
        "they upper-bound the true approximation ratios"
    )

    if "-v" in sys.argv:
        sweep_table(outcomes, title="all cases").print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 and not sys.argv[1].startswith("-") else "standard")
