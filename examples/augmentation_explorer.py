"""Exploring resource augmentation on NP-hard gadgets.

The paper's algorithms live in the machines/speed augmentation model because
even *feasibility* of ISE is NP-hard (Partition reduction, Section 1).  This
example makes the model concrete: for Partition gadgets hiding a perfect
split, how much speed does each machine count require?

Run:  python examples/augmentation_explorer.py
"""

from __future__ import annotations

from repro.analysis import augmentation_frontier, frontier_table
from repro.instances import partition_instance


def main() -> None:
    for k in (4, 6):
        gen = partition_instance(k, seed=k)
        instance = gen.instance
        print(
            f"\nPartition gadget: {instance.n} jobs summing to "
            f"{instance.total_work:g}, T = {instance.calibration_length:g}, "
            "perfect split hidden by construction"
        )
        points = augmentation_frontier(instance, max_machines=3)
        frontier_table(
            points, title=f"frontier for partition(k={k})"
        ).print()
    print(
        "\nreading: one machine must run everything in [0, T) — twice the "
        "work T can hold — so speed 2 is forced;\ntwo machines at speed 1 "
        "suffice exactly when the hidden Partition split is found (the "
        "exact oracle finds it);\nthis is why polynomial-time ISE algorithms "
        "need augmentation, and what Theorems 12/14/20 charge for."
    )


if __name__ == "__main__":
    main()
