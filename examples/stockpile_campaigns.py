"""Stockpile-evaluation campaigns: the workload that motivates the ISE problem.

The ISE problem comes from Sandia's Integrated Stockpile Evaluation program:
weapons tests arrive in campaigns (bursts), testing devices must be
calibrated to be usable, and calibrations are the expensive resource.  The
operational strawman is to keep devices calibrated continuously ("always
ready"); the paper's algorithms instead place calibrations only where the
workload needs them.

This example quantifies that gap on bursty campaign workloads with growing
idle periods between campaigns.

Run:  python examples/stockpile_campaigns.py
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import Table
from repro.baselines import always_calibrated, one_calibration_per_job
from repro.core import validate_ise
from repro.instances import clustered_instance


def main() -> None:
    T = 10.0
    table = Table(
        title="campaign workloads: calibrations by policy",
        columns=[
            "gap between campaigns", "lower bound", "ISE solver",
            "per-test calibration", "always calibrated", "saving vs always",
        ],
    )
    for gap_factor in (2.0, 6.0, 12.0, 24.0):
        gen = clustered_instance(
            n=24,
            machines=2,
            calibration_length=T,
            seed=7,
            num_clusters=3,
            intercluster_gap_factor=gap_factor,
        )
        result = solve_ise(gen.instance)
        assert validate_ise(gen.instance, result.schedule).ok
        per_job = one_calibration_per_job(gen.instance).num_calibrations
        always = always_calibrated(gen.instance).num_calibrations
        table.add_row(
            f"{gap_factor:g} T",
            result.lower_bound.best,
            result.num_calibrations,
            per_job,
            always,
            f"{always / result.num_calibrations:.1f}x",
        )
    table.add_note(
        "the always-calibrated policy pays per unit of wall-clock time, so "
        "its cost grows with the campaign gaps while the ISE solver's cost "
        "tracks the workload — the core economic argument for calibration "
        "scheduling"
    )
    table.print()


if __name__ == "__main__":
    main()
