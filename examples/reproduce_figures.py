"""Reproduce the paper's three figures in the terminal.

Runs the exact constructions behind Figures 1-3 of Fineman & Sheridan
(SPAA 2015) on the reconstructed example data and renders them as ASCII —
the fastest way to *see* the paper's machinery working.

Run:  python examples/reproduce_figures.py
"""

from __future__ import annotations

from repro.core import validate_ise, validate_tise
from repro.instances import (
    figure1_instance,
    figure2_fractional_calibrations,
    figure3_inputs,
)
from repro.longwindow import augmented_round, ise_to_tise, rounded_start_times
from repro.viz import render_fractional_calibrations, render_schedule, render_windows


def figure1() -> None:
    print("=" * 72)
    print("Figure 1 — Lemma 2: ISE schedule -> TISE schedule (3x machines)")
    print("=" * 72)
    instance, ise_schedule = figure1_instance()
    assert validate_ise(instance, ise_schedule).ok

    print("\n(A) job windows (lines are [r_j, d_j)):\n")
    print(render_windows(instance.jobs))

    print("\n(B) the feasible ISE schedule on machine i:\n")
    print(render_schedule(instance, ise_schedule))

    tise_schedule, traces = ise_to_tise(instance, ise_schedule)
    assert validate_tise(instance, tise_schedule).ok
    print("\n(C) the constructed TISE schedule on i' (m0), i+ (m1), i- (m2):\n")
    print(render_schedule(instance, tise_schedule))
    moved = {t.job_id: t.action for t in traces if t.action != "keep"}
    print(f"\nmoves: {moved}  (paper: jobs 1, 5 advanced; job 7 delayed)")


def figure2() -> None:
    print("\n" + "=" * 72)
    print("Figure 2 — Algorithm 1: rounding fractional calibrations")
    print("=" * 72)
    fractional = figure2_fractional_calibrations()
    emitted = rounded_start_times(fractional)
    print("\nbars = fractional mass C_t; '*' = emitted integer calibrations:\n")
    print(render_fractional_calibrations(fractional, emitted))
    print(
        f"\nemitted at t={emitted}: one calibration when the running total "
        "crosses 1/2 (after the 2nd point), two at the 4th (crossing 1 and 3/2)"
    )


def figure3() -> None:
    print("\n" + "=" * 72)
    print("Figure 3 — Algorithm 3: fractional write-back and the discard")
    print("=" * 72)
    jobs, calibrations, assignments = figure3_inputs()
    result = augmented_round(jobs, calibrations, assignments, 10.0)
    print()
    for job in jobs:
        assigned = sum(x for (j, _), x in assignments.items() if j == job.job_id)
        written = result.assignment.coverage(job.job_id)
        discarded = result.discarded.get(job.job_id, 0.0)
        print(
            f"job {job.job_id}: assigned {assigned:.2f}, written (2x "
            f"write-back) {written:.2f}, discarded tail {discarded:.2f}"
        )
    print(
        "\njob 2's mass at t=5 is delayed past its TISE-latest point (t=6) "
        "and discarded;\nLemma 5 bounds the discard by the carryover (<= 1/2) "
        f"— observed max(y - carryover) = {result.max_y_minus_carryover:.2e}"
    )


if __name__ == "__main__":
    figure1()
    figure2()
    figure3()
