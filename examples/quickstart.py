"""Quickstart: generate a workload, solve it, inspect the result.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import summarize_schedule
from repro.core import validate_ise
from repro.instances import mixed_instance
from repro.viz import render_schedule, render_windows


def main() -> None:
    # A feasible-by-construction workload: 18 jobs, 2 machines, T = 10.
    # The generator also returns a hidden witness schedule proving
    # feasibility (and upper-bounding the optimal calibration count).
    gen = mixed_instance(n=18, machines=2, calibration_length=10.0, seed=42)
    instance = gen.instance
    print(f"instance: {instance.name}")
    print(f"  jobs={instance.n}  machines={instance.machines}  T={instance.calibration_length}")
    print(f"  witness uses {gen.witness_calibrations} calibrations\n")

    print("job windows:")
    print(render_windows(instance.jobs))

    # Solve with the paper's combined algorithm (Theorem 1): long-window
    # jobs through the Section 3 LP pipeline, short-window jobs through the
    # Section 4 MM reduction.
    result = solve_ise(instance)

    print("\nsolution:")
    print(f"  calibrations       = {result.num_calibrations}")
    print(f"  machines used      = {result.machines_used}")
    print(f"  lower bound        = {result.lower_bound.best:.2f} "
          f"(work={result.lower_bound.work}, "
          f"long-LP={result.lower_bound.long_lp:.2f}, "
          f"short-interval={result.lower_bound.short_interval:.2f})")
    print(f"  approximation      <= {result.approximation_ratio:.2f} "
          f"(theorem worst case: 12 for the long side)")
    print(f"  long/short split   = {result.partition.n_long}/{result.partition.n_short}")

    # Always re-check with the independent validator.
    report = validate_ise(instance, result.schedule)
    print(f"  validator          = {report.summary()}")
    assert report.ok

    metrics = summarize_schedule(instance, result.schedule)
    print(f"  calibrated time    = {metrics.calibrated_time:g}")
    print(f"  utilization        = {metrics.utilization:.1%}")

    print("\nschedule (machines x time):")
    print(render_schedule(instance, result.schedule, width=96))


if __name__ == "__main__":
    main()
