"""Operations report: solve, post-optimize, execute, and export a schedule.

A lab manager's workflow on a heavy-tailed test campaign:

1. solve with the paper's combined algorithm,
2. run the local-search consolidation pass to squeeze out extra
   calibrations,
3. execute the schedule in the discrete-event simulator for operational
   statistics (utilization, calibrated-idle time, makespan),
4. export an SVG Gantt chart for the operations review.

Run:  python examples/operations_report.py  (writes /tmp/ise_schedule.svg)
"""

from __future__ import annotations

from repro import solve_ise
from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import heavy_tail_instance
from repro.postopt import consolidate
from repro.sim import simulate
from repro.viz import save_schedule_svg


def main() -> None:
    gen = heavy_tail_instance(n=28, machines=3, calibration_length=10.0, seed=11)
    instance = gen.instance
    print(f"workload: {instance.name} — {instance.n} tests, heavy-tailed durations")

    result = solve_ise(instance)
    assert validate_ise(instance, result.schedule).ok
    improved = consolidate(instance, result.schedule)
    assert validate_ise(instance, improved.schedule).ok

    table = Table(
        title="schedule quality",
        columns=["stage", "calibrations", "vs lower bound"],
    )
    lb = max(result.lower_bound.best, 1e-9)
    table.add_row("combined solver (Thm 1)", result.num_calibrations,
                  f"{result.num_calibrations / lb:.2f}x")
    table.add_row("+ consolidation", improved.final_calibrations,
                  f"{improved.final_calibrations / lb:.2f}x")
    table.print()

    run = simulate(instance, improved.schedule)
    assert run.ok, run.violations
    print("\nexecution statistics (event simulator):")
    print(f"  completed jobs      : {len(run.completed_jobs)}/{instance.n}")
    print(f"  makespan            : {run.makespan:g}")
    print(f"  busy machine-time   : {run.total_busy_time:g}")
    print(f"  calibrated time     : {run.total_calibrated_time:g}")
    print(f"  utilization         : {run.utilization:.1%}")
    idle = run.total_calibrated_time - run.total_busy_time
    print(f"  calibrated-but-idle : {idle:g} "
          "(paid for but unused — what consolidation minimizes)")

    per_machine = Table(
        title="per-machine breakdown",
        columns=["machine", "busy", "calibrated", "utilization"],
    )
    for machine in sorted(run.calibrated_time_per_machine):
        busy = run.busy_time_per_machine.get(machine, 0.0)
        cal = run.calibrated_time_per_machine[machine]
        per_machine.add_row(
            machine, busy, cal, f"{busy / cal:.0%}" if cal else "-"
        )
    per_machine.print()

    path = save_schedule_svg(instance, improved.schedule, "/tmp/ise_schedule.svg")
    print(f"\nSVG Gantt chart written to {path}")


if __name__ == "__main__":
    main()
