"""Plugging your own machine-minimization algorithm into Theorem 1.

The paper's main theorem is a *black-box reduction*: any s-speed
alpha-approximate MM algorithm yields an O(alpha)-machine s-speed
O(alpha)-approximate ISE algorithm.  The library mirrors that: anything
implementing the two-method `MMAlgorithm` protocol can drive the
short-window pipeline.

This example implements a deliberately naive MM black box (one machine per
job), plugs it into the combined solver, and compares it against the
bundled boxes — making the alpha-dependence of Theorem 1 tangible.

Run:  python examples/custom_mm_black_box.py
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro import ISEConfig, solve_ise
from repro.analysis import Table
from repro.core import Job, ScheduledJob, validate_ise
from repro.instances import short_window_instance
from repro.mm import MMSchedule, check_mm


@dataclass
class OneMachinePerJobMM:
    """The worst reasonable MM black box: w = n, each job alone at r_j.

    Its approximation factor alpha is as bad as n/w*; Theorem 1 then only
    promises an O(n/w*) ISE approximation — watch the calibration count
    inflate accordingly.
    """

    name: str = "one-machine-per-job"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        placements = tuple(
            ScheduledJob(start=job.release, machine=i, job_id=job.job_id)
            for i, job in enumerate(jobs)
        )
        schedule = MMSchedule(
            placements=placements, num_machines=len(jobs), speed=speed
        )
        check_mm(jobs, schedule, context=self.name)
        return schedule


def main() -> None:
    gen = short_window_instance(n=20, machines=2, calibration_length=10.0, seed=5)
    instance = gen.instance

    table = Table(
        title="Theorem 1 with different MM black boxes",
        columns=["MM black box", "calibrations", "machines used", "valid"],
    )
    boxes = ["exact-ish (auto)", "best_greedy", "lp_rounding", "custom naive"]
    configs = [
        ISEConfig(mm_algorithm="auto"),
        ISEConfig(mm_algorithm="best_greedy"),
        ISEConfig(mm_algorithm="lp_rounding"),
        ISEConfig(mm_algorithm=OneMachinePerJobMM()),
    ]
    for label, config in zip(boxes, configs):
        result = solve_ise(instance, config)
        ok = validate_ise(instance, result.schedule).ok
        table.add_row(label, result.num_calibrations, result.machines_used, ok)
        assert ok
    table.add_note(
        "feasibility is unconditional (the reduction never breaks), but the "
        "objective degrades exactly with the black box's alpha — the "
        "content of Theorem 1"
    )
    table.print()


if __name__ == "__main__":
    main()
