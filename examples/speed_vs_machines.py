"""Exploring the Theorem 14 machines-for-speed frontier.

The long-window pipeline (Theorem 12) delivers a schedule on up to 18m
speed-1 machines.  Lemma 13 lets you trade: group c source machines into one
machine running at speed 2c, without increasing calibrations.  This example
sweeps c to chart the full frontier — from "many slow machines" to
"m very fast machines" (Theorem 14's corner at c = 18, speed 36).

Interpretation: procurement can choose any point on this curve — fewer,
faster testing devices versus more, slower ones — at identical calibration
cost.

Run:  python examples/speed_vs_machines.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import validate_ise
from repro.instances import long_window_instance
from repro.longwindow import LongWindowSolver, machines_to_speed


def main() -> None:
    gen = long_window_instance(n=16, machines=2, calibration_length=10.0, seed=3)
    instance = gen.instance
    solver = LongWindowSolver()
    base = solver.solve(instance)
    pool = base.schedule.num_machines

    print(
        f"base Theorem 12 solution: {base.num_calibrations} calibrations on a "
        f"{pool}-machine speed-1 pool ({base.machines_used} actually used)\n"
    )

    table = Table(
        title="Lemma 13 frontier: machines vs speed at fixed calibrations",
        columns=["c (group size)", "machines", "speed", "calibrations", "valid"],
    )
    table.add_row("- (base)", pool, 1.0, base.num_calibrations, True)
    for c in (2, 3, 6, 9, 18):
        traded = machines_to_speed(instance, base.schedule, c)
        ok = validate_ise(instance, traded.schedule).ok
        table.add_row(
            c,
            traded.schedule.num_machines,
            traded.schedule.speed,
            traded.target_calibrations,
            ok,
        )
        assert ok
        assert traded.target_calibrations <= base.num_calibrations
    table.add_note(
        "c = 18 is Theorem 14: the instance's own m machines at speed 36; "
        "every row keeps the Theorem 12 calibration guarantee"
    )
    table.print()


if __name__ == "__main__":
    main()
