"""Post-optimization: feasibility-preserving local search on schedules."""

from .consolidate import ConsolidationResult, consolidate, repack_calibration

__all__ = ["ConsolidationResult", "consolidate", "repack_calibration"]
