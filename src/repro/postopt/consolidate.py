"""Local-search post-optimization of feasible ISE schedules.

The paper's pipelines are engineered for worst-case guarantees and leave
constant-factor slack on real instances (its conclusion: "we think that some
of the constants in the reduction could be reduced").  This module recovers
some of that slack *after the fact* with feasibility-preserving local moves:

* **Repack** (:func:`repack_calibration`): try to move every job out of a
  chosen calibration into the spare capacity of the remaining calibrations
  (respecting windows and machine exclusivity); if all jobs relocate, the
  calibration is deleted.
* **Consolidate** (:func:`consolidate`): greedily repack calibrations in
  increasing order of load until a fixpoint — each success removes one
  calibration.

Every move is validated against the schedule's own constraints, so the
output is feasible whenever the input is (and the tests re-check with the
independent validator).  The objective never increases.

This is an honest heuristic: it does not change the worst-case bounds, and
the ABL4 bench measures how much it wins on each pipeline's output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, geq, leq

__all__ = ["ConsolidationResult", "consolidate", "repack_calibration"]


@dataclass
class _CalSlot:
    """Mutable view of one calibration's occupancy during the search."""

    calibration: Calibration
    jobs: list[ScheduledJob]

    def sorted_jobs(self) -> list[ScheduledJob]:
        return sorted(self.jobs, key=lambda p: p.start)

    def load(self, processing: Mapping[int, float], speed: float) -> float:
        return sum(processing[p.job_id] / speed for p in self.jobs)


def _gaps(
    slot: _CalSlot,
    calibration_length: float,
    processing: Mapping[int, float],
    speed: float,
) -> list[tuple[float, float]]:
    """Free half-open intervals inside a calibration around its jobs."""
    start = slot.calibration.start
    end = start + calibration_length
    cursor = start
    gaps: list[tuple[float, float]] = []
    for placement in slot.sorted_jobs():
        if placement.start > cursor + EPS:
            gaps.append((cursor, placement.start))
        cursor = max(cursor, placement.end(processing[placement.job_id], speed))
    if end > cursor + EPS:
        gaps.append((cursor, end))
    return gaps


def _try_place(
    job: Job,
    slot: _CalSlot,
    calibration_length: float,
    processing: Mapping[int, float],
    speed: float,
) -> float | None:
    """Earliest feasible start for ``job`` inside ``slot``, or None.

    Feasible means: within a free gap, within the job's window, entirely
    inside the calibrated interval.
    """
    duration = job.processing / speed
    for gap_start, gap_end in _gaps(slot, calibration_length, processing, speed):
        start = max(gap_start, job.release)
        if leq(start + duration, gap_end) and leq(start + duration, job.deadline):
            return start
    return None


def repack_calibration(
    victim_index: int,
    slots: list[_CalSlot],
    calibration_length: float,
    job_map: Mapping[int, Job],
    speed: float,
) -> bool:
    """Try to empty ``slots[victim_index]`` into the other slots.

    On success the victim's jobs have been moved (mutating the other slots)
    and the victim is empty; on failure nothing changed.
    """
    victim = slots[victim_index]
    processing = {jid: j.processing for jid, j in job_map.items()}
    moves: list[tuple[ScheduledJob, int, float]] = []
    staged: dict[int, list[ScheduledJob]] = {}

    def staged_slot(idx: int) -> _CalSlot:
        extra = staged.get(idx, [])
        return _CalSlot(
            calibration=slots[idx].calibration,
            jobs=slots[idx].jobs + extra,
        )

    for placement in victim.sorted_jobs():
        job = job_map[placement.job_id]
        placed = False
        for idx, slot in enumerate(slots):
            if idx == victim_index:
                continue
            # The target calibration must overlap the job's window at all.
            cal = slot.calibration
            if not (
                geq(cal.start + calibration_length, job.release)
                and leq(cal.start, job.deadline)
            ):
                continue
            start = _try_place(
                job, staged_slot(idx), calibration_length, processing, speed
            )
            if start is not None:
                staged.setdefault(idx, []).append(
                    ScheduledJob(start=start, machine=cal.machine, job_id=job.job_id)
                )
                moves.append((placement, idx, start))
                placed = True
                break
        if not placed:
            return False

    # Commit: machine-level exclusivity still needs a check because two
    # calibrations on one machine are disjoint intervals, and each move
    # stays inside one calibration — so per-calibration packing suffices.
    for placement, idx, start in moves:
        slots[idx].jobs.append(
            ScheduledJob(
                start=start,
                machine=slots[idx].calibration.machine,
                job_id=placement.job_id,
            )
        )
    victim.jobs.clear()
    return True


@dataclass(frozen=True)
class ConsolidationResult:
    """Outcome of :func:`consolidate`."""

    schedule: Schedule
    removed_calibrations: int
    initial_calibrations: int

    @property
    def final_calibrations(self) -> int:
        return self.schedule.num_calibrations

    @property
    def improvement(self) -> float:
        if self.initial_calibrations == 0:
            return 0.0
        return self.removed_calibrations / self.initial_calibrations


def consolidate(
    instance: Instance,
    schedule: Schedule,
    max_rounds: int | None = None,
) -> ConsolidationResult:
    """Greedy calibration-removal local search to a fixpoint.

    Repeatedly picks the least-loaded remaining calibration and tries to
    repack its jobs elsewhere; stops when no calibration can be removed (or
    after ``max_rounds`` removals).  Preserves the schedule's speed and
    machine pool; the output is feasible whenever the input is.
    """
    T = schedule.calibration_length
    job_map = instance.job_map()
    speed = schedule.speed

    # Build occupancy slots.
    slots: list[_CalSlot] = [
        _CalSlot(calibration=cal, jobs=[]) for cal in schedule.calibrations
    ]
    index_of: dict[tuple[float, int], int] = {
        (slot.calibration.start, slot.calibration.machine): i
        for i, slot in enumerate(slots)
    }
    for placement in schedule.placements:
        job = job_map[placement.job_id]
        cal = schedule.enclosing_calibration(placement, job.processing)
        if cal is None:
            raise ValueError(
                f"input schedule infeasible: job {placement.job_id} has no "
                "enclosing calibration"
            )
        slots[index_of[(cal.start, cal.machine)]].jobs.append(placement)

    processing = {j.job_id: j.processing for j in instance.jobs}
    removed = 0
    budget = max_rounds if max_rounds is not None else len(slots)
    active = [True] * len(slots)
    progress = True
    while progress and removed < budget:
        progress = False
        # Least-loaded first: cheapest to relocate.
        order = sorted(
            (i for i in range(len(slots)) if active[i]),
            key=lambda i: (len(slots[i].jobs), slots[i].load(processing, speed)),
        )
        for i in order:
            live = [s for k, s in enumerate(slots) if active[k]]
            live_index = live.index(slots[i])
            if repack_calibration(live_index, live, T, job_map, speed):
                active[i] = False
                removed += 1
                progress = True
                break

    kept_cals = tuple(
        slots[i].calibration for i in range(len(slots)) if active[i]
    )
    placements = tuple(
        p
        for i in range(len(slots))
        if active[i]
        for p in slots[i].jobs
    )
    new_schedule = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=kept_cals,
            num_machines=schedule.calibrations.num_machines,
            calibration_length=T,
        ),
        placements=placements,
        speed=speed,
    )
    return ConsolidationResult(
        schedule=new_schedule,
        removed_calibrations=removed,
        initial_calibrations=schedule.num_calibrations,
    )
