"""repro — reproduction of *Scheduling Non-Unit Jobs to Minimize Calibrations*
(Fineman & Sheridan, SPAA 2015).

The library implements the Integrated Stockpile Evaluation (ISE) scheduling
problem end to end: the core data model and validators, the Section 3
long-window pipeline (TISE LP relaxation, greedy rounding, EDF assignment,
machine-to-speed tradeoff), the Section 4 short-window reduction to machine
minimization, a suite of MM black boxes, baselines, certified lower bounds,
workload generators, and an experiment harness.

Quickstart::

    from repro import solve_ise
    from repro.instances import mixed_instance

    gen = mixed_instance(n=30, machines=2, calibration_length=10.0, seed=0)
    result = solve_ise(gen.instance)
    print(result.num_calibrations, result.approximation_ratio)

Subpackages:

* :mod:`repro.core`        — jobs, schedules, validators, combined solver.
* :mod:`repro.longwindow`  — Section 3 algorithms (Theorems 12 and 14).
* :mod:`repro.shortwindow` — Section 4 algorithms (Theorem 20).
* :mod:`repro.mm`          — machine-minimization black boxes.
* :mod:`repro.lp`          — LP substrate (HiGHS + in-repo simplex).
* :mod:`repro.baselines`   — naive policies, lazy binning, exact solvers.
* :mod:`repro.instances`   — workload generators and the paper's figures.
* :mod:`repro.analysis`    — lower bounds, metrics, sweeps, reports,
  the resource-augmentation explorer.
* :mod:`repro.theory`      — executable theorem checks and the full audit.
* :mod:`repro.postopt`     — feasibility-preserving local search.
* :mod:`repro.sim`         — discrete-event schedule execution.
* :mod:`repro.viz`         — ASCII and SVG schedule rendering.
* :mod:`repro.cli`         — the ``repro-ise`` command line.
"""

from .core import (
    EPS,
    Calibration,
    CalibrationSchedule,
    FallbacksExhaustedError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    Instance,
    InvalidInstanceError,
    InvalidScheduleError,
    Job,
    JobPartition,
    LimitExceededError,
    OverloadError,
    ReproError,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    Schedule,
    ScheduledJob,
    ServiceShutdownError,
    SolveBudget,
    SolverError,
    StageTimeoutError,
    ValidationReport,
    Violation,
    ViolationKind,
    check_ise,
    check_tise,
    make_jobs,
    partition_jobs,
    validate_ise,
    validate_tise,
)
from .core.solver import ISEConfig, ISEResult, ISESolver, solve_ise
from .longwindow import LongWindowConfig, LongWindowResult, LongWindowSolver
from .shortwindow import ShortWindowConfig, ShortWindowResult, ShortWindowSolver

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # model
    "Job",
    "Instance",
    "make_jobs",
    "Calibration",
    "CalibrationSchedule",
    "Schedule",
    "ScheduledJob",
    "JobPartition",
    "partition_jobs",
    "EPS",
    # validation
    "ValidationReport",
    "Violation",
    "ViolationKind",
    "validate_ise",
    "validate_tise",
    "check_ise",
    "check_tise",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleScheduleError",
    "InfeasibleInstanceError",
    "SolverError",
    "LimitExceededError",
    "StageTimeoutError",
    "FallbacksExhaustedError",
    "OverloadError",
    "ServiceShutdownError",
    # resilience
    "SolveBudget",
    "RetryPolicy",
    "ResiliencePolicy",
    "ResilienceReport",
    # solvers
    "ISEConfig",
    "ISEResult",
    "ISESolver",
    "solve_ise",
    "LongWindowConfig",
    "LongWindowResult",
    "LongWindowSolver",
    "ShortWindowConfig",
    "ShortWindowResult",
    "ShortWindowSolver",
]
