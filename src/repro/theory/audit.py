"""One-call full audit of a solve run.

``audit_run`` chains every independent check the library has — the static
interval validator, the discrete-event simulator, and the executable theorem
bounds — and returns a single structured verdict.  This is the call to make
before trusting a schedule produced by any configuration (the ``repro-ise
fuzz`` harness is essentially this in a loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.job import Instance
from ..core.validate import ValidationReport, validate_ise
from ..sim import SimulationResult, simulate
from .checks import TheoremCheck, check_theorem1

if TYPE_CHECKING:
    from ..core.solver import ISEResult

__all__ = ["AuditReport", "audit_run"]


@dataclass(frozen=True)
class AuditReport:
    """Combined verdict of validator + simulator + theorem check."""

    static: ValidationReport
    dynamic: SimulationResult
    theorem: TheoremCheck

    @property
    def ok(self) -> bool:
        return self.static.ok and self.dynamic.ok and self.theorem.holds

    def summary(self) -> str:
        parts = [
            f"validator: {self.static.summary()}",
            f"simulator: {'clean' if self.dynamic.ok else f'{len(self.dynamic.violations)} violations'}",
            f"bounds: {self.theorem.theorem} "
            f"{'hold' if self.theorem.holds else 'VIOLATED'}",
        ]
        status = "PASS" if self.ok else "FAIL"
        return f"[{status}] " + "; ".join(parts)


def audit_run(
    instance: Instance,
    result: "ISEResult",
    allow_overlapping_calibrations: bool = False,
) -> AuditReport:
    """Run every independent check on a combined-solver result.

    Pass ``allow_overlapping_calibrations=True`` when the run used the
    footnote-3 problem variant; the flag is forwarded to all three checkers.
    """
    static = validate_ise(
        instance,
        result.schedule,
        allow_overlapping_calibrations=allow_overlapping_calibrations,
    )
    dynamic = simulate(
        instance,
        result.schedule,
        allow_overlap=allow_overlapping_calibrations,
    )
    theorem = check_theorem1(
        instance,
        result,
        allow_overlapping_calibrations=allow_overlapping_calibrations,
    )
    return AuditReport(static=static, dynamic=dynamic, theorem=theorem)
