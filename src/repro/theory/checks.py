"""Executable theorem statements.

Each function takes the artifacts of a solve and returns a
:class:`TheoremCheck` recording every inequality the corresponding theorem
asserts, evaluated on the actual numbers.  The benches and tests use these
instead of re-deriving the arithmetic, and users can call them on their own
runs ("does my instance respect the Theorem 12 envelope?").

All checks are *conservative*: where a theorem's right-hand side involves
OPT, the certified lower bound is substituted, making the checked inequality
weaker than the theorem only in the sound direction (a pass is a true pass;
a fail would be a genuine counterexample to the implementation or the
theorem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.job import Instance
from ..core.tolerance import EPS, LOOSE_EPS
from ..core.validate import validate_ise, validate_tise

if TYPE_CHECKING:
    from ..longwindow.pipeline import LongWindowResult
    from ..longwindow.speed_tradeoff import SpeedTradeoffResult
    from ..shortwindow.pipeline import ShortWindowResult
    from ..core.solver import ISEResult

__all__ = [
    "BoundCheck",
    "TheoremCheck",
    "check_theorem12",
    "check_theorem14",
    "check_theorem20",
    "check_theorem1",
]

_TOL = LOOSE_EPS


@dataclass(frozen=True)
class BoundCheck:
    """One asserted inequality: ``lhs <= rhs`` (with tolerance)."""

    name: str
    lhs: float
    rhs: float

    @property
    def holds(self) -> bool:
        return self.lhs <= self.rhs + _TOL

    @property
    def slack(self) -> float:
        """How much room is left (``rhs - lhs``); negative means violated."""
        return self.rhs - self.lhs

    def __str__(self) -> str:  # pragma: no cover - display helper
        mark = "ok " if self.holds else "FAIL"
        return f"[{mark}] {self.name}: {self.lhs:g} <= {self.rhs:g}"


@dataclass(frozen=True)
class TheoremCheck:
    """All of one theorem's bounds evaluated on a concrete run."""

    theorem: str
    bounds: tuple[BoundCheck, ...]
    feasible: bool

    @property
    def holds(self) -> bool:
        return self.feasible and all(b.holds for b in self.bounds)

    def summary(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        detail = "; ".join(str(b) for b in self.bounds)
        return f"{self.theorem} {status} ({detail})"


def check_theorem12(
    instance: Instance, result: "LongWindowResult"
) -> TheoremCheck:
    """Theorem 12: TISE-feasible, <= 18m machines, <= 12 C* calibrations.

    ``C*`` is replaced by the certified lower bound ``LP(3m)/3 <= C*``; the
    calibration inequality is checked in its sharp intermediate form
    ``unpruned <= 4 * LP`` (equivalent to ``<= 12 * LP/3``).
    """
    m = instance.machines
    feasible = validate_tise(instance, result.schedule).ok
    if result.rounding.scheme == "ceil":
        # Per-point ceiling: <= mass + support calibrations, doubled by the
        # EDF mirror; machines are its coloring count, doubled, not 18m.
        cal_bound = 2.0 * (result.lp_value + result.rounding.support)
        cal_name = "calibrations <= 2 (LP + support)"
        machine_bound = 2.0 * result.rounding.schedule.num_machines
        machine_name = "machines <= 2 x coloring"
    else:
        # Algorithm 1 at threshold tau emits at most LP/tau calibrations;
        # mirroring doubles that.  tau = 1/2 gives the paper's 4*LP
        # (= 12 * LP/3 = 12 LB) and the 18m machine budget.
        cal_bound = (2.0 / result.rounding.threshold) * result.lp_value
        cal_name = f"calibrations <= {2.0 / result.rounding.threshold:g} LP(3m)"
        machine_bound = 18 * m
        machine_name = "machines <= 18 m"
    bounds = (
        BoundCheck(machine_name, result.machines_used, machine_bound),
        BoundCheck(
            cal_name,
            result.unpruned_calibrations,
            cal_bound,
        ),
        BoundCheck(
            "delivered <= unpruned",
            result.num_calibrations,
            result.unpruned_calibrations,
        ),
    )
    return TheoremCheck(theorem="Theorem 12", bounds=bounds, feasible=feasible)


def check_theorem14(
    instance: Instance,
    base: "LongWindowResult",
    traded: "SpeedTradeoffResult",
) -> TheoremCheck:
    """Theorem 14: m machines, speed 36, <= 12 C* calibrations."""
    feasible = validate_ise(instance, traded.schedule).ok
    bounds = (
        BoundCheck(
            "machines <= m",
            traded.schedule.num_machines,
            instance.machines,
        ),
        BoundCheck("speed == 36 (<=)", traded.schedule.speed, 36.0),
        BoundCheck(
            "calibrations <= Theorem 12 count",
            traded.target_calibrations,
            base.num_calibrations,
        ),
        BoundCheck(
            "calibrations <= 12 LB",
            traded.target_calibrations,
            12 * base.lower_bound,
        ),
    )
    return TheoremCheck(theorem="Theorem 14", bounds=bounds, feasible=feasible)


def check_theorem20(
    instance: Instance, result: "ShortWindowResult"
) -> TheoremCheck:
    """Theorem 20: <= 6 alpha w* machines, <= 16 gamma alpha C* calibrations.

    ``alpha`` is measured per interval against the preemptive flow bound
    (``>=`` the true alpha, so the envelope is not weakened); ``w*`` and
    ``C*`` are replaced by their certified lower bounds.
    """
    feasible = validate_ise(
        instance,
        result.schedule,
        allow_overlapping_calibrations=True,  # covers both problem variants
    ).ok
    alpha = max(
        (
            r.mm_machines / r.mm_lower_bound
            for r in result.intervals
            if r.mm_lower_bound
        ),
        default=1.0,
    )
    w_star = max(result.machine_lower_bound, 1)
    c_star = max(result.calibration_lower_bound, EPS)
    bounds = (
        BoundCheck(
            "machines <= 6 alpha w*",
            result.machines_used,
            6 * alpha * w_star,
        ),
        BoundCheck(
            "calibrations <= 16 gamma alpha C*",
            result.unpruned_calibrations,
            16 * result.gamma * alpha * c_star,
        ),
    )
    return TheoremCheck(theorem="Theorem 20", bounds=bounds, feasible=feasible)


def check_theorem1(
    instance: Instance,
    result: "ISEResult",
    allow_overlapping_calibrations: bool = False,
) -> TheoremCheck:
    """Theorem 1 (combined): feasible union; each side within its envelope.

    The combined theorem's quantitative content is the union of Theorems 12
    and 20 on the respective sub-instances, plus overall feasibility on the
    full instance.  Pass ``allow_overlapping_calibrations=True`` when the
    run used the footnote-3 problem variant.
    """
    feasible = validate_ise(
        instance,
        result.schedule,
        allow_overlapping_calibrations=allow_overlapping_calibrations,
    ).ok
    bounds: list[BoundCheck] = [
        BoundCheck(
            "calibrations >= certified lower bound (sanity)",
            result.lower_bound.best,
            float(result.num_calibrations),
        )
    ]
    if result.long_result is not None:
        sub = instance.restricted_to(result.partition.long_jobs)
        bounds.extend(check_theorem12(sub, result.long_result).bounds)
    if result.short_result is not None:
        sub = instance.restricted_to(result.partition.short_jobs)
        bounds.extend(check_theorem20(sub, result.short_result).bounds)
    return TheoremCheck(
        theorem="Theorem 1", bounds=tuple(bounds), feasible=feasible
    )
