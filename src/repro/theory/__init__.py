"""Executable theorem statements: check a run against the paper's bounds."""

from .audit import AuditReport, audit_run
from .checks import (
    BoundCheck,
    TheoremCheck,
    check_theorem1,
    check_theorem12,
    check_theorem14,
    check_theorem20,
)

__all__ = [
    "BoundCheck",
    "TheoremCheck",
    "check_theorem1",
    "check_theorem12",
    "check_theorem14",
    "check_theorem20",
    "AuditReport",
    "audit_run",
]
