"""Deterministic testing utilities for the resilience layer.

* :mod:`repro.testing.faults` — fault-injection harness: wrap registered
  LP backends and MM algorithms so they fail, return garbage, or time out
  on chosen calls, plus a fake clock for deterministic deadline tests and
  crash injectors (process kills, torn writes) for the checkpoint layer's
  chaos suite, and result/stash corruptors (bit-flipped schedules,
  poisoned warm-start bases) for the certification layer's chaos suite.
"""

from .faults import (
    CrashAfter,
    FakeClock,
    FaultPlan,
    FaultyLPBackend,
    FaultyMM,
    KillWorkerOnce,
    SimulatedProcessKill,
    corrupt_journal_tail,
    inject_ise_corruption,
    inject_lp_fault,
    inject_mm_fault,
    inject_session_crash,
    poison_stash,
    scrambled_basis,
    tear_file,
)

__all__ = [
    "CrashAfter",
    "FakeClock",
    "FaultPlan",
    "FaultyLPBackend",
    "FaultyMM",
    "KillWorkerOnce",
    "SimulatedProcessKill",
    "corrupt_journal_tail",
    "inject_ise_corruption",
    "inject_lp_fault",
    "inject_mm_fault",
    "inject_session_crash",
    "poison_stash",
    "scrambled_basis",
    "tear_file",
]
