"""Deterministic testing utilities for the resilience layer.

* :mod:`repro.testing.faults` — fault-injection harness: wrap registered
  LP backends and MM algorithms so they fail, return garbage, or time out
  on chosen calls, plus a fake clock for deterministic deadline tests.
"""

from .faults import (
    FakeClock,
    FaultPlan,
    FaultyLPBackend,
    FaultyMM,
    inject_lp_fault,
    inject_mm_fault,
)

__all__ = [
    "FakeClock",
    "FaultPlan",
    "FaultyLPBackend",
    "FaultyMM",
    "inject_lp_fault",
    "inject_mm_fault",
]
