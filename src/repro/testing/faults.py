"""Deterministic fault injection for the resilience layer.

The chaos suite (``tests/resilience/``) needs to make *specific* backends
fail in *specific* ways at *specific* moments, repeatably.  Rather than
monkeypatching internals ad hoc, this module wraps the two public plug-in
surfaces — LP backends (:data:`repro.lp.BACKENDS`) and MM algorithms
(:data:`repro.mm.registry.MM_ALGORITHMS`) — with wrappers driven by a
:class:`FaultPlan`:

* ``"fail"``    — raise :class:`~repro.core.errors.SolverError`;
* ``"timeout"`` — raise :class:`~repro.core.errors.StageTimeoutError`
  without actually sleeping (simulated deadline expiry);
* ``"garbage"`` — return a structurally well-formed but *wrong* result,
  exercising the validators that defend the pipelines against backends
  that "succeed" with nonsense.

Both registries are resolved by name at call time in the pipelines, so the
:func:`inject_lp_fault` / :func:`inject_mm_fault` context managers take
effect on the very next solve and restore the genuine entry on exit, even
if the body raises.

:class:`FakeClock` makes budget expiry deterministic: tests advance time
explicitly (or per clock read) instead of sleeping.

The crash-recovery suite (``tests/resilience/test_crash_recovery.py``)
additionally needs *process-death* and *torn-write* faults:

* :class:`SimulatedProcessKill` / :class:`CrashAfter` — abort the driving
  process at exactly shard ``k`` (a ``BaseException``, so it escapes every
  ``except Exception`` the way a real SIGKILL escapes everything);
* :class:`KillWorkerOnce` — hard-kill a *worker* process
  (``os._exit``) on its first call, producing a genuine
  ``BrokenProcessPool``; a marker file makes the retry succeed;
* :func:`tear_file` / :func:`corrupt_journal_tail` — simulate a crash
  mid-append by truncating or garbling an artifact's tail bytes.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..core.errors import SolverError, StageTimeoutError
from ..core.job import Job
from ..core.schedule import ScheduledJob
from ..lp import (
    BACKENDS,
    Basis,
    BasisStash,
    LinearProgram,
    LPSolution,
    LPStatus,
    get_backend,
)
from ..mm.base import MMAlgorithm, MMSchedule
from ..mm.registry import MM_ALGORITHMS, get_mm_algorithm

__all__ = [
    "CrashAfter",
    "FakeClock",
    "FaultPlan",
    "FaultyLPBackend",
    "FaultyMM",
    "KillWorkerOnce",
    "SimulatedProcessKill",
    "corrupt_journal_tail",
    "inject_ise_corruption",
    "inject_lp_fault",
    "inject_mm_fault",
    "inject_session_crash",
    "poison_stash",
    "scrambled_basis",
    "tear_file",
]

_KINDS = ("fail", "garbage", "timeout")


@dataclass
class FakeClock:
    """A controllable monotonic clock for deterministic timeout tests.

    Pass an instance as ``SolveBudget(clock=...)``; each read returns the
    current time and then advances it by ``step`` (0 = frozen until
    :meth:`advance` is called explicitly).
    """

    now: float = 0.0
    step: float = 0.0

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


@dataclass
class FaultPlan:
    """Which calls to a wrapped backend should fault, and how.

    Attributes:
        kind: ``"fail"``, ``"garbage"``, or ``"timeout"``.
        at_calls: 1-based call numbers that fault; None means every call.
            ``at_calls=(1,)`` models a transient failure that a retry or
            the next fallback candidate survives.
        calls: running call counter (mutated by :meth:`should_fault`), also
            letting tests assert how many times the backend was reached.
    """

    kind: str = "fail"
    at_calls: Sequence[int] | None = None
    calls: int = field(default=0)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {_KINDS}")

    def should_fault(self) -> bool:
        self.calls += 1
        return self.at_calls is None or self.calls in tuple(self.at_calls)


class FaultyLPBackend:
    """An LP backend wrapper that faults according to a :class:`FaultPlan`.

    The ``"garbage"`` fault returns an all-zeros "optimal" solution — it
    assigns no job anywhere, so the long-window pipeline's job-coverage
    validator must reject it.
    """

    def __init__(self, inner, plan: FaultPlan, name: str = "lp") -> None:
        self.inner = inner
        self.plan = plan
        self.name = name

    def __call__(
        self,
        model: LinearProgram,
        *,
        time_limit: float | None = None,
        warm_basis: Basis | None = None,
    ) -> LPSolution:
        if self.plan.should_fault():
            if self.plan.kind == "fail":
                raise SolverError(
                    "injected LP backend failure",
                    stage="lp",
                    backend=self.name,
                )
            if self.plan.kind == "timeout":
                raise StageTimeoutError(
                    "injected LP timeout",
                    stage="lp",
                    backend=self.name,
                )
            return LPSolution(
                status=LPStatus.OPTIMAL,
                objective=0.0,
                x=np.zeros(model.num_variables),
                message="injected garbage",
            )
        return self.inner(model, time_limit=time_limit, warm_basis=warm_basis)


@dataclass
class FaultyMM:
    """An MM algorithm wrapper that faults according to a :class:`FaultPlan`.

    The ``"garbage"`` fault places every job *before its release* on one
    machine — structurally a valid :class:`MMSchedule`, semantically
    infeasible, so the short-window pipeline's :func:`~repro.mm.base.check_mm`
    re-validation must reject it.
    """

    inner: MMAlgorithm
    plan: FaultPlan
    name: str = "faulty"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        if self.plan.should_fault():
            if self.plan.kind == "fail":
                raise SolverError(
                    "injected MM failure", stage="mm", backend=self.name
                )
            if self.plan.kind == "timeout":
                raise StageTimeoutError(
                    "injected MM timeout", stage="mm", backend=self.name
                )
            placements = tuple(
                ScheduledJob(start=job.release - 1.0, machine=0, job_id=job.job_id)
                for job in jobs
            )
            return MMSchedule(
                placements=placements, num_machines=1, speed=speed
            )
        return self.inner.solve(jobs, speed)


class SimulatedProcessKill(BaseException):
    """A simulated SIGKILL of the *driving* process.

    Deliberately a ``BaseException``: it escapes ``except Exception``
    handlers (including ``parallel_map``'s ``return_exceptions`` net)
    exactly the way a real kill escapes everything, so whatever a chaos
    test observes afterwards — a journal with only the completed prefix —
    is what a genuine crash would have left behind.
    """


@dataclass
class CrashAfter:
    """Wrap a shard function so call number ``crash_at`` kills the run.

    Calls before ``crash_at`` delegate to ``inner``; the ``crash_at``-th
    call (1-based) raises :class:`SimulatedProcessKill`.  ``crash_at=1``
    dies before any shard completes.  Serial-mode only (the wrapper holds
    a local counter, which a process pool would copy, not share).
    """

    inner: Callable[[Any], Any]
    crash_at: int
    calls: int = field(default=0)

    def __call__(self, item: Any) -> Any:
        self.calls += 1
        if self.calls == self.crash_at:
            raise SimulatedProcessKill(
                f"simulated process kill at shard call {self.calls}"
            )
        return self.inner(item)


@dataclass(frozen=True)
class KillWorkerOnce:
    """Hard-kill the first worker process that runs this task.

    The first call (no ``marker`` file yet) creates the marker and
    ``os._exit``s the worker — the parent pool observes a genuine
    ``BrokenProcessPool``, the fault the checkpoint layer's retry policy
    exists for.  Subsequent calls (the retry, in a fresh worker) see the
    marker and delegate to ``inner``.  Picklable as long as ``inner`` is a
    module-level function; the marker file is the cross-process state.
    """

    inner: Callable[[Any], Any]
    marker: str

    def __call__(self, item: Any) -> Any:
        path = Path(self.marker)
        if not path.exists():
            path.write_bytes(b"worker killed here\n")
            os._exit(13)
        return self.inner(item)


def tear_file(path: str | Path, drop_bytes: int = 16) -> None:
    """Simulate a crash mid-write by truncating ``drop_bytes`` off the tail."""
    path = Path(path)
    size = path.stat().st_size
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


def corrupt_journal_tail(
    path: str | Path,
    garbage: bytes = b'{"seq": 999, "kind": "shard", "status": "done", "pay',
) -> None:
    """Append a torn (unterminated, checksum-less) record to a journal."""
    with open(path, "ab") as handle:
        handle.write(garbage)


@contextmanager
def inject_lp_fault(backend: str, plan: FaultPlan) -> Iterator[FaultPlan]:
    """Swap the registered LP backend ``backend`` for a faulty wrapper.

    The pipelines look backends up by name per attempt, so the swap is
    visible to any solve entered inside the ``with`` block, and the genuine
    backend is restored afterwards no matter how the block exits.
    """
    original = get_backend(backend)
    BACKENDS[backend] = FaultyLPBackend(original, plan, name=backend)
    try:
        yield plan
    finally:
        BACKENDS[backend] = original


@contextmanager
def inject_mm_fault(name: str, plan: FaultPlan) -> Iterator[FaultPlan]:
    """Swap the registered MM algorithm ``name`` for a faulty wrapper."""
    original = get_mm_algorithm(name)
    MM_ALGORITHMS[name] = FaultyMM(original, plan, name=name)
    try:
        yield plan
    finally:
        MM_ALGORITHMS[name] = original


def _corrupt_result(result: Any) -> Any:
    """A bit-flipped copy of an ISEResult: its first placement is torn off.

    Dropping one placement leaves a structurally well-formed schedule whose
    job coverage is wrong — precisely the damage the independent
    certification pass exists to catch.  Results with no placements (empty
    instances) are returned untouched.
    """
    schedule = result.schedule
    if not schedule.placements:
        return result
    torn = dataclasses.replace(schedule, placements=schedule.placements[1:])
    return dataclasses.replace(result, schedule=torn)


@contextmanager
def inject_ise_corruption(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Corrupt solve results at the last instant before certification.

    Wraps :meth:`ISESolver._certified` so faulting calls (per
    ``plan.at_calls``; the plan's ``kind`` is irrelevant here) hand a
    *corrupted* result to the certification gate — modeling a bit flip
    between the pipeline's own validation and the caller's hands.  With
    ``verify`` on, certification must catch it (raising
    :class:`~repro.core.errors.CertificationError`); with ``verify`` off,
    the corruption escapes — which is the contrast chaos tests assert.
    """
    from ..core.solver import ISESolver

    original = ISESolver._certified

    def corrupting(self: Any, instance: Any, result: Any) -> Any:
        if plan.should_fault():
            result = _corrupt_result(result)
        return original(self, instance, result)

    ISESolver._certified = corrupting  # type: ignore[method-assign]
    try:
        yield plan
    finally:
        ISESolver._certified = original  # type: ignore[method-assign]


@contextmanager
def inject_session_crash(
    kill_at: int, *, torn_bytes: bytes | None = None
) -> Iterator[dict[str, int]]:
    """SIGKILL an online session at its ``kill_at``-th journal record.

    Wraps :meth:`~repro.online.journal.SessionJournal.append_records` — the
    single choke point every durable session mutation flows through — and
    counts *records*, not batches (1-based, across every session in the
    block): the records before ``kill_at`` in a batch are persisted one by
    one, then the kill raises :class:`SimulatedProcessKill` *instead of*
    writing record ``kill_at``.  That models the kernel persisting an
    arbitrary prefix of a single batched ``write(2)`` — the exact torn
    state real batched appends can leave.  With ``torn_bytes``, the crash
    additionally leaves those raw bytes on the journal tail first,
    modeling a kill mid-line; recovery must truncate them as a torn tail.

    The kill strikes between the durability point of record ``kill_at-1``
    and that of record ``kill_at``, so chaos tests can place it exactly:
    before a session's first commit, between an operation record and its
    commit witnesses (mid-commit), or after N commits.  Yields a mutable
    ``{"calls": n}`` so tests can see how far the session got.
    """
    from ..online.journal import SessionJournal

    original = SessionJournal.append_records
    state = {"calls": 0}

    def crashing(self: Any, records: Any) -> None:
        for record in records:
            state["calls"] += 1
            if state["calls"] == kill_at:
                if torn_bytes is not None:
                    with open(self.path, "ab") as handle:
                        handle.write(torn_bytes)
                raise SimulatedProcessKill(
                    f"simulated process kill at session journal record "
                    f"{state['calls']}"
                )
            original(self, [record])

    SessionJournal.append_records = crashing  # type: ignore[method-assign]
    try:
        yield state
    finally:
        SessionJournal.append_records = original  # type: ignore[method-assign]


def scrambled_basis(basis: Basis) -> Basis:
    """A shape-compatible but wrong basis (poisoned warm-start seed).

    Rotating every basic column by one (mod ``n``) keeps the columns
    distinct and in range — :meth:`Basis.matches` still passes — but the
    vertex the basis describes is garbage, so a warm start from it must be
    caught (singular factorization, infeasible point, or a sentinel
    firing) and routed around, never silently trusted.
    """
    basic = tuple((col + 1) % basis.n for col in basis.basic)
    return Basis(m=basis.m, n=basis.n, basic=basic, at_upper=basis.at_upper)


def poison_stash(stash: BasisStash) -> int:
    """Replace every stashed basis with a scrambled one; returns the count.

    Models in-memory corruption of shared warm-start state.  Reaches into
    the stash's internals deliberately: corruption does not go through
    public APIs.
    """
    with stash._lock:
        keys = list(stash._entries)
        for key in keys:
            stash._entries[key] = scrambled_basis(stash._entries[key])
    return len(keys)
