"""The short-window ISE pipeline (Section 4, Theorem 20).

Combines Algorithm 4 (two-pass interval partitioning) with Algorithm 5
(per-interval MM-to-ISE lifting) around any black-box MM algorithm:

* within one pass, the disjoint intervals share a machine pool of size
  ``3 * max_i w_i`` (every calibration is nested in its interval, so reuse
  across intervals is conflict-free — Lemma 16);
* the two passes use disjoint pools.

Theorem 20's accounting: with an ``alpha``-approximate MM black box the
result uses at most ``6*alpha*w*`` machines and ``16*gamma*alpha*C*``
calibrations.  The pipeline records per-interval MM machine counts and the
preemptive-flow lower bounds needed to check those bounds empirically
(Lemmas 17-18).
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import ExitStack
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.atomicio import checksum
from ..core.checkpoint import CheckpointedRun, ShardJournal
from ..core.errors import InvalidInstanceError
from ..core.job import Instance, Job
from ..core.parallel import effective_workers, parallel_map, resolve_mode
from ..core.resilience import (
    DEFAULT_MM_CHAIN,
    FallbackGate,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    budget_scope,
    current_budget,
    run_with_fallbacks,
)
from ..core.schedule import Schedule, ScheduledJob, empty_schedule
from ..core.validate import check_ise
from ..mm.base import MMAlgorithm, MMSchedule, check_mm
from ..mm.preemptive_bound import preemptive_machine_lower_bound
from ..mm.registry import get_mm_algorithm, resolve_mm_chain
from .intervals import IntervalBucket, ShortJobPartition, partition_short_jobs
from .transform import IntervalTransformResult, interval_mm_to_ise

__all__ = ["ShortWindowConfig", "IntervalReport", "ShortWindowResult", "ShortWindowSolver"]


def _with_time_cap(algorithm: MMAlgorithm, cap: float | None) -> MMAlgorithm:
    """Copy ``algorithm`` with its ``time_budget`` tightened to ``cap``.

    Only applies to dataclass black boxes that expose a ``time_budget``
    field (exact, backtrack, auto); heuristics without one are near-instant
    and simply run to completion.
    """
    if cap is None or not hasattr(algorithm, "time_budget"):
        return algorithm
    current = getattr(algorithm, "time_budget")
    tightened = cap if current is None else min(cap, current)
    try:
        return dataclasses.replace(algorithm, time_budget=tightened)
    except TypeError:  # not a dataclass — leave it alone
        return algorithm


@dataclass(frozen=True)
class _BucketTask:
    """One interval's MM solve, self-contained and picklable.

    Everything a worker needs travels in the task: the bucket's jobs, the
    resolved fallback chain (names or algorithm instances — both pickle),
    and the retry policy.  The ambient solve budget does NOT travel here;
    :func:`~repro.core.parallel.parallel_map` snapshots and re-enters it in
    the worker, so :func:`_solve_bucket_mm` just reads ``current_budget()``
    exactly like the serial path.

    The optional ``gate`` (a circuit-breaker board) is in-process-only
    state: it is set only for serial/thread execution and excluded from
    ``repr`` so checkpoint fingerprints — ``checksum(repr(tasks))`` — stay
    stable whether or not a gate is attached.
    """

    jobs: tuple[Job, ...]
    speed: float
    chain: tuple[tuple[str, "str | MMAlgorithm"], ...]
    retry: RetryPolicy
    gate: FallbackGate | None = field(default=None, repr=False, compare=False)


def _solve_bucket_mm(task: _BucketTask) -> tuple[MMSchedule, ResilienceReport, float]:
    """Run one bucket's MM fallback chain; returns (schedule, report, seconds).

    Module-level (not a closure) so process pools can pickle it.  Each
    bucket gets its own :class:`ResilienceReport`; the caller merges them in
    bucket order, which makes the merged attempt log identical to the
    serial loop's.
    """
    tic = time.perf_counter()
    report = ResilienceReport()
    budget = current_budget()

    def mm_thunk(spec: "str | MMAlgorithm") -> Callable[[], MMSchedule]:
        def run() -> MMSchedule:
            algorithm = get_mm_algorithm(spec)
            cap: float | None = None
            if budget is not None:
                remaining = budget.stage_limit("mm")
                if remaining != float("inf"):
                    cap = max(remaining, 0.0)
            return _with_time_cap(algorithm, cap).solve(task.jobs, speed=task.speed)

        return run

    schedule = run_with_fallbacks(
        "mm",
        [(name, mm_thunk(spec)) for name, spec in task.chain],
        report=report,
        retry=task.retry,
        budget=budget,
        validate=lambda s: check_mm(task.jobs, s, context="short-window MM output"),
        gate=task.gate,
    )
    return schedule, report, time.perf_counter() - tic


def _encode_bucket_outcome(
    outcome: tuple[MMSchedule, ResilienceReport, float],
) -> dict[str, Any]:
    """JSON-able journal payload for one bucket's MM solve."""
    schedule, report, elapsed = outcome
    return {
        "schedule": {
            "placements": [
                {"job": p.job_id, "start": p.start, "machine": p.machine}
                for p in schedule.placements
            ],
            "num_machines": schedule.num_machines,
            "speed": schedule.speed,
        },
        "report": report.to_dict(),
        "elapsed": elapsed,
    }


def _decode_bucket_outcome(
    payload: dict[str, Any],
) -> tuple[MMSchedule, ResilienceReport, float]:
    """Inverse of :func:`_encode_bucket_outcome` — lossless round trip."""
    raw = payload["schedule"]
    schedule = MMSchedule(
        placements=tuple(
            ScheduledJob(
                start=float(p["start"]),
                machine=int(p["machine"]),
                job_id=int(p["job"]),
            )
            for p in raw["placements"]
        ),
        num_machines=int(raw["num_machines"]),
        speed=float(raw["speed"]),
    )
    return (
        schedule,
        ResilienceReport.from_dict(payload["report"]),
        float(payload["elapsed"]),
    )


def _bucket_key(bucket: IntervalBucket) -> str:
    """Stable shard identity of one interval bucket across runs."""
    return f"pass{bucket.pass_index}/[{bucket.start:g},{bucket.end:g})"


@dataclass(frozen=True)
class ShortWindowConfig:
    """Tuning knobs for the short-window pipeline.

    Attributes:
        mm_algorithm: MM black box (name from the registry or an instance).
        gamma: the short-window factor (Definition 1: 2).
        speed: machine speed handed to the MM black box.
        prune_empty: drop job-less calibrations from the delivered schedule.
        validate: run the independent ISE validator on the output.
        compute_lower_bounds: also compute per-interval preemptive MM lower
            bounds (used by the Lemma 18 calibration lower bound).
        overlapping_calibrations: select the paper's footnote-3 variant in
            which calibrations may be invoked less than ``T`` apart; crossing
            jobs then need no extra machines (``w`` instead of ``3w`` per
            interval), only their dedicated calibrations.
        resilience: failure-handling policy; None means strict (failures
            propagate, no MM fallback chain).
        max_workers: fan the independent per-interval MM solves (Lemma 16)
            out over this many workers; None or 1 solves serially.  The
            parallel path is output-identical to the serial one.
        parallel_mode: ``"auto"`` (process pool), ``"thread"``,
            ``"process"``, or ``"serial"`` — see :mod:`repro.core.parallel`.
        checkpoint_journal: journal every bucket's MM result to this path
            as it completes (see :mod:`repro.core.checkpoint`); a crashed
            solve re-run with ``resume_checkpoint=True`` restores the
            journaled buckets and re-solves only the remainder, with an
            output byte-identical to an uninterrupted solve.
        resume_checkpoint: replay ``checkpoint_journal`` if it exists
            (required — an existing journal without it is an error, so a
            crashed run's progress is never silently clobbered).
        max_shard_retries: extra attempts for a bucket whose worker process
            died before it is quarantined (see
            :class:`~repro.core.checkpoint.CheckpointedRun`).
    """

    mm_algorithm: str | MMAlgorithm = "best_greedy"
    gamma: float = 2.0
    speed: float = 1.0
    prune_empty: bool = True
    validate: bool = True
    compute_lower_bounds: bool = True
    overlapping_calibrations: bool = False
    resilience: ResiliencePolicy | None = None
    max_workers: int | None = None
    parallel_mode: str = "auto"
    checkpoint_journal: str | Path | None = None
    resume_checkpoint: bool = False
    max_shard_retries: int = 2


@dataclass(frozen=True)
class IntervalReport:
    """Telemetry for one partition interval."""

    pass_index: int
    start: float
    end: float
    num_jobs: int
    mm_machines: int
    crossing_jobs: int
    calibrations: int
    mm_lower_bound: int | None


@dataclass(frozen=True)
class ShortWindowResult:
    """The short-window pipeline's schedule plus Theorem 20 telemetry."""

    schedule: Schedule
    intervals: tuple[IntervalReport, ...]
    unpruned_calibrations: int
    machines_used: int
    mm_name: str
    gamma: float
    wall_times: dict[str, float] = field(default_factory=dict, compare=False)
    resilience: ResilienceReport | None = field(default=None, compare=False)
    workers_used: int = field(default=1, compare=False)

    @property
    def num_calibrations(self) -> int:
        return self.schedule.num_calibrations

    @property
    def max_mm_machines(self) -> tuple[int, int]:
        """``(max_i w_i)`` per pass — the per-pass machine pool is 3x this."""
        per_pass = [0, 0]
        for report in self.intervals:
            per_pass[report.pass_index] = max(
                per_pass[report.pass_index], report.mm_machines
            )
        return (per_pass[0], per_pass[1])

    @property
    def calibration_lower_bound(self) -> float:
        """Lemma 18: ``max over passes of sum_i w_i^LB / 2``.

        Uses preemptive flow bounds ``w_i^LB <= w_i*``, so this is a valid
        lower bound on the optimal number of ISE calibrations.  0.0 when
        lower bounds were not computed.
        """
        sums = [0.0, 0.0]
        for report in self.intervals:
            if report.mm_lower_bound is not None:
                sums[report.pass_index] += report.mm_lower_bound
        return max(sums) / 2.0

    @property
    def machine_lower_bound(self) -> int:
        """Lemma 18: ``max_i w_i^LB`` lower-bounds the ISE machine count."""
        return max(
            (r.mm_lower_bound for r in self.intervals if r.mm_lower_bound is not None),
            default=0,
        )


class ShortWindowSolver:
    """Theorem 20 solver for instances whose jobs all have short windows."""

    def __init__(self, config: ShortWindowConfig | None = None) -> None:
        self.config = config or ShortWindowConfig()

    def solve(self, instance: Instance) -> ShortWindowResult:
        """Partition, per-interval MM + lift, merge; returns schedule + telemetry.

        With a non-strict :class:`ResiliencePolicy` configured, each
        interval's MM solve runs through the fallback chain (default:
        configured algorithm ``-> best_greedy -> greedy_edf``) with the
        output independently re-validated via :func:`check_mm` — Theorem 20
        is black-box in the MM algorithm, so swapping a failed box only
        moves the approximation factor, never feasibility.
        """
        cfg = self.config
        policy = cfg.resilience or ResiliencePolicy()
        report = ResilienceReport()
        T = instance.calibration_length
        mm = get_mm_algorithm(cfg.mm_algorithm)
        fallback_names = (
            ()
            if policy.strict
            else (policy.mm_chain if policy.mm_chain is not None else DEFAULT_MM_CHAIN)
        )
        chain = resolve_mm_chain(cfg.mm_algorithm, fallback_names)
        times: dict[str, float] = {}

        tic = time.perf_counter()
        partition = partition_short_jobs(instance.jobs, T, gamma=cfg.gamma)
        times["partition"] = time.perf_counter() - tic

        reports: list[IntervalReport] = []
        pass_schedules: list[Schedule] = [
            empty_schedule(T, num_machines=0, speed=cfg.speed),
            empty_schedule(T, num_machines=0, speed=cfg.speed),
        ]
        lift_time = 0.0
        workers_used = effective_workers(
            cfg.max_workers, len(partition.buckets), cfg.parallel_mode
        )
        # A gate (circuit-breaker board) holds locks and lives in this
        # process; it rides along only when the buckets run here (serial)
        # or in threads.  A process pool would pickle a dead copy whose
        # trips never propagate back, so the gate is dropped — visibly.
        gate = policy.gate
        if gate is not None and workers_used > 1 and (
            resolve_mode(cfg.parallel_mode) == "process"
        ):
            gate = None
            report.record_note(
                "fallback gate not applied to process-pool MM solves "
                "(breaker state does not cross process boundaries)"
            )
        tasks = [
            _BucketTask(
                jobs=bucket.jobs,
                speed=cfg.speed,
                chain=tuple(chain),
                retry=policy.retry,
                gate=gate,
            )
            for bucket in partition.buckets
        ]
        with ExitStack() as stack:
            budget = current_budget()
            if budget is None and policy.budget is not None:
                budget = stack.enter_context(budget_scope(policy.fresh_budget()))
            tic = time.perf_counter()
            if cfg.checkpoint_journal is not None:
                keys = [_bucket_key(bucket) for bucket in partition.buckets]
                run = CheckpointedRun(
                    journal=ShardJournal(cfg.checkpoint_journal),
                    fingerprint=checksum(repr((tasks, cfg.gamma, cfg.speed))),
                    resume=cfg.resume_checkpoint,
                    max_shard_retries=cfg.max_shard_retries,
                )
                shards = run.map(
                    _solve_bucket_mm,
                    tasks,
                    keys,
                    encode=_encode_bucket_outcome,
                    decode=_decode_bucket_outcome,
                    max_workers=cfg.max_workers,
                    mode=cfg.parallel_mode,
                )
                # Every completed bucket is already durably journaled, so a
                # failed or budget-expired bucket may abort the solve: the
                # next resume_checkpoint run restores the survivors and
                # re-solves only the remainder.  (Unlike a sweep case, a
                # bucket cannot be skipped — the merged schedule needs all
                # of them.)
                for shard in shards:
                    if not shard.ok and shard.error is not None:
                        raise shard.error
                outcomes = [shard.value for shard in shards]
                restored = sum(1 for s in shards if s.status == "restored")
                if restored:
                    report.record_note(
                        f"{restored} interval bucket(s) restored from "
                        f"checkpoint journal {run.journal.path}"
                    )
                if run.parallel_fallback is not None:
                    report.record_note(
                        "parallel pool degraded to serial: "
                        + run.parallel_fallback
                    )
            else:
                outcomes = parallel_map(
                    _solve_bucket_mm,
                    tasks,
                    max_workers=cfg.max_workers,
                    mode=cfg.parallel_mode,
                )
            mm_wall = time.perf_counter() - tic
            mm_schedules: list[MMSchedule] = []
            mm_cpu = 0.0
            for mm_schedule, bucket_report, bucket_elapsed in outcomes:
                report.merge(bucket_report)
                mm_schedules.append(mm_schedule)
                mm_cpu += bucket_elapsed

        for bucket, mm_schedule in zip(partition.buckets, mm_schedules):
            tic = time.perf_counter()
            lifted = interval_mm_to_ise(
                bucket.jobs,
                mm_schedule,
                bucket.start,
                T,
                cfg.gamma,
                overlapping=cfg.overlapping_calibrations,
            )
            lift_time += time.perf_counter() - tic

            lower = (
                preemptive_machine_lower_bound(bucket.jobs, cfg.speed)
                if cfg.compute_lower_bounds
                else None
            )
            reports.append(
                IntervalReport(
                    pass_index=bucket.pass_index,
                    start=bucket.start,
                    end=bucket.end,
                    num_jobs=len(bucket.jobs),
                    mm_machines=lifted.mm_machines,
                    crossing_jobs=lifted.crossing_jobs,
                    calibrations=lifted.total_calibrations,
                    mm_lower_bound=lower,
                )
            )
            # Union within the pass: the interval schedule's machine indices
            # overlay the pass pool directly (calibrations are nested in
            # disjoint intervals, so same-index reuse cannot clash).
            current = pass_schedules[bucket.pass_index]
            pool = max(
                current.num_machines, lifted.schedule.num_machines
            )
            pass_schedules[bucket.pass_index] = Schedule(
                calibrations=current.calibrations.__class__(
                    calibrations=current.calibrations.calibrations
                    + lifted.schedule.calibrations.calibrations,
                    num_machines=pool,
                    calibration_length=T,
                ),
                placements=current.placements + lifted.schedule.placements,
                speed=cfg.speed,
            )
        times["mm"] = mm_wall
        # Summed per-bucket solve time: with workers > 1 this exceeds the
        # "mm" wall time, and their ratio is the realized MM speedup.
        times["mm_cpu"] = mm_cpu
        times["lift"] = lift_time

        merged = pass_schedules[0].merged_with(pass_schedules[1])
        unpruned = merged.num_calibrations
        if cfg.prune_empty:
            merged = merged.prune_empty_calibrations(
                {j.job_id: j.processing for j in instance.jobs}
            )
        machines_used = len(
            {c.machine for c in merged.calibrations}
            | {p.machine for p in merged.placements}
        )
        if cfg.validate:
            tic = time.perf_counter()
            check_ise(
                instance,
                merged,
                allow_overlapping_calibrations=cfg.overlapping_calibrations,
                context="short-window pipeline",
            )
            times["validate"] = time.perf_counter() - tic

        report.record_times(times)
        return ShortWindowResult(
            schedule=merged,
            intervals=tuple(reports),
            unpruned_calibrations=unpruned,
            machines_used=machines_used,
            mm_name=getattr(mm, "name", str(mm)),
            gamma=cfg.gamma,
            wall_times=times,
            resilience=report,
            workers_used=workers_used,
        )
