"""Short-window ISE algorithms (Section 4 of the paper).

* :mod:`repro.shortwindow.intervals` — Algorithm 4 two-pass partitioning.
* :mod:`repro.shortwindow.transform` — Algorithm 5 MM-to-ISE lifting.
* :mod:`repro.shortwindow.pipeline` — the Theorem 20 solver.
"""

from .intervals import IntervalBucket, ShortJobPartition, partition_short_jobs
from .pipeline import (
    IntervalReport,
    ShortWindowConfig,
    ShortWindowResult,
    ShortWindowSolver,
)
from .transform import IntervalTransformResult, interval_mm_to_ise

__all__ = [
    "IntervalBucket",
    "ShortJobPartition",
    "partition_short_jobs",
    "IntervalTransformResult",
    "interval_mm_to_ise",
    "IntervalReport",
    "ShortWindowConfig",
    "ShortWindowResult",
    "ShortWindowSolver",
]
