"""Lifting an MM schedule to an ISE schedule within one interval (Algorithm 5).

Given the jobs of one length-``2*gamma*T`` interval and a machine-minimizing
schedule ``S`` for them on ``w`` machines, Algorithm 5 builds an ISE
schedule ``S'`` on ``3w`` machines preserving every job's execution time:

* machines ``0..w-1`` ("base") carry calibrations at ``t + kT`` for
  ``k = 0..2*gamma - 1`` and receive the jobs that fit inside a single
  calibration;
* a *k-th crossing job* (starting in base calibration ``k`` but finishing
  after it) moves to machine ``w + m_j`` when ``k`` is even and
  ``2w + m_j`` when ``k`` is odd, with a dedicated calibration at its start
  time.  Same-parity crossing jobs from one MM machine start at least ``T``
  apart, so the dedicated calibrations never overlap (Lemma 15).

The machine layout (base | even-crossing | odd-crossing) is local to the
interval; the pipeline reuses the same pool across the disjoint intervals of
one pass because every calibration here is nested inside the interval
(second half of Lemma 16's proof).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import SolverError
from ..core.job import Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, gt
from ..mm.base import MMSchedule

__all__ = ["IntervalTransformResult", "interval_mm_to_ise"]


@dataclass(frozen=True)
class IntervalTransformResult:
    """Algorithm 5's output for one interval."""

    schedule: Schedule
    mm_machines: int
    crossing_jobs: int
    base_calibrations: int
    crossing_calibrations: int

    @property
    def total_calibrations(self) -> int:
        return self.schedule.num_calibrations


def _calibration_index(start: float, interval_start: float, T: float) -> int:
    """Index ``k`` of the base calibration containing time ``start``."""
    k = math.floor((start - interval_start) / T)
    # Snap boundary hits: a start within EPS of the next calibration's
    # beginning belongs to that calibration.
    if (start - interval_start) - (k + 1) * T >= -EPS:
        k += 1
    return max(0, k)


def interval_mm_to_ise(
    jobs: Sequence[Job],
    mm_schedule: MMSchedule,
    interval_start: float,
    calibration_length: float,
    gamma: float,
    overlapping: bool = False,
) -> IntervalTransformResult:
    """Algorithm 5: lift ``mm_schedule`` to an ISE schedule on ``3w`` machines.

    Execution times are preserved exactly; only machine assignments change
    and calibrations are added.  The result's speed equals the MM schedule's
    speed.

    ``overlapping=True`` selects the paper's footnote-3 variant: calibrations
    may be invoked less than ``T`` apart, so a crossing job keeps its MM
    machine and simply gets a dedicated (overlapping) calibration at its
    start time — ``w`` machines instead of ``3w``, same calibration count.
    """
    T = calibration_length
    w = mm_schedule.num_machines
    if not jobs:
        return IntervalTransformResult(
            schedule=Schedule(
                calibrations=CalibrationSchedule(
                    calibrations=(), num_machines=0, calibration_length=T
                ),
                placements=(),
                speed=mm_schedule.speed,
            ),
            mm_machines=0,
            crossing_jobs=0,
            base_calibrations=0,
            crossing_calibrations=0,
        )
    job_map = {j.job_id: j for j in jobs}
    num_cals_per_machine = int(2 * gamma)

    calibrations: list[Calibration] = [
        Calibration(start=interval_start + k * T, machine=machine)
        for machine in range(w)
        for k in range(num_cals_per_machine)
    ]
    base_count = len(calibrations)

    placements: list[ScheduledJob] = []
    crossing = 0
    for placement in mm_schedule.placements:
        job = job_map.get(placement.job_id)
        if job is None:
            raise SolverError(
                f"MM schedule contains unknown job {placement.job_id}"
            )
        duration = job.processing / mm_schedule.speed
        k = _calibration_index(placement.start, interval_start, T)
        cal_end = interval_start + (k + 1) * T
        is_crossing = gt(placement.start + duration, cal_end)
        if not is_crossing:
            placements.append(
                ScheduledJob(
                    start=placement.start,
                    machine=placement.machine,
                    job_id=job.job_id,
                )
            )
        else:
            crossing += 1
            if overlapping:
                # Footnote 3: the dedicated calibration may overlap the base
                # calendar, so the job stays on its MM machine.
                target = placement.machine
            else:
                target = (w if k % 2 == 0 else 2 * w) + placement.machine
            calibrations.append(
                Calibration(start=placement.start, machine=target)
            )
            placements.append(
                ScheduledJob(
                    start=placement.start, machine=target, job_id=job.job_id
                )
            )

    schedule = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=w if overlapping else 3 * w,
            calibration_length=T,
        ),
        placements=tuple(placements),
        speed=mm_schedule.speed,
    )
    return IntervalTransformResult(
        schedule=schedule,
        mm_machines=w,
        crossing_jobs=crossing,
        base_calibrations=base_count,
        crossing_calibrations=crossing,
    )
