"""Two-pass interval partitioning of short jobs (Algorithm 4, Lemma 16).

Time is cut into length-``2*gamma*T`` intervals twice: once aligned at
offset 0 and once at offset ``gamma*T`` (``gamma = 2`` per Definition 1: a
short job's window is shorter than ``gamma*T``).  A short job whose window
crosses a first-pass boundary ``2k*gamma*T`` has length ``< gamma*T``, so it
is nested inside ``[(2k-1)*gamma*T, (2k+1)*gamma*T)`` — a second-pass
interval (Lemma 16).  The two passes run on disjoint machine pools.

Unlike the paper's pseudocode, the implementation iterates only over
intervals that contain jobs (the paper notes this transformation to
polynomial time is straightforward), and it handles negative release times
by extending the grid leftward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.errors import InvalidInstanceError
from ..core.job import Job
from ..core.tolerance import EPS, geq, leq

__all__ = ["IntervalBucket", "ShortJobPartition", "partition_short_jobs"]


@dataclass(frozen=True)
class IntervalBucket:
    """One partition interval and the short jobs nested inside it."""

    pass_index: int
    """0 for the offset-0 pass, 1 for the offset-``gamma*T`` pass."""
    start: float
    end: float
    jobs: tuple[Job, ...]


@dataclass(frozen=True)
class ShortJobPartition:
    """The Algorithm 4 output: per-pass interval buckets."""

    buckets: tuple[IntervalBucket, ...]
    gamma: float
    interval_length: float

    def pass_buckets(self, pass_index: int) -> tuple[IntervalBucket, ...]:
        return tuple(b for b in self.buckets if b.pass_index == pass_index)

    @property
    def total_jobs(self) -> int:
        return sum(len(b.jobs) for b in self.buckets)


def _nested(job: Job, start: float, end: float) -> bool:
    """Algorithm 4's nesting test ``start <= r_j < d_j <= end``."""
    return geq(job.release, start) and leq(job.deadline, end)


def partition_short_jobs(
    jobs: Sequence[Job], calibration_length: float, gamma: float = 2.0
) -> ShortJobPartition:
    """Assign every short job to exactly one two-pass interval.

    Raises :class:`InvalidInstanceError` if some job has a window of length
    ``>= gamma * T`` (it belongs to the long-window pipeline) — Lemma 16's
    guarantee would not cover it.
    """
    T = calibration_length
    if gamma < 1 or abs(gamma - round(gamma)) > EPS:
        # Lemma 16's proof calibrates 2*gamma times per interval and needs
        # the calibrations nested, which requires integral gamma.
        raise InvalidInstanceError(
            f"gamma must be a positive integer (Lemma 16), got {gamma}"
        )
    width = 2.0 * gamma * T
    for job in jobs:
        if job.window >= gamma * T - EPS:
            raise InvalidInstanceError(
                f"job {job.job_id} has window {job.window} >= gamma*T = "
                f"{gamma * T}; it is not short"
            )

    remaining = list(jobs)
    buckets: dict[tuple[int, int], list[Job]] = {}
    for pass_index, offset in ((0, 0.0), (1, gamma * T)):
        still_left: list[Job] = []
        for job in remaining:
            k = math.floor((job.release - offset) / width + EPS)
            start = offset + k * width
            if _nested(job, start, start + width):
                buckets.setdefault((pass_index, k), []).append(job)
            else:
                still_left.append(job)
        remaining = still_left

    if remaining:
        # Lemma 16 proves this cannot happen for genuinely short jobs.
        raise InvalidInstanceError(
            f"jobs {[j.job_id for j in remaining[:8]]} fit neither pass — "
            "partitioning invariant violated"
        )

    width_buckets = tuple(
        IntervalBucket(
            pass_index=pass_index,
            start=(0.0 if pass_index == 0 else gamma * T) + k * width,
            end=(0.0 if pass_index == 0 else gamma * T) + (k + 1) * width,
            jobs=tuple(sorted(job_list, key=lambda j: (j.release, j.job_id))),
        )
        for (pass_index, k), job_list in sorted(buckets.items())
    )
    return ShortJobPartition(
        buckets=width_buckets, gamma=gamma, interval_length=width
    )
