"""Developer tooling: the project's own static-analysis layer.

The paper's guarantees (Theorems 12/14/20) survive only while the code
preserves fragile conventions — tolerance-aware float comparisons, injectable
clocks and seeded RNGs, validated solver boundaries, typed errors instead of
stripped-in-production asserts.  :mod:`repro.devtools.lint` turns those
conventions into mechanically-enforced rules (codes ``ISE001``–``ISE010``),
run in CI and as the ``repro-lint`` console script.

* :mod:`repro.devtools.diagnostics` — diagnostic records and the
  ``# repro-lint: disable=CODE`` suppression syntax.
* :mod:`repro.devtools.rules` — the rule registry and every project rule.
* :mod:`repro.devtools.runner` — file collection, parsing, rule execution.
* :mod:`repro.devtools.cli` — the ``repro-lint`` entry point (JSON + human
  output, selectable rules, nonzero exit on findings).
"""

from __future__ import annotations

from .diagnostics import Diagnostic, SourceFile, Suppressions
from .rules import ALL_RULES, Rule, get_rule, iter_rules
from .runner import LintReport, LintRunner, lint_paths

__all__ = [
    "Diagnostic",
    "SourceFile",
    "Suppressions",
    "Rule",
    "ALL_RULES",
    "get_rule",
    "iter_rules",
    "LintRunner",
    "LintReport",
    "lint_paths",
]
