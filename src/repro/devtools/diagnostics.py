"""Diagnostic records, parsed source files, and suppression comments.

A diagnostic pins one rule violation to a ``file:line``; suppressions are
in-source comments of the form::

    risky_expression()  # repro-lint: disable=ISE001
    another()           # repro-lint: disable=ISE001,ISE003

which silence the named codes on that physical line, and::

    # repro-lint: disable-file=ISE002

(anywhere in the file, conventionally in the module docstring block) which
silences a code for the whole file.  Suppressions are deliberately
per-code — there is no blanket ``disable=all`` — so every escape hatch
names the invariant it bypasses.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Diagnostic", "SourceFile", "Suppressions"]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+)"
)

_CODE_RE = re.compile(r"^ISE\d{3}$")


def _comment_tokens(text: str) -> list[tuple[int, str]]:
    """``(line, comment_text)`` for every comment token in ``text``.

    Tokenizing (rather than scanning raw lines) keeps suppression syntax
    mentioned inside docstrings and string literals — e.g. this module's own
    documentation — from being parsed as live suppressions.
    """
    comments: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # Unparseable source is reported separately by the runner; any
        # comments found before the error still count.
        pass
    return comments


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        """The human one-liner: ``path:line: CODE message``."""
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Suppression comments extracted from one file.

    ``by_line`` maps a physical line number to the set of codes disabled on
    it; ``file_wide`` holds codes disabled for the entire file.
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    malformed: list[int] = field(default_factory=list)
    """Lines carrying a ``repro-lint:`` marker that did not parse (typo'd
    codes); surfaced as ISE000 so a broken suppression never silently
    disables nothing."""

    @classmethod
    def scan(cls, text: str) -> "Suppressions":
        """Extract all suppression comments from ``text``."""
        sup = cls()
        for lineno, comment in _comment_tokens(text):
            if "repro-lint" not in comment:
                continue
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                sup.malformed.append(lineno)
                continue
            kind, raw_codes = match.groups()
            codes = {c.strip() for c in raw_codes.split(",") if c.strip()}
            if not codes or not all(_CODE_RE.match(c) for c in codes):
                sup.malformed.append(lineno)
                continue
            if kind == "disable-file":
                sup.file_wide |= codes
            else:
                sup.by_line.setdefault(lineno, set()).update(codes)
        return sup

    def is_suppressed(self, code: str, line: int) -> bool:
        if code in self.file_wide:
            return True
        return code in self.by_line.get(line, set())


@dataclass
class SourceFile:
    """A parsed source file handed to every rule.

    Attributes:
        path: path as given on the command line (kept relative for stable
            diagnostics across machines).
        text: raw source text.
        tree: parsed AST (with ``parent`` links installed on every node,
            which several rules use for context checks).
        suppressions: the file's ``repro-lint`` comments.
    """

    path: str
    text: str
    tree: ast.Module
    suppressions: Suppressions

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None) -> "SourceFile":
        """Read and parse ``path`` (raises ``SyntaxError`` on bad source)."""
        p = Path(path)
        if text is None:
            text = p.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(p))
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        return cls(
            path=str(path),
            text=text,
            tree=tree,
            suppressions=Suppressions.scan(text),
        )

    def diagnostic(self, node: ast.AST, code: str, message: str) -> Diagnostic:
        """Build a diagnostic anchored at ``node``'s line."""
        line = getattr(node, "lineno", 1)
        return Diagnostic(path=self.path, line=line, code=code, message=message)
