"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/repro                  # per-file rules, exit 1 on findings
    repro-lint --flow src/repro           # + whole-program ISE100+ analysis
    repro-lint --changed a.py b.py        # incremental: lint only these files,
                                          #   cross-module rules still fire
    repro-lint --format json src/repro    # machine-readable (CI annotations)
    repro-lint --format sarif --flow …    # SARIF 2.1.0 for code scanning
    repro-lint --select ISE001,ISE104 …   # run a subset of rules
    repro-lint --show-suppressed …        # audit what disable= comments hide
    repro-lint --flow --update-baseline … # grandfather current findings
    repro-lint --list-rules               # print the rule table

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule / no files).

Findings listed in the baseline file (``.repro-lint-baseline.json`` by
default, ``--baseline`` to override) are reported separately and do not
fail the run — the committed-baseline workflow for grandfathered debt.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .flow.baseline import Baseline
from .flow.registry import FLOW_RULES, iter_flow_rules
from .flow.runner import analyze_package, find_package_root
from .flow.sarif import to_sarif_json
from .rules import ALL_RULES, iter_rules
from .runner import LintReport, LintRunner

__all__ = ["main", "build_parser"]

#: Default committed-baseline location (repo root, next to pyproject.toml).
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the ISE solver stack "
            "(tolerance discipline, determinism, solver-boundary validation, "
            "and whole-program architecture/concurrency/budget-flow checks)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (recurses into directories)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "also run the whole-program ISE100+ rules (layer DAG, "
            "concurrency hazards, budget propagation, exception contracts)"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "incremental mode: per-file rules run only on the given files, "
            "but the whole-program graph is (re)built from the cache so "
            "cross-module rules still fire; flow findings are filtered to "
            "the given files"
        ),
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print findings silenced by # repro-lint: disable= comments",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="graph-cache directory for --flow/--changed (default: .repro-lint-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the whole-program graph cache (always re-parse)",
    )
    return parser


def _split_codes(raw: str) -> tuple[str, ...]:
    return tuple(code.strip() for code in raw.split(",") if code.strip())


def _validate_codes(codes: Sequence[str]) -> str | None:
    """First unknown code across both registries, or None."""
    for code in codes:
        if code not in ALL_RULES and code not in FLOW_RULES:
            return code
    return None


def _package_roots(paths: Sequence[str]) -> list[Path]:
    """Unique package roots covering the given files/directories."""
    roots: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        root = find_package_root(Path(raw))
        if root is None:
            continue
        resolved = root.resolve()
        if resolved not in seen:
            seen.add(resolved)
            roots.append(root)
    return roots


def _filter_to_paths(
    diagnostics: Sequence["object"], allowed: set[Path]
) -> list["object"]:
    return [
        diag
        for diag in diagnostics
        if Path(diag.path).resolve() in allowed  # type: ignore[attr-defined]
    ]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: lint the given paths; exit 0 clean / 1 findings / 2 usage."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name:24s} {rule.summary}")
        for flow_rule in iter_flow_rules():
            print(f"{flow_rule.code}  {flow_rule.name:24s} {flow_rule.summary}")
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    select = _split_codes(options.select)
    ignore = _split_codes(options.ignore)
    unknown = _validate_codes([*select, *ignore])
    if unknown is not None:
        print(f"repro-lint: error: unknown rule {unknown!r}", file=sys.stderr)
        return 2

    run_flow = options.flow or options.changed

    # Per-file rules.  With an explicit --select that names only flow
    # rules, the per-file pass runs nothing.
    per_file_select = tuple(code for code in select if code in ALL_RULES)
    report = LintReport()
    if not select or per_file_select:
        runner = LintRunner(select=per_file_select, ignore=ignore)
        report = runner.run(options.paths)
    else:
        # count the files anyway so "no python files" detection still works
        probe = LintRunner(select=(), ignore=tuple(ALL_RULES))
        report = probe.run(options.paths)
        report.rules_run = ()

    if report.files_checked == 0:
        print("repro-lint: error: no python files found", file=sys.stderr)
        return 2

    if run_flow:
        roots = _package_roots(options.paths)
        if not roots and not options.changed:
            print(
                "repro-lint: error: --flow needs paths inside an importable "
                "package (a directory tree with __init__.py files)",
                file=sys.stderr,
            )
            return 2
        flow_codes: set[str] = set()
        changed_paths = {Path(raw).resolve() for raw in options.paths}
        for root in roots:
            result = analyze_package(
                root,
                select=select,
                ignore=ignore,
                cache_dir=Path(options.cache_dir)
                if options.cache_dir is not None
                else None,
                use_cache=not options.no_cache,
            )
            flow_codes.update(result.rules_run)
            diags = result.diagnostics
            suppressed = result.suppressed
            if options.changed:
                diags = _filter_to_paths(diags, changed_paths)
                suppressed = _filter_to_paths(suppressed, changed_paths)
            report.diagnostics.extend(diags)
            report.suppressed.extend(suppressed)
        report.rules_run = tuple([*report.rules_run, *sorted(flow_codes)])

    baseline_path = (
        Path(options.baseline)
        if options.baseline is not None
        else Path(DEFAULT_BASELINE)
    )
    if options.update_baseline:
        Baseline.write(baseline_path, report.diagnostics)
        print(
            f"repro-lint: baseline updated: {len(report.diagnostics)} "
            f"finding(s) written to {baseline_path}"
        )
        return 0
    if options.baseline is not None or baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        report.diagnostics, report.baselined = baseline.split(report.diagnostics)

    if options.format == "json":
        print(report.to_json(show_suppressed=options.show_suppressed))
    elif options.format == "sarif":
        rule_meta = {
            rule.code: (rule.name, rule.summary) for rule in iter_rules()
        }
        rule_meta.update(
            (rule.code, (rule.name, rule.summary)) for rule in iter_flow_rules()
        )
        print(
            to_sarif_json(
                report.diagnostics,
                suppressed=report.suppressed if options.show_suppressed else (),
                rule_meta=rule_meta,
            )
        )
    else:
        print(report.to_text(show_suppressed=options.show_suppressed))
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
