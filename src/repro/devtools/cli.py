"""The ``repro-lint`` console entry point.

Usage::

    repro-lint src/repro                 # human output, exit 1 on findings
    repro-lint --format json src/repro   # machine-readable (CI annotations)
    repro-lint --select ISE001,ISE003 …  # run a subset of rules
    repro-lint --list-rules              # print the rule table

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule / no files).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .rules import iter_rules
from .runner import LintRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lint`` argument parser (exposed for the docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant linter for the ISE solver stack "
            "(tolerance discipline, determinism, solver-boundary validation)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (recurses into directories)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_codes(raw: str) -> tuple[str, ...]:
    return tuple(code.strip() for code in raw.split(",") if code.strip())


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: lint the given paths; exit 0 clean / 1 findings / 2 usage."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.name:24s} {rule.summary}")
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    try:
        runner = LintRunner(
            select=_split_codes(options.select),
            ignore=_split_codes(options.ignore),
        )
        runner.rules()  # validate codes eagerly for a clean usage error
    except KeyError as exc:
        print(f"repro-lint: error: {exc.args[0]}", file=sys.stderr)
        return 2

    report = runner.run(options.paths)
    if report.files_checked == 0:
        print("repro-lint: error: no python files found", file=sys.stderr)
        return 2

    print(report.to_json() if options.format == "json" else report.to_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
