"""File collection and rule execution for ``repro-lint``.

The runner walks the given paths, parses every ``*.py`` file once, runs the
selected rules, filters the result through the file's suppression comments,
and aggregates everything into a :class:`LintReport` that renders as human
text or JSON.

Malformed ``repro-lint:`` comments surface as ``ISE000`` diagnostics (a typo
in a suppression must never silently disable nothing); files that fail to
parse surface as ``ISE000`` too, so a syntax error cannot hide violations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .diagnostics import Diagnostic, SourceFile
from .rules import ALL_RULES, Rule, get_rule

__all__ = ["LintRunner", "LintReport", "lint_paths"]

#: Pseudo-code for runner-level problems (parse failures, bad suppressions).
#: Not a registered rule and not suppressible.
META_CODE = "ISE000"


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``suppressed`` holds the findings silenced by in-source
    ``# repro-lint: disable=`` comments — normally hidden, surfaced by the
    ``--show-suppressed`` audit flag (and carried into SARIF as
    in-source suppressions).  ``baselined`` holds findings matched by a
    committed baseline file; neither affects :attr:`ok`.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    baselined: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_text(self, *, show_suppressed: bool = False) -> str:
        lines = [d.format() for d in sorted(self.diagnostics)]
        if show_suppressed:
            lines.extend(
                f"{d.format()} [suppressed]" for d in sorted(self.suppressed)
            )
        counts = self.counts_by_code()
        tail = (
            ", ".join(f"{code} x{n}" for code, n in counts.items())
            if counts
            else "clean"
        )
        extras = []
        if self.suppressed:
            extras.append(f"{len(self.suppressed)} suppressed")
        if self.baselined:
            extras.append(f"{len(self.baselined)} baselined")
        extra_note = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"repro-lint: {len(self.diagnostics)} finding(s) in "
            f"{self.files_checked} file(s) [{tail}]{extra_note}"
        )
        return "\n".join(lines)

    def to_json(self, *, show_suppressed: bool = False) -> str:
        payload: dict[str, object] = {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "counts": self.counts_by_code(),
            "diagnostics": [d.to_dict() for d in sorted(self.diagnostics)],
            "suppressed_count": len(self.suppressed),
            "baselined_count": len(self.baselined),
        }
        if show_suppressed:
            payload["suppressed"] = [d.to_dict() for d in sorted(self.suppressed)]
        return json.dumps(payload, indent=2)


def _collect_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


@dataclass
class LintRunner:
    """Run a rule selection over files.

    Attributes:
        select: rule codes to run (default: all registered rules).
        ignore: rule codes to drop from the selection.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()

    def rules(self) -> list[Rule]:
        codes = list(self.select) if self.select else sorted(ALL_RULES)
        chosen = [get_rule(code) for code in codes]
        ignored = set(self.ignore)
        return [rule for rule in chosen if rule.code not in ignored]

    def run_source(
        self,
        source: SourceFile,
        suppressed_out: "list[Diagnostic] | None" = None,
    ) -> list[Diagnostic]:
        """All non-suppressed diagnostics for one parsed file.

        Suppressed findings are appended to ``suppressed_out`` when given,
        so callers can audit what the in-source comments hide.
        """
        found: list[Diagnostic] = []
        for rule in self.rules():
            for diag in rule.run(source):
                if not source.suppressions.is_suppressed(diag.code, diag.line):
                    found.append(diag)
                elif suppressed_out is not None:
                    suppressed_out.append(diag)
        for lineno in source.suppressions.malformed:
            found.append(
                Diagnostic(
                    path=source.path,
                    line=lineno,
                    code=META_CODE,
                    message=(
                        "malformed repro-lint comment; expected "
                        "`# repro-lint: disable=ISE00N[,ISE00M]`"
                    ),
                )
            )
        return found

    def run(self, paths: Sequence[str | Path]) -> LintReport:
        report = LintReport(rules_run=tuple(r.code for r in self.rules()))
        for path in _collect_files(paths):
            report.files_checked += 1
            try:
                source = SourceFile.parse(path)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.diagnostics.append(
                    Diagnostic(
                        path=str(path),
                        line=getattr(exc, "lineno", None) or 1,
                        code=META_CODE,
                        message=f"could not parse: {exc}",
                    )
                )
                continue
            report.diagnostics.extend(
                self.run_source(source, suppressed_out=report.suppressed)
            )
        return report


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> LintReport:
    """Convenience wrapper used by tests and the pytest integration."""
    return LintRunner(select=tuple(select), ignore=tuple(ignore)).run(paths)
