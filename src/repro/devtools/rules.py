"""The project rule set: codes ``ISE001``–``ISE016``.

Every rule encodes one convention the paper's guarantees or the PR-1
resilience layer depend on.  Rules are pure functions from a parsed
:class:`~repro.devtools.diagnostics.SourceFile` to diagnostics; the registry
maps codes to rules for ``--select`` / ``--ignore`` and the docs generator.

See ``docs/static_analysis.md`` for the rationale behind each code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePath
from typing import Callable, Iterable, Iterator

from .diagnostics import Diagnostic, SourceFile

__all__ = ["Rule", "ALL_RULES", "get_rule", "iter_rules", "register"]

RuleCheck = Callable[[SourceFile], Iterator[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    summary: str
    check: RuleCheck

    def run(self, source: SourceFile) -> list[Diagnostic]:
        return list(self.check(source))


ALL_RULES: dict[str, Rule] = {}


def register(code: str, name: str, summary: str) -> Callable[[RuleCheck], RuleCheck]:
    """Class-less rule registration: ``@register("ISE001", ..., ...)``."""

    def wrap(check: RuleCheck) -> RuleCheck:
        if code in ALL_RULES:
            raise ValueError(f"duplicate rule code {code}")
        ALL_RULES[code] = Rule(code=code, name=name, summary=summary, check=check)
        return check

    return wrap


def get_rule(code: str) -> Rule:
    """Look up a registered rule by its ``ISE00N`` code."""
    try:
        return ALL_RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown rule {code!r}; available: {sorted(ALL_RULES)}"
        ) from None


def iter_rules() -> Iterator[Rule]:
    """All registered rules in code order."""
    for code in sorted(ALL_RULES):
        yield ALL_RULES[code]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _is_float_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import paths they are bound to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    Only absolute imports matter to the nondeterminism rule, so relative
    imports are ignored.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _resolve(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve an expression to a fully-qualified dotted path, if importable."""
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in imports:
        return None
    base = imports[head]
    return f"{base}.{rest}" if rest else base


def _path_parts(source: SourceFile) -> tuple[str, ...]:
    return PurePath(source.path).parts


def _name_is_toleranceish(name: str) -> bool:
    lowered = name.lower()
    return "eps" in lowered or "tol" in lowered


def _class_has_call_to(cls: ast.ClassDef, names: Iterable[str]) -> bool:
    """True when any call inside ``cls`` targets one of ``names`` (by the
    final attribute/name segment)."""
    wanted = set(names)
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in wanted:
            return True
        if isinstance(func, ast.Name) and func.id in wanted:
            return True
    return False


def _class_references(cls: ast.ClassDef, names: Iterable[str]) -> bool:
    wanted = set(names)
    for node in ast.walk(cls):
        if isinstance(node, ast.Name) and node.id in wanted:
            return True
        if isinstance(node, ast.Attribute) and node.attr in wanted:
            return True
    return False


def _is_protocol(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        dotted = _dotted_name(base) or ""
        if dotted.split(".")[-1] == "Protocol":
            return True
    return False


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _solver_classes(source: SourceFile) -> Iterator[ast.ClassDef]:
    """Non-Protocol classes in ``mm/`` modules that define ``solve``."""
    parts = _path_parts(source)
    if "mm" not in parts:
        return
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.ClassDef)
            and not _is_protocol(node)
            and _method(node, "solve") is not None
        ):
            yield node


# ---------------------------------------------------------------------------
# ISE001 — raw float equality
# ---------------------------------------------------------------------------


@register(
    "ISE001",
    "float-equality",
    "raw == / != against a float literal; use repro.core.tolerance.close()",
)
def _check_float_equality(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_float_literal(left) or _is_float_literal(right):
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield source.diagnostic(
                    node,
                    "ISE001",
                    f"raw float {symbol} comparison; use "
                    "tolerance.close()/lt()/gt() so LP-rounded boundary "
                    "values compare correctly",
                )
                break


# ---------------------------------------------------------------------------
# ISE002 — inline epsilon literals
# ---------------------------------------------------------------------------

_EPSILON_CEILING = 1e-5


def _is_epsilon_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and 0.0 < abs(node.value) <= _EPSILON_CEILING
    )


def _allowed_epsilon_nodes(tree: ast.Module) -> set[int]:
    """``id()`` of epsilon constants bound to tolerance-named places.

    An epsilon literal is legitimate when its *binding site names it as a
    tolerance*: the value of an assignment to ``*eps*``/``*tol*``, the
    default of a parameter so named, or a keyword argument so named.
    Everything else is a magic number that should route through
    :mod:`repro.core.tolerance`.
    """
    allowed: set[int] = set()

    def allow_subtree(node: ast.expr | None) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant):
                allowed.add(id(sub))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if any(_name_is_toleranceish(n) for n in names):
                allow_subtree(node.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and _name_is_toleranceish(
                node.target.id
            ):
                allow_subtree(node.value)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[::-1], args.defaults[::-1]):
                if _name_is_toleranceish(arg.arg):
                    allow_subtree(default)
            for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
                if kw_default is not None and _name_is_toleranceish(arg.arg):
                    allow_subtree(kw_default)
        elif isinstance(node, ast.keyword):
            if node.arg is not None and _name_is_toleranceish(node.arg):
                allow_subtree(node.value)
    return allowed


@register(
    "ISE002",
    "inline-epsilon",
    "hardcoded epsilon literal; use repro.core.tolerance.EPS or a named tolerance",
)
def _check_inline_epsilon(source: SourceFile) -> Iterator[Diagnostic]:
    allowed = _allowed_epsilon_nodes(source.tree)
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Constant)
            and _is_epsilon_literal(node)
            and id(node) not in allowed
        ):
            yield source.diagnostic(
                node,
                "ISE002",
                f"inline epsilon {node.value!r}; use tolerance.EPS / "
                "tolerance.LOOSE_EPS or bind it to a *_TOL/*_EPS name",
            )


# ---------------------------------------------------------------------------
# ISE003 — ambient nondeterminism
# ---------------------------------------------------------------------------

_BANNED_CALLS = {
    "time.time": "wall-clock read; inject a clock (see SolveBudget.clock)",
    "time.time_ns": "wall-clock read; inject a clock (see SolveBudget.clock)",
    "datetime.datetime.now": "ambient clock; inject a clock or pass the timestamp in",
    "datetime.datetime.utcnow": "ambient clock; inject a clock or pass the timestamp in",
    "datetime.datetime.today": "ambient clock; inject a clock or pass the timestamp in",
    "datetime.date.today": "ambient clock; inject a clock or pass the timestamp in",
}

_ALLOWED_RANDOM = {"Random", "SystemRandom"}
_ALLOWED_NUMPY_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


@register(
    "ISE003",
    "ambient-nondeterminism",
    "unseeded RNG or ambient clock; results must be reproducible and injectable",
)
def _check_nondeterminism(source: SourceFile) -> Iterator[Diagnostic]:
    imports = _import_map(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve(node.func, imports)
        if resolved is None:
            continue
        if resolved in _BANNED_CALLS:
            yield source.diagnostic(
                node, "ISE003", f"{resolved}(): {_BANNED_CALLS[resolved]}"
            )
        elif resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if tail.split(".")[0] not in _ALLOWED_RANDOM:
                yield source.diagnostic(
                    node,
                    "ISE003",
                    f"{resolved}() draws from the shared module-level RNG; "
                    "use a seeded random.Random(seed) instance",
                )
        elif resolved.startswith("numpy.random."):
            tail = resolved.split(".", 2)[2]
            if tail not in _ALLOWED_NUMPY_RANDOM:
                yield source.diagnostic(
                    node,
                    "ISE003",
                    f"{resolved}() uses numpy's global RNG; use a seeded "
                    "numpy.random.default_rng(seed)",
                )
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield source.diagnostic(
                    node,
                    "ISE003",
                    "default_rng() without a seed is entropy-seeded; pass "
                    "an explicit seed so runs are reproducible",
                )


# ---------------------------------------------------------------------------
# ISE004 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        name = _dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


@register(
    "ISE004",
    "mutable-default",
    "mutable default argument is shared across calls; default to None or a field factory",
)
def _check_mutable_defaults(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield source.diagnostic(
                    default,
                    "ISE004",
                    "mutable default argument (evaluated once at def time); "
                    "use None or dataclasses.field(default_factory=...)",
                )


# ---------------------------------------------------------------------------
# ISE005 — bare except
# ---------------------------------------------------------------------------


@register(
    "ISE005",
    "bare-except",
    "bare `except:` catches SystemExit/KeyboardInterrupt; name the exceptions",
)
def _check_bare_except(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield source.diagnostic(
                node,
                "ISE005",
                "bare except; catch ReproError (or a concrete subclass) so "
                "cancellation and interrupts propagate",
            )


# ---------------------------------------------------------------------------
# ISE006 — swallowed budget-limit errors
# ---------------------------------------------------------------------------

_LIMIT_ERRORS = {"LimitExceededError", "StageTimeoutError"}


def _handler_catches(handler: ast.ExceptHandler, names: set[str]) -> bool:
    if handler.type is None:
        return False
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        dotted = _dotted_name(t) or ""
        if dotted.split(".")[-1] in names:
            return True
    return False


def _body_is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue
        return False
    return True


@register(
    "ISE006",
    "swallowed-limit",
    "LimitExceededError caught and dropped; budget exhaustion must trigger a fallback",
)
def _check_swallowed_limit(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _handler_catches(node, _LIMIT_ERRORS)
            and _body_is_silent(node.body)
        ):
            yield source.diagnostic(
                node,
                "ISE006",
                "LimitExceededError swallowed with no fallback; a budget "
                "exhaustion must degrade to a cheaper backend or re-raise",
            )


# ---------------------------------------------------------------------------
# ISE007 — solver-boundary hygiene
# ---------------------------------------------------------------------------

_MM_VALIDATORS = {"check_mm", "validate_mm"}
_LP_MARKERS = {"LPStatus", "SolverError", "StageTimeoutError", "check_budget"}


def _delegates_solve(cls: ast.ClassDef) -> bool:
    """True when the class calls another backend's ``.solve(...)``."""
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "solve"
            and not (
                isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            )
        ):
            return True
    return False


@register(
    "ISE007",
    "solver-boundary",
    "registered solver must validate its result (check_mm / LP status) or delegate to one that does",
)
def _check_solver_boundary(source: SourceFile) -> Iterator[Diagnostic]:
    parts = _path_parts(source)
    for cls in _solver_classes(source):
        if _class_has_call_to(cls, _MM_VALIDATORS) or _delegates_solve(cls):
            continue
        yield source.diagnostic(
            cls,
            "ISE007",
            f"MM backend {cls.name!r} neither calls check_mm()/validate_mm() "
            "nor delegates to a validating backend; black-box results must "
            "be re-validated (Theorem 20 discipline)",
        )
    if "lp" in parts:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.ClassDef)
                and not _is_protocol(node)
                and _method(node, "__call__") is not None
            ):
                if _class_references(node, _LP_MARKERS) or _class_has_call_to(
                    node, {"solve_highs", "solve_simplex"}
                ):
                    continue
                yield source.diagnostic(
                    node,
                    "ISE007",
                    f"LP backend {node.name!r} must surface solve status "
                    "(LPStatus) or raise typed SolverError/StageTimeoutError",
                )


# ---------------------------------------------------------------------------
# ISE008 — registry / docstring hygiene
# ---------------------------------------------------------------------------


def _defines_name_attr(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "name" for t in stmt.targets
            ):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "name":
                return True
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "name":
            return True
    return False


@register(
    "ISE008",
    "registry-hygiene",
    "registered backend needs a class docstring, a `name` attribute, and a documented solve()",
)
def _check_registry_hygiene(source: SourceFile) -> Iterator[Diagnostic]:
    for cls in _solver_classes(source):
        if ast.get_docstring(cls) is None:
            yield source.diagnostic(
                cls,
                "ISE008",
                f"registered backend {cls.name!r} has no class docstring",
            )
        if not _defines_name_attr(cls):
            yield source.diagnostic(
                cls,
                "ISE008",
                f"registered backend {cls.name!r} has no `name` attribute "
                "(required for registry lookups and resilience reports)",
            )
        solve = _method(cls, "solve")
        if solve is not None and ast.get_docstring(solve) is None:
            yield source.diagnostic(
                solve,
                "ISE008",
                f"{cls.name}.solve() has no docstring; registered entry "
                "points document their contract",
            )


# ---------------------------------------------------------------------------
# ISE009 — asserts in library code
# ---------------------------------------------------------------------------


@register(
    "ISE009",
    "no-solver-assert",
    "assert is stripped under python -O; raise a typed ReproError instead",
)
def _check_no_assert(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assert):
            yield source.diagnostic(
                node,
                "ISE009",
                "assert in library code vanishes under -O; raise "
                "SolverError/InvalidScheduleError so production keeps the check",
            )


# ---------------------------------------------------------------------------
# ISE010 — public API typing
# ---------------------------------------------------------------------------


def _enclosing_function(node: ast.AST) -> ast.AST | None:
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return parent
        parent = getattr(parent, "parent", None)
    return None


def _is_method(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return isinstance(getattr(node, "parent", None), ast.ClassDef)


@register(
    "ISE010",
    "untyped-def",
    "public function missing parameter or return annotations (the strict-mypy gate's floor)",
)
def _check_untyped_def(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_") or _enclosing_function(node) is not None:
            continue
        args = node.args
        params = list(args.posonlyargs) + list(args.args)
        if _is_method(node) and params and params[0].arg in ("self", "cls"):
            params = params[1:]
        params += list(args.kwonlyargs)
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        missing = [p.arg for p in params if p.annotation is None]
        needs_return = node.returns is None
        if not missing and not needs_return:
            continue
        problems = []
        if missing:
            problems.append(f"unannotated parameter(s): {', '.join(missing)}")
        if needs_return:
            problems.append("missing return annotation")
        yield source.diagnostic(
            node,
            "ISE010",
            f"public function {node.name!r} " + "; ".join(problems),
        )


# ---------------------------------------------------------------------------
# ISE011 — bare generic annotations
# ---------------------------------------------------------------------------

_BARE_GENERICS = {
    "dict",
    "list",
    "set",
    "tuple",
    "frozenset",
    "Dict",
    "List",
    "Set",
    "Tuple",
    "FrozenSet",
    "Mapping",
    "Sequence",
    "Iterable",
    "Iterator",
    "Callable",
}


def _bare_generic_names(annotation: ast.expr) -> Iterator[ast.Name]:
    """Bare (unparameterized) generic names anywhere in an annotation."""
    for node in ast.walk(annotation):
        if not isinstance(node, ast.Name) or node.id not in _BARE_GENERICS:
            continue
        parent = getattr(node, "parent", None)
        if isinstance(parent, ast.Subscript) and parent.value is node:
            continue  # dict[...] — parameterized
        yield node


def _annotation_sites(
    tree: ast.Module,
) -> Iterator[tuple[ast.expr, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            target = (
                node.target.id if isinstance(node.target, ast.Name) else "field"
            )
            yield node.annotation, target
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            every = (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + [a for a in (args.vararg, args.kwarg) if a is not None]
            )
            for arg in every:
                if arg.annotation is not None:
                    yield arg.annotation, f"{node.name}({arg.arg})"
            if node.returns is not None:
                yield node.returns, f"{node.name}() return"


@register(
    "ISE011",
    "bare-generic",
    "bare dict/list/tuple annotation is implicit Any; parameterize it (strict-mypy floor)",
)
def _check_bare_generic(source: SourceFile) -> Iterator[Diagnostic]:
    for annotation, where in _annotation_sites(source.tree):
        for name in _bare_generic_names(annotation):
            yield source.diagnostic(
                name,
                "ISE011",
                f"bare generic {name.id!r} in annotation of {where}; "
                f"parameterize (e.g. {name.id}[str, float]) — bare generics "
                "are implicit Any under mypy --strict",
            )


# ---------------------------------------------------------------------------
# ISE012 — non-atomic artifact writes
# ---------------------------------------------------------------------------

_ATOMICIO_MODULE = "atomicio.py"
_RAW_WRITE_ATTRS = {"write_text"}


@register(
    "ISE012",
    "non-atomic-write",
    "raw Path.write_text / json.dump bypasses atomicio; a crash mid-write leaves a torn artifact",
)
def _check_non_atomic_write(source: SourceFile) -> Iterator[Diagnostic]:
    if _path_parts(source)[-1] == _ATOMICIO_MODULE:
        return  # the one module allowed to touch the raw primitives
    imports = _import_map(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _RAW_WRITE_ATTRS:
            yield source.diagnostic(
                node,
                "ISE012",
                f".{func.attr}() writes in place — a crash mid-write tears "
                "the file; route results through "
                "repro.core.atomicio.atomic_write_text()/dump_artifact()",
            )
            continue
        if _resolve(func, imports) == "json.dump":
            yield source.diagnostic(
                node,
                "ISE012",
                "json.dump() streams into an open handle — a crash mid-write "
                "tears the file; build the text and use "
                "repro.core.atomicio.dump_artifact()/atomic_write_text()",
            )


# ---------------------------------------------------------------------------
# ISE013 — silent pool-death handling
# ---------------------------------------------------------------------------

_POOL_DEATH_ERRORS = {
    "BrokenExecutor",
    "BrokenProcessPool",
    "BrokenThreadPool",
}


def _body_records_fallback(body: list[ast.stmt]) -> bool:
    """True when the handler body visibly records the degradation: any call
    whose name mentions ``fallback``/``quarantine`` or a ``warnings.warn``,
    or the handler re-raises."""
    for node in body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if not isinstance(sub, ast.Call):
                continue
            dotted = _dotted_name(sub.func) or ""
            tail = dotted.split(".")[-1].lower()
            if "fallback" in tail or "quarantine" in tail or tail == "warn":
                return True
    return False


@register(
    "ISE013",
    "silent-pool-death",
    "BrokenExecutor caught without recording a fallback reason; worker deaths must be observable",
)
def _check_silent_pool_death(source: SourceFile) -> Iterator[Diagnostic]:
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _handler_catches(node, _POOL_DEATH_ERRORS)
            and not _body_records_fallback(node.body)
        ):
            yield source.diagnostic(
                node,
                "ISE013",
                "BrokenExecutor caught without recording why (no fallback/"
                "quarantine call, warnings.warn, or re-raise); a dead worker "
                "pool degrading silently hides real crashes",
            )


# ---------------------------------------------------------------------------
# ISE014 — direct time.sleep calls
# ---------------------------------------------------------------------------


@register(
    "ISE014",
    "direct-sleep",
    "time.sleep() called directly; inject a sleeper so tests and budgets control time",
)
def _check_direct_sleep(source: SourceFile) -> Iterator[Diagnostic]:
    """Flag *calls* to ``time.sleep``, not references to it.

    Binding ``time.sleep`` as an injectable default — ``sleep:
    Callable[[float], None] = time.sleep`` on :class:`RetryPolicy`, say —
    is the sanctioned pattern and is an attribute *reference*, so it never
    triggers this rule.  A direct call, by contrast, burns real wall clock
    that no FakeClock can advance past and no SolveBudget can clamp: the
    retry-backoff bug class this rule exists for.
    """
    imports = _import_map(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if _resolve(node.func, imports) == "time.sleep":
            yield source.diagnostic(
                node,
                "ISE014",
                "time.sleep() called directly; take an injectable "
                "`sleep: Callable[[float], None] = time.sleep` parameter "
                "(RetryPolicy convention) so tests stay fast and budget "
                "clamping applies",
            )


# ---------------------------------------------------------------------------
# ISE015 — mutation of solver-result objects
# ---------------------------------------------------------------------------

#: Result types whose fields are certified evidence once constructed.
_RESULT_TYPES = frozenset({"LPSolution", "ISEResult"})

#: Modules allowed to construct (and hence initialize) result objects:
#: the files that define each type.
_RESULT_CONSTRUCTORS = frozenset({("lp", "model.py"), ("core", "solver.py")})


def _annotation_types(annotation: ast.expr) -> set[str]:
    """Type names mentioned anywhere in an annotation expression.

    Handles plain names, dotted names, subscripted generics, unions, and
    string annotations (parsed and walked the same way).
    """
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return set()
    names: set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _tracked_result_names(tree: ast.Module) -> set[str]:
    """Names bound to solver-result objects, flow-insensitively.

    A name is tracked when it is (a) assigned from a direct constructor
    call of a result type, or (b) annotated as one (variable annotations
    and function parameters alike).
    """
    tracked: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _dotted_name(node.value.func) or ""
            if callee.split(".")[-1] in _RESULT_TYPES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_types(node.annotation) & _RESULT_TYPES:
                tracked.add(node.target.id)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _annotation_types(node.annotation) & _RESULT_TYPES:
                tracked.add(node.arg)
    return tracked


@register(
    "ISE015",
    "result-mutation",
    "solver-result fields (LPSolution/ISEResult) mutated outside the "
    "constructing module; results are evidence, use dataclasses.replace",
)
def _check_result_mutation(source: SourceFile) -> Iterator[Diagnostic]:
    """Flag attribute writes to LPSolution/ISEResult outside their homes.

    The certification layer's whole premise is that a result, once
    constructed, is immutable evidence: the certificate checksums what the
    validator saw, and any later in-place edit silently invalidates both.
    Only the modules that *define* each type (``lp/model.py``,
    ``core/solver.py``) may touch fields directly; everyone else goes
    through ``dataclasses.replace``, which the rule never flags.  Both
    plain attribute assignment and the ``object.__setattr__`` frozen-
    dataclass escape hatch are caught.
    """
    parts = _path_parts(source)
    if len(parts) >= 2 and (parts[-2], parts[-1]) in _RESULT_CONSTRUCTORS:
        return
    tracked = _tracked_result_names(source.tree)
    if not tracked:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in tracked
                ):
                    yield source.diagnostic(
                        node,
                        "ISE015",
                        f"mutates solver result `{target.value.id}."
                        f"{target.attr}`; results are immutable evidence — "
                        "build a new one with dataclasses.replace",
                    )
        elif isinstance(node, ast.Call):
            if (
                _dotted_name(node.func) == "object.__setattr__"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in tracked
            ):
                yield source.diagnostic(
                    node,
                    "ISE015",
                    f"object.__setattr__ on solver result "
                    f"`{node.args[0].id}` bypasses frozen-dataclass "
                    "protection; use dataclasses.replace",
                )


# ---------------------------------------------------------------------------
# ISE016 — mutation of committed online-session state
# ---------------------------------------------------------------------------

#: The online-session type whose committed state is append-only evidence.
_SESSION_TYPES = frozenset({"ISESession"})

#: The one module allowed to write session attributes: the file that
#: defines the type and enforces the never-retract invariant on every
#: mutation path.
_SESSION_HOME = ("online", "session.py")


def _tracked_session_names(tree: ast.Module) -> set[str]:
    """Names bound to online sessions, flow-insensitively.

    A name is tracked when it is assigned from ``ISESession(...)`` or one
    of its factory classmethods (``ISESession.create`` /
    ``ISESession.open``), or annotated as :class:`ISESession`.
    """
    tracked: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _dotted_name(node.value.func) or ""
            if _SESSION_TYPES & set(callee.split(".")):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_types(node.annotation) & _SESSION_TYPES:
                tracked.add(node.target.id)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _annotation_types(node.annotation) & _SESSION_TYPES:
                tracked.add(node.arg)
    return tracked


@register(
    "ISE016",
    "session-state-mutation",
    "ISESession attributes written outside repro/online/session.py; "
    "committed session state is never-retract evidence — use the "
    "submit_job/advance API",
)
def _check_session_mutation(source: SourceFile) -> Iterator[Diagnostic]:
    """Flag attribute writes to :class:`ISESession` outside its home module.

    The durability story rests on one invariant: every mutation of session
    state flows through ``submit_job``/``advance``, which journal first,
    machine-check the never-retract property, and only then install.  An
    attribute write from anywhere else — serve handlers, tests poking
    ``session._committed``, benchmarks resetting counters — bypasses the
    journal, so a crash after it silently forks the durable history from
    the in-memory one.  Only ``repro/online/session.py`` (which defines
    the type and owns the invariant checks) may write attributes; both
    plain assignment and the ``object.__setattr__`` escape hatch are
    caught everywhere else.
    """
    parts = _path_parts(source)
    if len(parts) >= 2 and (parts[-2], parts[-1]) == _SESSION_HOME:
        return
    tracked = _tracked_session_names(source.tree)
    if not tracked:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in tracked
                ):
                    yield source.diagnostic(
                        node,
                        "ISE016",
                        f"writes session state `{target.value.id}."
                        f"{target.attr}` outside repro/online/session.py; "
                        "committed calibrations never retract — go through "
                        "submit_job/advance so the journal and invariant "
                        "checks see the mutation",
                    )
        elif isinstance(node, ast.Call):
            if (
                _dotted_name(node.func) == "object.__setattr__"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in tracked
            ):
                yield source.diagnostic(
                    node,
                    "ISE016",
                    f"object.__setattr__ on session `{node.args[0].id}` "
                    "bypasses the journaled mutation API; go through "
                    "submit_job/advance",
                )
