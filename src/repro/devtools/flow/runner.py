"""Driving the whole-program analysis: build graph, run rules, suppress.

The flow runner is the piece the CLI calls for ``--flow`` / ``--changed``:
it locates the package root, builds (or incrementally rebuilds, via the
hash-keyed cache) the :class:`~repro.devtools.flow.graph.ProgramGraph`,
runs the selected ISE100+ rules, and applies in-source suppressions.

Cross-module findings are anchored at the **edge source line** — the
import statement, call site, mutation, or raise in the file where the
developer can act — so the ordinary ``# repro-lint: disable=ISE1xx``
comment on that line suppresses them, exactly like per-file rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..diagnostics import Diagnostic
from .cache import GraphCache, default_cache_dir
from .config import FlowConfig
from .graph import ProgramGraph, build_graph
from .registry import FLOW_RULES, FlowRule, get_flow_rule

# Importing the rule modules registers them.
from . import rules_arch  # noqa: F401  (registration side effect)
from . import rules_budget  # noqa: F401
from . import rules_concurrency  # noqa: F401
from . import rules_exceptions  # noqa: F401

__all__ = ["FlowResult", "analyze_package", "find_package_root", "select_flow_rules"]

#: Runner-level problems (parse failures) — same meta code as the per-file
#: runner, and likewise not suppressible.
META_CODE = "ISE000"


@dataclass
class FlowResult:
    """One flow-analysis run over one package."""

    graph: ProgramGraph
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    rules_run: tuple[str, ...] = ()


def find_package_root(path: Path) -> Path | None:
    """Topmost enclosing directory that is an importable package.

    For ``src/repro/core/parallel.py`` this walks up through every parent
    carrying an ``__init__.py`` and returns ``src/repro``; for a directory
    argument it starts at the directory itself.  None when ``path`` is not
    inside a package at all.
    """
    current = path if path.is_dir() else path.parent
    if not (current / "__init__.py").is_file():
        return None
    while (current.parent / "__init__.py").is_file():
        current = current.parent
    return current


def select_flow_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> list[FlowRule]:
    """Flow rules matching a ``--select``/``--ignore`` spec.

    ``select`` may contain per-file codes too (the CLI shares one flag);
    they are ignored here, but a fully unknown code raises ``KeyError``
    like the per-file runner's validation does.
    """
    if select:
        codes = [code for code in select if code in FLOW_RULES]
    else:
        codes = sorted(FLOW_RULES)
    chosen = [get_flow_rule(code) for code in codes]
    ignored = set(ignore)
    return [rule for rule in chosen if rule.code not in ignored]


def analyze_package(
    root: Path,
    *,
    config: FlowConfig | None = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    cache_dir: Path | None = None,
    use_cache: bool = True,
) -> FlowResult:
    """Run the ISE100+ rules over the package rooted at ``root``."""
    if config is None:
        config = FlowConfig.discover(root)
    cache: GraphCache | None = None
    cached = None
    if use_cache:
        cache = GraphCache(
            cache_dir if cache_dir is not None else default_cache_dir(),
            root.name,
        )
        cached = cache.load()
    graph = build_graph(root, cached=cached)
    if cache is not None:
        cache.store(graph.summaries)

    rules = select_flow_rules(select, ignore)
    result = FlowResult(graph=graph, rules_run=tuple(rule.code for rule in rules))

    for path, line, message in graph.parse_failures:
        result.diagnostics.append(
            Diagnostic(path=path, line=line, code=META_CODE, message=message)
        )

    suppressions_by_path = {
        summary.path: summary.suppressions()
        for summary in graph.summaries.values()
    }
    for rule in rules:
        for diag in rule.run(graph, config):
            suppressions = suppressions_by_path.get(diag.path)
            if suppressions is not None and suppressions.is_suppressed(
                diag.code, diag.line
            ):
                result.suppressed.append(diag)
            else:
                result.diagnostics.append(diag)
    result.diagnostics.sort()
    result.suppressed.sort()
    return result
