"""Whole-program flow analysis for ``repro-lint`` (the ISE100+ rules).

Builds an import graph and an approximate call graph over one package
(:mod:`repro.devtools.flow.graph`), then checks cross-module invariants
that no per-file rule can see:

========  =======================  ==================================================
code      name                     checks
========  =======================  ==================================================
ISE100    layer-violation          imports against the declared layer DAG
ISE101    import-cycle             import-time cycles (deferred imports exempt)
ISE102    unlocked-shared-state    worker-reachable writes to module globals
ISE103    nested-process-pool      process pools outside the sanctioned wrapper
ISE104    budget-propagation       SolveBudget dropped / not forwarded / re-created
ISE105    cross-layer-raise        generic exceptions escaping a layer boundary
========  =======================  ==================================================

Everything here is stdlib-only and — like the rest of ``devtools`` —
imports nothing from the solver stack it analyzes.
"""

from .baseline import Baseline
from .cache import GraphCache, default_cache_dir
from .config import FlowConfig, FlowConfigError, LayerSpec
from .graph import ProgramGraph, build_graph
from .registry import FLOW_RULES, FlowRule, get_flow_rule, iter_flow_rules
from .runner import FlowResult, analyze_package, find_package_root, select_flow_rules
from .sarif import to_sarif, to_sarif_json
from .summary import ModuleSummary, summarize_module

__all__ = [
    "FLOW_RULES",
    "Baseline",
    "FlowConfig",
    "FlowConfigError",
    "FlowResult",
    "FlowRule",
    "GraphCache",
    "LayerSpec",
    "ModuleSummary",
    "ProgramGraph",
    "analyze_package",
    "build_graph",
    "default_cache_dir",
    "find_package_root",
    "get_flow_rule",
    "iter_flow_rules",
    "select_flow_rules",
    "summarize_module",
    "to_sarif",
    "to_sarif_json",
]
