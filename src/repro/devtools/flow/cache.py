"""File-hash-keyed cache of module summaries for incremental flow runs.

The cache stores every :class:`~repro.devtools.flow.summary.ModuleSummary`
as JSON keyed by module name; on the next run, any module whose file
sha256 still matches is reused without re-parsing, so ``repro-lint
--changed`` pays only for the files that actually changed while the
cross-module rules still see the whole program.

Corruption is never fatal: an unreadable or version-mismatched cache is
treated as empty.  Writes go through a temp-file + ``os.replace`` so a
crash mid-write cannot tear the cache (devtools cannot import
``repro.core.atomicio`` — the devtools layer is isolated — so it carries
its own minimal atomic write).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping

from .summary import SUMMARY_VERSION, ModuleSummary

__all__ = ["CACHE_VERSION", "GraphCache", "default_cache_dir"]

#: Bump on any change to the cache file layout itself.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """Where the cache lives unless overridden: ``.repro-lint-cache/``."""
    return Path(".repro-lint-cache")


class GraphCache:
    """Load/store summaries for one analyzed package."""

    def __init__(self, cache_dir: Path, package: str) -> None:
        self.path = cache_dir / f"flow-{package}.json"

    def load(self) -> dict[str, ModuleSummary]:
        """Cached summaries by module name ({} on miss/corruption)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        if raw.get("cache_version") != CACHE_VERSION:
            return {}
        if raw.get("summary_version") != SUMMARY_VERSION:
            return {}
        modules = raw.get("modules")
        if not isinstance(modules, dict):
            return {}
        out: dict[str, ModuleSummary] = {}
        for name, entry in modules.items():
            try:
                out[name] = ModuleSummary.from_dict(entry)
            except (KeyError, TypeError, ValueError):
                return {}  # partial corruption: rebuild everything
        return out

    def store(self, summaries: Mapping[str, ModuleSummary]) -> None:
        """Atomically persist ``summaries`` (best-effort: IO errors pass)."""
        payload = {
            "cache_version": CACHE_VERSION,
            "summary_version": SUMMARY_VERSION,
            "modules": {
                name: summary.to_dict() for name, summary in sorted(summaries.items())
            },
        }
        text = json.dumps(payload, sort_keys=True)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, self.path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
