"""ISE105 — exception contracts across layer boundaries.

A ``raise`` of a generic exception (``Exception``, ``BaseException``,
``RuntimeError``) in a function reachable from *another* layer escapes
the typed :class:`~repro.core.errors.ReproError` hierarchy that the
resilience machinery (``run_with_fallbacks`` rescue lists, the serve
layer's error mapping) dispatches on: the caller either swallows too much
or crashes on an error it could have degraded around.  Raises that stay
within one layer are that layer's own business and are not flagged;
``ValueError``/``TypeError`` argument validation is sanctioned anywhere.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from .config import FlowConfig
from .graph import ProgramGraph
from .registry import register_flow

__all__: list[str] = []

_GENERIC_EXCEPTIONS = {"Exception", "BaseException", "RuntimeError"}


@register_flow(
    "ISE105",
    "cross-layer-raise",
    "generic Exception/RuntimeError raised in code reachable from another layer",
)
def _check_cross_layer_raises(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    layer_cache: dict[str, str | None] = {}

    def layer_of(module: str) -> str | None:
        if module not in layer_cache:
            layer_cache[module] = config.layer_of(module)
        return layer_cache[module]

    for fqid in sorted(graph.functions):
        fn = graph.functions[fqid]
        generic_raises = [
            record
            for record in fn.raises
            if record.exc.split(".")[-1] in _GENERIC_EXCEPTIONS
        ]
        if not generic_raises:
            continue
        module = graph.module_of(fqid)
        own_layer = layer_of(module)
        if own_layer is None:
            continue
        parents = graph.reachable([fqid], reverse=True)
        foreign: str | None = None
        for ancestor in sorted(parents):
            if ancestor == fqid:
                continue
            ancestor_layer = layer_of(graph.module_of(ancestor))
            if ancestor_layer is not None and ancestor_layer != own_layer:
                foreign = ancestor
                break
        if foreign is None:
            continue
        chain = graph.chain(parents, foreign)
        # parents is a *reverse* reachability map rooted at fqid, so the
        # reconstructed path runs fqid -> ... -> foreign; flip it for the
        # caller-to-raiser reading.
        chain.reverse()
        foreign_layer = layer_of(graph.module_of(foreign))
        for record in generic_raises:
            yield Diagnostic(
                path=graph.path_of(module),
                line=record.line,
                code="ISE105",
                message=(
                    f"cross-layer raise: {record.exc} raised in {fqid} "
                    f"(layer '{own_layer}'), reachable from layer "
                    f"'{foreign_layer}' via {' -> '.join(chain)}; raise a "
                    "typed ReproError subclass (SolverError, "
                    "InvalidInstanceError, ...) so cross-layer handlers can "
                    "dispatch on it"
                ),
            )
