"""ISE100/ISE101 — architecture conformance against the declared layer DAG.

* **ISE100 layer-violation**: an import edge whose target layer is not in
  the importing layer's (transitively closed) allow-list, plus
  reachability checks for explicitly ``forbid``-den layer pairs.  Reach
  findings report the full module chain and are skipped when any edge on
  the path is already reported as a direct violation, so one bad import
  yields exactly one finding.
* **ISE101 import-cycle**: strongly connected components of the
  *immediate* (non-deferred) import graph.  Function-scoped and
  ``TYPE_CHECKING`` imports are the sanctioned cycle-breaking idiom and
  do not participate.
"""

from __future__ import annotations

from collections import deque
from fnmatch import fnmatchcase
from typing import Callable, Iterator

from ..diagnostics import Diagnostic
from .config import FlowConfig
from .graph import ImportEdge, ProgramGraph
from .registry import register_flow

__all__: list[str] = []


@register_flow(
    "ISE100",
    "layer-violation",
    "import crosses the declared layer DAG the wrong way (or reaches a forbidden layer)",
)
def _check_layers(graph: ProgramGraph, config: FlowConfig) -> Iterator[Diagnostic]:
    layer_cache: dict[str, str | None] = {}

    def layer_of(module: str) -> str | None:
        if module not in layer_cache:
            layer_cache[module] = config.layer_of(module)
        return layer_cache[module]

    for module in sorted(graph.summaries):
        if layer_of(module) is None:
            summary = graph.summaries[module]
            yield Diagnostic(
                path=summary.path,
                line=1,
                code="ISE100",
                message=(
                    f"module '{module}' is not covered by any layer in "
                    "[tool.repro-lint.layers]; assign it so the architecture "
                    "check can see it"
                ),
            )

    allowed_cache: dict[str, frozenset[str]] = {}

    def allowed(layer: str) -> frozenset[str]:
        if layer not in allowed_cache:
            allowed_cache[layer] = config.allowed_layers(layer)
        return allowed_cache[layer]

    violating_edges: set[tuple[str, str]] = set()
    for edge in sorted(graph.import_edges, key=lambda e: (e.src, e.line)):
        src_layer = layer_of(edge.src)
        dst_layer = layer_of(edge.dst)
        if src_layer is None or dst_layer is None:
            continue
        if dst_layer in allowed(src_layer):
            continue
        violating_edges.add((edge.src, edge.dst))
        allow_list = sorted(allowed(src_layer) - {src_layer})
        may = ", ".join(allow_list) if allow_list else "nothing"
        yield Diagnostic(
            path=graph.path_of(edge.src),
            line=edge.line,
            code="ISE100",
            message=(
                f"layer violation: '{edge.src}' (layer '{src_layer}') imports "
                f"'{edge.dst}' (layer '{dst_layer}'); '{src_layer}' may import "
                f"only: {may}; chain: {edge.src} -> {edge.dst}"
            ),
        )

    # Reachability for forbidden pairs, over edges that are individually
    # legal (a path through an already-reported bad edge is not re-reported).
    if not config.forbid:
        return
    adjacency: dict[str, list[ImportEdge]] = {}
    for edge in graph.import_edges:
        if (edge.src, edge.dst) in violating_edges:
            continue
        adjacency.setdefault(edge.src, []).append(edge)
    for src_layer_name, dst_layer_name in config.forbid:
        sources = sorted(
            m for m in graph.summaries if layer_of(m) == src_layer_name
        )
        for start in sources:
            hit = _first_reach(
                adjacency, start, lambda m: layer_of(m) == dst_layer_name
            )
            if hit is None:
                continue
            chain, first_edge = hit
            yield Diagnostic(
                path=graph.path_of(start),
                line=first_edge.line,
                code="ISE100",
                message=(
                    f"forbidden reach: '{start}' (layer '{src_layer_name}') "
                    f"reaches layer '{dst_layer_name}' via import chain: "
                    f"{' -> '.join(chain)}"
                ),
            )


def _first_reach(
    adjacency: dict[str, list[ImportEdge]],
    start: str,
    is_target: Callable[[str], bool],
) -> tuple[list[str], ImportEdge] | None:
    """Shortest import path from ``start`` to any module satisfying
    ``is_target``; returns the module chain and the first edge taken."""
    parents: dict[str, tuple[str, ImportEdge] | None] = {start: None}
    queue: deque[str] = deque([start])
    while queue:
        current = queue.popleft()
        for edge in adjacency.get(current, ()):
            if edge.dst in parents:
                continue
            parents[edge.dst] = (current, edge)
            if is_target(edge.dst):
                chain = [edge.dst]
                node: str | None = current
                while node is not None:
                    chain.append(node)
                    step = parents[node]
                    if step is None:
                        break
                    node = step[0]
                chain.reverse()
                return chain, _edge_from(adjacency, chain[0], chain[1])
            queue.append(edge.dst)
    return None


def _edge_from(
    adjacency: dict[str, list[ImportEdge]], src: str, dst: str
) -> ImportEdge:
    for edge in adjacency.get(src, ()):
        if edge.dst == dst:
            return edge
    return ImportEdge(src=src, dst=dst, line=1, deferred=False)


@register_flow(
    "ISE101",
    "import-cycle",
    "modules form an import-time cycle (deferred imports are the sanctioned breaker)",
)
def _check_cycles(graph: ProgramGraph, config: FlowConfig) -> Iterator[Diagnostic]:
    del config
    adjacency: dict[str, set[str]] = {}
    edge_lines: dict[tuple[str, str], int] = {}
    for edge in graph.import_edges:
        if edge.deferred:
            continue
        adjacency.setdefault(edge.src, set()).add(edge.dst)
        key = (edge.src, edge.dst)
        if key not in edge_lines or edge.line < edge_lines[key]:
            edge_lines[key] = edge.line
    for component in _strongly_connected(adjacency):
        if len(component) < 2:
            only = next(iter(component))
            if only not in adjacency.get(only, set()):
                continue
        ordered = sorted(component)
        anchor = ordered[0]
        cycle = _cycle_path(adjacency, anchor, component)
        line = edge_lines.get((cycle[0], cycle[1]), 1) if len(cycle) > 1 else 1
        yield Diagnostic(
            path=graph.path_of(anchor),
            line=line,
            code="ISE101",
            message=(
                "import cycle at module load time: "
                + " -> ".join(cycle)
                + "; break it with a function-scoped or TYPE_CHECKING import"
            ),
        )


def _strongly_connected(adjacency: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan SCCs (iterative), deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]

    nodes = sorted(set(adjacency) | {d for ds in adjacency.values() for d in ds})

    def strongconnect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(adjacency.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return components


def _cycle_path(
    adjacency: dict[str, set[str]], start: str, component: set[str]
) -> list[str]:
    """A concrete cycle through ``start`` inside one SCC, for the message."""
    path = [start]
    seen = {start}
    current = start
    while True:
        next_nodes = sorted(
            n for n in adjacency.get(current, ()) if n in component
        )
        if not next_nodes:
            return path
        preferred = [n for n in next_nodes if n not in seen]
        if not preferred:
            path.append(start if start in next_nodes else next_nodes[0])
            return path
        current = preferred[0]
        seen.add(current)
        path.append(current)


def module_matches(module: str, patterns: tuple[str, ...]) -> bool:
    """Shared fnmatch helper for module-glob config fields."""
    return any(
        module == pattern or fnmatchcase(module, pattern) for pattern in patterns
    )
