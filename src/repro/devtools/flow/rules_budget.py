"""ISE104 — budget/deadline propagation along solver call paths.

The repository's deadline discipline: an admission-time
:class:`~repro.core.resilience.SolveBudget` must reach every budget-polled
inner loop (anything that calls ``check_budget`` — the simplex pivot loop,
the MM branch-and-bound) through ``budget_scope`` / ``subbudget()`` /
explicit ``budget=`` forwarding, never by being silently dropped or
re-created from scratch mid-path.  Three findings enforce it:

* **unbudgeted-path**: a configured public entry point reaches a
  ``check_budget``-polling sink along a call chain on which *no* function
  installs a budget (calls ``budget_scope``/``subbudget``/``fresh_budget``
  or forwards ``budget=``/``resilience=``).
* **dropped-budget**: a call site whose caller visibly holds a budget,
  whose in-program callee accepts a ``budget`` parameter, and which passes
  neither ``budget=`` nor ``resilience=`` — the subbudget dies right there.
* **recreated-budget**: a function that reads an existing budget yet
  constructs a fresh ``SolveBudget(...)`` instead of forwarding a
  subbudget (the budget machinery module itself is exempt: it is where
  legitimate construction lives).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Iterator

from ..diagnostics import Diagnostic
from .config import FlowConfig
from .graph import ProgramGraph
from .registry import register_flow

__all__: list[str] = []

_INSTALLER_TAILS = {"budget_scope", "subbudget", "fresh_budget"}


def _entry_fqids(graph: ProgramGraph, config: FlowConfig) -> list[str]:
    out: list[str] = []
    for pattern in config.entrypoints:
        if any(ch in pattern for ch in "*?"):
            out.extend(
                fqid for fqid in sorted(graph.functions) if fnmatchcase(fqid, pattern)
            )
        elif pattern in graph.functions:
            out.append(pattern)
    return out


def _sink_fqids(graph: ProgramGraph, config: FlowConfig) -> set[str]:
    """Functions that poll the budget: any caller of ``check_budget``."""
    sinks = {fqid for fqid in config.extra_budget_sinks if fqid in graph.functions}
    for fqid, fn in graph.functions.items():
        module = graph.module_of(fqid)
        if module == config.budget_module:
            continue
        for call in fn.calls:
            if call.callee.split(".")[-1] == "check_budget":
                sinks.add(fqid)
                break
    return sinks


def _installs_budget(graph: ProgramGraph, fqid: str) -> bool:
    fn = graph.function(fqid)
    if fn is None:
        return False
    for call in fn.calls:
        tail = call.callee.split(".")[-1].partition("(")[0]
        if tail in _INSTALLER_TAILS:
            return True
        if "budget" in call.kwargs or "resilience" in call.kwargs:
            return True
    return False


@register_flow(
    "ISE104",
    "budget-propagation",
    "solver path drops, fails to forward, or re-creates the SolveBudget",
)
def _check_budget_flow(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    yield from _unbudgeted_paths(graph, config)
    yield from _dropped_budgets(graph, config)
    yield from _recreated_budgets(graph, config)


def _unbudgeted_paths(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    entries = _entry_fqids(graph, config)
    if not entries:
        return
    sinks = _sink_fqids(graph, config)
    if not sinks:
        return
    installer_cache: dict[str, bool] = {}

    def installs(fqid: str) -> bool:
        if fqid not in installer_cache:
            installer_cache[fqid] = _installs_budget(graph, fqid)
        return installer_cache[fqid]

    for entry in entries:
        if installs(entry):
            continue
        # BFS that refuses to cross an installing function or a call edge
        # that forwards a budget: whatever it still reaches is unbudgeted.
        parents: dict[str, tuple[str, int] | None] = {entry: None}
        queue = [entry]
        hit: str | None = None
        while queue and hit is None:
            current = queue.pop(0)
            for edge in graph.out_edges(current):
                if edge.budgeted:
                    continue
                if edge.target in parents:
                    continue
                parents[edge.target] = (current, edge.line)
                if edge.target in sinks:
                    hit = edge.target
                    break
                if installs(edge.target):
                    continue  # budget installed here; below is covered
                queue.append(edge.target)
        if hit is None:
            continue
        chain = graph.chain(parents, hit)
        entry_fn = graph.function(entry)
        first_step = parents.get(chain[1]) if len(chain) > 1 else None
        line = first_step[1] if first_step is not None else (
            entry_fn.line if entry_fn is not None else 1
        )
        yield Diagnostic(
            path=graph.path_of(graph.module_of(entry)),
            line=line,
            code="ISE104",
            message=(
                f"unbudgeted path: entry point {entry} reaches budget-polled "
                f"{hit} with no SolveBudget installed along "
                f"{' -> '.join(chain)}; install one via budget_scope() or "
                "forward budget=/resilience= down the chain"
            ),
        )


def _dropped_budgets(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    for fqid in sorted(graph.functions):
        fn = graph.functions[fqid]
        module = graph.module_of(fqid)
        if module == config.budget_module:
            continue
        holds_budget = fn.reads_budget or _installs_budget(graph, fqid)
        if not holds_budget:
            continue
        for call in fn.calls:
            if "budget" in call.kwargs or "resilience" in call.kwargs:
                continue
            if "budget" in call.none_kwargs:
                continue  # explicit budget=None is a visible decision
            if any("budget" in name for _, name in call.pos_names):
                continue  # forwarded positionally
            callee_tail = call.callee.split(".")[-1]
            if callee_tail in ("subbudget", "fresh_budget", "start"):
                continue
            targets = {
                edge.target
                for edge in graph.out_edges(fqid)
                if edge.line == call.line and edge.kind == "call"
            }
            for target in sorted(targets):
                target_fn = graph.function(target)
                if target_fn is None:
                    continue
                # Only a *defaulted* budget parameter can be silently
                # dropped — omitting a required one is a TypeError anyway.
                if "budget" not in target_fn.optional_params:
                    continue
                yield Diagnostic(
                    path=graph.path_of(module),
                    line=call.line,
                    code="ISE104",
                    message=(
                        f"dropped budget: {fqid} holds a SolveBudget but calls "
                        f"{target} without forwarding it (the 'budget' "
                        "parameter falls back to its default); pass "
                        "budget=<subbudget> or resilience=<policy>"
                    ),
                )


def _recreated_budgets(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    budget_class_tail = config.budget_class.rpartition(".")[2]
    for fqid in sorted(graph.functions):
        fn = graph.functions[fqid]
        module = graph.module_of(fqid)
        if module == config.budget_module:
            continue
        if not fn.reads_budget:
            continue
        for call in fn.calls:
            base = call.callee.partition("().")[0]
            if base.split(".")[-1] != budget_class_tail:
                continue
            resolution_ok = _resolves_to_budget_class(graph, module, base, config)
            if not resolution_ok:
                continue
            yield Diagnostic(
                path=graph.path_of(module),
                line=call.line,
                code="ISE104",
                message=(
                    f"recreated budget: {fqid} already has access to a "
                    f"SolveBudget but constructs a fresh {budget_class_tail}(...) "
                    "— the caller's remaining deadline is silently discarded; "
                    "forward caller_budget.subbudget() instead"
                ),
            )


def _resolves_to_budget_class(
    graph: ProgramGraph, module: str, dotted: str, config: FlowConfig
) -> bool:
    table = graph.symbols.get(module, {})
    parts = dotted.split(".")
    head = parts[0]
    if head in table:
        absolute = table[head] + ("." + ".".join(parts[1:]) if parts[1:] else "")
    elif module == config.budget_module and dotted == config.budget_class.rpartition(
        "."
    )[2]:
        absolute = config.budget_class
    else:
        absolute = dotted
    return absolute == config.budget_class
