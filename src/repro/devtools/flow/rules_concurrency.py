"""ISE102/ISE103 — concurrency hazards visible in the call graph.

* **ISE102 unlocked-shared-state**: a function reachable from a worker
  entry point (anything handed to ``parallel_map`` / ``pool.submit`` /
  ``threading.Thread``, plus every function in the configured
  ``concurrent_roots`` modules — the serve layer is multi-threaded by
  construction) writes module-level mutable state without holding a
  lock.  Writes inside a ``with <something lock-like>:`` block are
  considered guarded.
* **ISE103 nested-process-pool**: a ``ProcessPoolExecutor`` constructed
  outside the sanctioned wrapper module(s), or reachable from a
  process-pool worker entry — pools forked from pools oversubscribe the
  machine and silently lose the budget snapshot the sanctioned wrapper
  ships.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from .config import FlowConfig
from .graph import ProgramGraph, WorkerEntry
from .registry import register_flow
from .rules_arch import module_matches

__all__: list[str] = []

_PROCESS_POOL_NAMES = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
}


def _concurrent_root_fqids(graph: ProgramGraph, config: FlowConfig) -> list[str]:
    out: list[str] = []
    for module, summary in graph.summaries.items():
        if not module_matches(module, config.concurrent_roots):
            continue
        out.extend(f"{module}:{qual}" for qual in summary.functions)
    return out


def _entry_label(entry: WorkerEntry) -> str:
    return f"{entry.fqid} ({entry.kind} worker, dispatched at {entry.site_module}:{entry.line})"


@register_flow(
    "ISE102",
    "unlocked-shared-state",
    "module-level state written without a lock in code reachable from worker threads",
)
def _check_shared_state(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    roots: dict[str, str] = {}
    for entry in graph.worker_entries:
        roots.setdefault(entry.fqid, _entry_label(entry))
    for fqid in _concurrent_root_fqids(graph, config):
        roots.setdefault(fqid, f"{fqid} (concurrent root)")
    if not roots:
        return
    parents = graph.reachable(roots)
    reported: set[tuple[str, int, str]] = set()
    for fqid in sorted(parents):
        fn = graph.function(fqid)
        if fn is None:
            continue
        module = graph.module_of(fqid)
        summary = graph.summaries[module]
        shared = set(summary.module_level_names)
        for mutation in fn.mutations:
            if mutation.locked:
                continue
            if not mutation.is_global_decl and mutation.name not in shared:
                continue
            key = (module, mutation.line, mutation.name)
            if key in reported:
                continue
            reported.add(key)
            chain = graph.chain(parents, fqid)
            root_label = roots.get(chain[0], chain[0])
            verb = {
                "rebind": "rebinds",
                "mutate": "mutates",
                "consume": "consumes (next())",
            }.get(mutation.kind, "writes")
            yield Diagnostic(
                path=summary.path,
                line=mutation.line,
                code="ISE102",
                message=(
                    f"unlocked shared state: {fqid} {verb} module-level "
                    f"'{mutation.name}' without a lock; reachable from "
                    f"{root_label} via {' -> '.join(chain)}; guard the write "
                    "with a threading.Lock or make the state worker-local"
                ),
            )


@register_flow(
    "ISE103",
    "nested-process-pool",
    "ProcessPoolExecutor created outside the sanctioned wrapper or inside worker code",
)
def _check_nested_pools(
    graph: ProgramGraph, config: FlowConfig
) -> Iterator[Diagnostic]:
    process_roots: dict[str, str] = {}
    for entry in graph.worker_entries:
        if entry.kind == "process":
            process_roots.setdefault(entry.fqid, _entry_label(entry))
    parents = graph.reachable(process_roots) if process_roots else {}

    def sanctioned(module: str, fqid: str) -> bool:
        for pattern in config.pool_sanctioned:
            if ":" in pattern:
                if fqid == pattern:
                    return True
            elif module == pattern or module_matches(module, (pattern,)):
                return True
        return False

    for module in sorted(graph.summaries):
        summary = graph.summaries[module]
        for qual in sorted(summary.functions):
            fqid = f"{module}:{qual}"
            fn = summary.functions[qual]
            if sanctioned(module, fqid):
                continue
            env_hits: list[int] = []
            for call in fn.calls:
                resolved = _pool_ctor_line(graph, module, call.callee, call.line)
                if resolved is not None:
                    env_hits.append(resolved)
            for line in sorted(set(env_hits)):
                if fqid in parents:
                    chain = graph.chain(parents, fqid)
                    root_label = process_roots.get(chain[0], chain[0])
                    message = (
                        f"nested process pool: {fqid} creates a "
                        "ProcessPoolExecutor while itself reachable from "
                        f"{root_label} via {' -> '.join(chain)}; route the "
                        "fan-out through repro.core.parallel.parallel_map "
                        "(which degrades to serial inside workers)"
                    )
                else:
                    message = (
                        f"unsanctioned process pool: {fqid} creates a "
                        "ProcessPoolExecutor directly; only the sanctioned "
                        "wrapper(s) "
                        + (", ".join(config.pool_sanctioned) or "(none configured)")
                        + " may — they ship budget snapshots and guard "
                        "against pool-in-pool recursion"
                    )
                yield Diagnostic(
                    path=summary.path, line=line, code="ISE103", message=message
                )


def _pool_ctor_line(
    graph: ProgramGraph, module: str, callee: str, line: int
) -> int | None:
    """``line`` when ``callee`` resolves to ProcessPoolExecutor, else None."""
    base = callee.partition("().")[0]
    table = graph.symbols.get(module, {})
    parts = base.split(".")
    head = parts[0]
    if head in table:
        absolute = table[head] + ("." + ".".join(parts[1:]) if parts[1:] else "")
    else:
        absolute = base
    return line if absolute in _PROCESS_POOL_NAMES else None
