"""Committed-baseline mechanism for grandfathered findings.

A baseline file records findings that are *known and accepted for now*;
CI fails only on findings not in the baseline, so the analyzer can land
with strict rules while legacy violations are burned down incrementally.
At merge time this repository's baseline is empty — the file exists so
the workflow (and the ``--update-baseline`` flag) is exercised.

Entries match on ``(code, path, message)`` — not the line number, which
drifts under unrelated edits.  The line is stored for human review only.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..diagnostics import Diagnostic

__all__ = ["BASELINE_VERSION", "Baseline"]

BASELINE_VERSION = 1


def _fingerprint(diag: Diagnostic) -> tuple[str, str, str]:
    return (diag.code, diag.path, diag.message)


@dataclass
class Baseline:
    """The set of grandfathered findings."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has unsupported format "
                f"(expected version {BASELINE_VERSION})"
            )
        entries: set[tuple[str, str, str]] = set()
        for item in raw.get("findings", []):
            entries.add((str(item["code"]), str(item["path"]), str(item["message"])))
        return cls(entries=entries)

    def split(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """``(new, baselined)`` partition of ``diagnostics``."""
        new: list[Diagnostic] = []
        baselined: list[Diagnostic] = []
        for diag in diagnostics:
            if _fingerprint(diag) in self.entries:
                baselined.append(diag)
            else:
                new.append(diag)
        return new, baselined

    @staticmethod
    def write(path: Path, diagnostics: Sequence[Diagnostic]) -> None:
        """Atomically write a baseline accepting ``diagnostics``."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "code": diag.code,
                    "path": diag.path,
                    "line": diag.line,
                    "message": diag.message,
                }
                for diag in sorted(diagnostics)
            ],
        }
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
