"""Minimal SARIF 2.1.0 emission for CI code-scanning upload.

Emits one run with one rule descriptor per distinct code and one result
per diagnostic.  Suppressed findings (when included for auditing) carry a
SARIF ``suppressions`` entry with kind ``inSource``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

from ..diagnostics import Diagnostic

__all__ = ["to_sarif", "to_sarif_json"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(code: str, meta: Mapping[str, tuple[str, str]]) -> dict[str, Any]:
    name, summary = meta.get(code, (code, ""))
    return {
        "id": code,
        "name": name,
        "shortDescription": {"text": summary or name},
    }


def _result(
    diag: Diagnostic, rule_index: Mapping[str, int], *, suppressed: bool
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index[diag.code],
        "level": "error",
        "message": {"text": diag.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diag.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, diag.line)},
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def to_sarif(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: Iterable[Diagnostic] = (),
    rule_meta: Mapping[str, tuple[str, str]] | None = None,
    tool_version: str = "1.0.0",
) -> dict[str, Any]:
    """Build the SARIF log structure for one run."""
    meta = dict(rule_meta or {})
    suppressed = list(suppressed)
    codes = sorted({d.code for d in [*diagnostics, *suppressed]})
    rule_index = {code: i for i, code in enumerate(codes)}
    results = [
        _result(diag, rule_index, suppressed=False) for diag in sorted(diagnostics)
    ]
    results.extend(
        _result(diag, rule_index, suppressed=True) for diag in sorted(suppressed)
    )
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": tool_version,
                        "rules": [_rule_descriptor(code, meta) for code in codes],
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif_json(
    diagnostics: Sequence[Diagnostic],
    *,
    suppressed: Iterable[Diagnostic] = (),
    rule_meta: Mapping[str, tuple[str, str]] | None = None,
) -> str:
    """The SARIF log as pretty-printed JSON text."""
    return json.dumps(
        to_sarif(diagnostics, suppressed=suppressed, rule_meta=rule_meta), indent=2
    )
