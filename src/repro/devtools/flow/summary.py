"""Per-module AST summaries — the unit of the whole-program graph cache.

A :class:`ModuleSummary` is everything the flow analyzer needs to know
about one file, extracted in a single AST pass and serializable to JSON so
the graph cache (:mod:`repro.devtools.flow.cache`) can skip re-parsing
unchanged files.  Summaries are deliberately *syntactic*: name resolution
against the rest of the program happens later, in
:mod:`repro.devtools.flow.graph`, so a summary never goes stale when a
*different* module changes.

Notation used for recorded callee expressions:

* ``"f"`` / ``"pkg.mod.f"`` — plain dotted call;
* ``"C().m"`` — method call on a fresh instantiation
  (``ShortWindowSolver(cfg).solve(...)``);
* ``"self.m"`` / ``"cls.m"`` — method call on the enclosing class.

Lambdas become their own pseudo-functions (qualname
``owner.<lambda-L{line}>``), because worker-entry detection needs to treat
``parallel_map(lambda ...: ..., items)`` exactly like a named task
function.  Class-body code (dataclass ``default_factory`` lambdas and the
like) lands in a ``ClassName.<body>`` pseudo-function that the graph wires
to every instantiation of the class.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..diagnostics import SourceFile, Suppressions

__all__ = [
    "SUMMARY_VERSION",
    "AssignCall",
    "CallRecord",
    "ClassSummary",
    "FunctionSummary",
    "ImportRecord",
    "ModuleSummary",
    "MutationRecord",
    "RaiseRecord",
    "summarize_module",
]

#: Bump when the summary shape or extraction logic changes; cached entries
#: written under a different version are discarded wholesale.
SUMMARY_VERSION = 1

#: Method names whose call on a module-level object counts as a mutation.
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "put",
    "remove",
    "setdefault",
    "update",
}

#: Context-manager name fragments that count as "holding a lock".
_LOCKISH_FRAGMENTS = ("lock", "cond", "mutex", "sem")


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, with relative levels already made absolute."""

    module: str
    names: tuple[tuple[str, str], ...]
    """``(imported_name, local_binding)`` pairs; ``("*", "*")`` for a star
    import; empty for ``import a.b`` (which binds ``a``)."""
    line: int
    deferred: bool
    """Function-scoped or under ``if TYPE_CHECKING:`` — not part of the
    import-time dependency cycle."""
    is_from: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "names": [list(pair) for pair in self.names],
            "line": self.line,
            "deferred": self.deferred,
            "is_from": self.is_from,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ImportRecord":
        return cls(
            module=raw["module"],
            names=tuple((n, b) for n, b in raw["names"]),
            line=int(raw["line"]),
            deferred=bool(raw["deferred"]),
            is_from=bool(raw["is_from"]),
        )


@dataclass(frozen=True)
class CallRecord:
    """One call expression inside a function body."""

    callee: str
    line: int
    kwargs: tuple[str, ...]
    """Keyword names passed with a non-``None`` value."""
    none_kwargs: tuple[str, ...]
    """Keyword names passed as a literal ``None``."""
    pos_names: tuple[tuple[int, str], ...]
    """Positional arguments that are bare names (or names inside a
    list/tuple literal, recorded at the literal's position) — the
    higher-order-function hooks."""
    kw_names: tuple[tuple[str, str], ...]
    """``(keyword, bare_name_value)`` pairs."""
    str_kwargs: tuple[tuple[str, str], ...]
    """``(keyword, literal_string_value)`` pairs (e.g. ``mode="thread"``)."""
    lambda_args: tuple[str, ...]
    """Qualnames of lambda pseudo-functions passed as arguments."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "kwargs": list(self.kwargs),
            "none_kwargs": list(self.none_kwargs),
            "pos_names": [list(p) for p in self.pos_names],
            "kw_names": [list(p) for p in self.kw_names],
            "str_kwargs": [list(p) for p in self.str_kwargs],
            "lambda_args": list(self.lambda_args),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "CallRecord":
        return cls(
            callee=raw["callee"],
            line=int(raw["line"]),
            kwargs=tuple(raw["kwargs"]),
            none_kwargs=tuple(raw["none_kwargs"]),
            pos_names=tuple((int(i), n) for i, n in raw["pos_names"]),
            kw_names=tuple((k, n) for k, n in raw["kw_names"]),
            str_kwargs=tuple((k, v) for k, v in raw["str_kwargs"]),
            lambda_args=tuple(raw["lambda_args"]),
        )


@dataclass(frozen=True)
class AssignCall:
    """``target = callee(...)`` or ``with callee(...) as target`` — the
    one-step type inference the call-graph resolver runs on locals."""

    target: str
    callee: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "callee": self.callee, "line": self.line}

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "AssignCall":
        return cls(target=raw["target"], callee=raw["callee"], line=int(raw["line"]))


@dataclass(frozen=True)
class MutationRecord:
    """A write to a name that is not local to the enclosing function."""

    name: str
    line: int
    kind: str
    """``"rebind"`` (``global`` + assignment), ``"mutate"`` (mutating
    method / subscript store / augmented assignment), or ``"consume"``
    (``next()`` on a shared iterator)."""
    locked: bool
    """The write happens inside a ``with <something lock-like>:`` block."""
    is_global_decl: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "kind": self.kind,
            "locked": self.locked,
            "is_global_decl": self.is_global_decl,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "MutationRecord":
        return cls(
            name=raw["name"],
            line=int(raw["line"]),
            kind=raw["kind"],
            locked=bool(raw["locked"]),
            is_global_decl=bool(raw["is_global_decl"]),
        )


@dataclass(frozen=True)
class RaiseRecord:
    """One ``raise`` with a resolvable exception name (bare re-raise skipped)."""

    exc: str
    line: int

    def to_dict(self) -> dict[str, Any]:
        return {"exc": self.exc, "line": self.line}

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "RaiseRecord":
        return cls(exc=raw["exc"], line=int(raw["line"]))


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the flow rules need to know about one function body."""

    qualname: str
    line: int
    params: tuple[str, ...]
    optional_params: tuple[str, ...]
    """Parameters with a default value — the ones a call site can silently
    omit (required params are enforced by Python itself)."""
    calls: tuple[CallRecord, ...]
    assign_calls: tuple[AssignCall, ...]
    mutations: tuple[MutationRecord, ...]
    raises: tuple[RaiseRecord, ...]
    registry_return_classes: tuple[str, ...]
    """Class names instantiated inside dict-literal values in a function
    that returns — the ``_make_algorithms()`` registry-factory pattern."""
    registry_lookup_tables: tuple[str, ...]
    """Module-level dict names this function subscripts — the
    ``get_mm_algorithm`` registry-resolver pattern."""
    reads_budget: bool
    """Touches an existing budget: a ``*budget*`` parameter, a ``.budget``
    / ``.subbudget`` attribute read, or a ``current_budget()`` call."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "optional_params": list(self.optional_params),
            "calls": [c.to_dict() for c in self.calls],
            "assign_calls": [a.to_dict() for a in self.assign_calls],
            "mutations": [m.to_dict() for m in self.mutations],
            "raises": [r.to_dict() for r in self.raises],
            "registry_return_classes": list(self.registry_return_classes),
            "registry_lookup_tables": list(self.registry_lookup_tables),
            "reads_budget": self.reads_budget,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=raw["qualname"],
            line=int(raw["line"]),
            params=tuple(raw["params"]),
            optional_params=tuple(raw.get("optional_params", ())),
            calls=tuple(CallRecord.from_dict(c) for c in raw["calls"]),
            assign_calls=tuple(AssignCall.from_dict(a) for a in raw["assign_calls"]),
            mutations=tuple(MutationRecord.from_dict(m) for m in raw["mutations"]),
            raises=tuple(RaiseRecord.from_dict(r) for r in raw["raises"]),
            registry_return_classes=tuple(raw["registry_return_classes"]),
            registry_lookup_tables=tuple(raw["registry_lookup_tables"]),
            reads_budget=bool(raw["reads_budget"]),
        )


@dataclass(frozen=True)
class ClassSummary:
    """One class: bases for method lookup, callable attributes for the
    ``self.solve_fn(...)``-style dispatch the serve layer uses."""

    name: str
    line: int
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    attr_callables: tuple[tuple[str, str], ...]
    """``(attribute, dotted_default)`` for ``self.attr = param`` in
    ``__init__`` where ``param`` has a bare-name default, and for
    ``self.attr = some_function`` directly."""

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "attr_callables": [list(p) for p in self.attr_callables],
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ClassSummary":
        return cls(
            name=raw["name"],
            line=int(raw["line"]),
            bases=tuple(raw["bases"]),
            methods=tuple(raw["methods"]),
            attr_callables=tuple((a, d) for a, d in raw["attr_callables"]),
        )


@dataclass
class ModuleSummary:
    """The cacheable digest of one source file."""

    module: str
    path: str
    sha256: str
    imports: tuple[ImportRecord, ...] = ()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    module_level_names: tuple[str, ...] = ()
    registry_tables: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Module-level ``NAME = {"k": Class(), ...}`` dict-of-instances."""
    registry_factories: dict[str, str] = field(default_factory=dict)
    """Module-level ``NAME = factory()`` — resolved against the factory's
    ``registry_return_classes`` at graph-build time."""
    suppress_by_line: dict[int, tuple[str, ...]] = field(default_factory=dict)
    suppress_file: tuple[str, ...] = ()
    suppress_malformed: tuple[int, ...] = ()

    def suppressions(self) -> Suppressions:
        """Rehydrate the :class:`Suppressions` view (cache-safe)."""
        return Suppressions(
            by_line={line: set(codes) for line, codes in self.suppress_by_line.items()},
            file_wide=set(self.suppress_file),
            malformed=list(self.suppress_malformed),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "sha256": self.sha256,
            "imports": [i.to_dict() for i in self.imports],
            "functions": {q: f.to_dict() for q, f in sorted(self.functions.items())},
            "classes": {n: c.to_dict() for n, c in sorted(self.classes.items())},
            "module_level_names": list(self.module_level_names),
            "registry_tables": {
                n: list(v) for n, v in sorted(self.registry_tables.items())
            },
            "registry_factories": dict(sorted(self.registry_factories.items())),
            "suppress_by_line": {
                str(line): sorted(codes)
                for line, codes in sorted(self.suppress_by_line.items())
            },
            "suppress_file": sorted(self.suppress_file),
            "suppress_malformed": list(self.suppress_malformed),
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=raw["module"],
            path=raw["path"],
            sha256=raw["sha256"],
            imports=tuple(ImportRecord.from_dict(i) for i in raw["imports"]),
            functions={
                q: FunctionSummary.from_dict(f) for q, f in raw["functions"].items()
            },
            classes={n: ClassSummary.from_dict(c) for n, c in raw["classes"].items()},
            module_level_names=tuple(raw["module_level_names"]),
            registry_tables={
                n: tuple(v) for n, v in raw["registry_tables"].items()
            },
            registry_factories=dict(raw["registry_factories"]),
            suppress_by_line={
                int(line): tuple(codes)
                for line, codes in raw["suppress_by_line"].items()
            },
            suppress_file=tuple(raw["suppress_file"]),
            suppress_malformed=tuple(raw["suppress_malformed"]),
        )


def file_sha256(data: bytes) -> str:
    """Hex digest keying the graph cache."""
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _is_type_checking_test(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for Name/Attribute chains; ``C().m`` for call-result
    attribute access when the inner call target itself has a dotted name."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is None and isinstance(node.value, ast.Call):
            inner = _dotted(node.value.func)
            if inner is not None:
                return f"{inner}().{node.attr}"
            return None
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def _under_lock(node: ast.AST) -> bool:
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            for item in parent.items:
                expr = _dotted(item.context_expr)
                if expr is None and isinstance(item.context_expr, ast.Call):
                    expr = _dotted(item.context_expr.func)
                if expr is None:
                    continue
                tail = expr.split(".")[-1].split("(")[0].lower()
                if any(frag in tail for frag in _LOCKISH_FRAGMENTS):
                    return True
        parent = getattr(parent, "parent", None)
    return parent is not None


def _resolve_relative(module_name: str, is_package: bool, level: int, base: str) -> str:
    """Make a ``from ...x import y`` target absolute inside ``module_name``."""
    if level == 0:
        return base
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[: len(parts) - drop] if drop < len(parts) else []
    prefix = ".".join(parts)
    if base:
        return f"{prefix}.{base}" if prefix else base
    return prefix


class _Scope:
    """Accumulator for one function-like body."""

    def __init__(
        self,
        qualname: str,
        line: int,
        params: tuple[str, ...],
        optional_params: tuple[str, ...] = (),
    ) -> None:
        self.qualname = qualname
        self.line = line
        self.params = params
        self.optional_params = optional_params
        self.calls: list[CallRecord] = []
        self.assign_calls: list[AssignCall] = []
        self.mutations: list[MutationRecord] = []
        self.raises: list[RaiseRecord] = []
        self.registry_return_classes: list[str] = []
        self.registry_lookup_tables: list[str] = []
        self.reads_budget = any("budget" in p for p in self.params)
        self.globals: set[str] = set()
        self.locals: set[str] = set(self.params)

    def build(self) -> FunctionSummary:
        return FunctionSummary(
            qualname=self.qualname,
            line=self.line,
            params=self.params,
            optional_params=self.optional_params,
            calls=tuple(self.calls),
            assign_calls=tuple(self.assign_calls),
            mutations=tuple(self.mutations),
            raises=tuple(self.raises),
            registry_return_classes=tuple(dict.fromkeys(self.registry_return_classes)),
            registry_lookup_tables=tuple(dict.fromkeys(self.registry_lookup_tables)),
            reads_budget=self.reads_budget,
        )


def _param_names(args: ast.arguments) -> tuple[str, ...]:
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if args.vararg is not None:
        every.append(args.vararg)
    if args.kwarg is not None:
        every.append(args.kwarg)
    return tuple(a.arg for a in every)


def _optional_param_names(args: ast.arguments) -> tuple[str, ...]:
    """Parameters a call site may omit: defaulted, keyword-defaulted, **kw."""
    optional: list[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    if args.defaults:
        optional.extend(a.arg for a in positional[-len(args.defaults) :])
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            optional.append(arg.arg)
    if args.kwarg is not None:
        optional.append(args.kwarg.arg)
    return tuple(optional)


def _class_qualname(node: ast.AST) -> str | None:
    """Qualname prefix from enclosing class/function defs (outermost first)."""
    chain: list[str] = []
    parent = getattr(node, "parent", None)
    while parent is not None:
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            chain.append(parent.name)
        parent = getattr(parent, "parent", None)
    if not chain:
        return None
    return ".".join(reversed(chain))


def summarize_module(
    module_name: str,
    path: Path,
    *,
    text: str | None = None,
    is_package: bool | None = None,
) -> ModuleSummary:
    """One-pass extraction of a :class:`ModuleSummary` from source.

    Raises ``SyntaxError`` (and IO errors) like :meth:`SourceFile.parse`;
    the graph builder converts those into ISE000 diagnostics.
    """
    if text is None:
        text = path.read_text(encoding="utf-8")
    if is_package is None:
        is_package = path.name == "__init__.py"
    source = SourceFile.parse(path, text)
    sup = source.suppressions
    summary = ModuleSummary(
        module=module_name,
        path=str(path),
        sha256=file_sha256(text.encode("utf-8")),
        suppress_by_line={
            line: tuple(sorted(codes)) for line, codes in sup.by_line.items()
        },
        suppress_file=tuple(sorted(sup.file_wide)),
        suppress_malformed=tuple(sup.malformed),
    )

    _collect_imports(source.tree, module_name, is_package, summary)
    _collect_toplevel(source.tree, summary)
    _collect_scopes(source.tree, summary)
    return summary


def _collect_imports(
    tree: ast.Module, module_name: str, is_package: bool, summary: ModuleSummary
) -> None:
    records: list[ImportRecord] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        deferred = False
        parent = getattr(node, "parent", None)
        while parent is not None:
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                deferred = True
            if isinstance(parent, ast.If) and _is_type_checking_test(parent.test):
                deferred = True
            parent = getattr(parent, "parent", None)
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = alias.asname if alias.asname else alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                # `import a.b` binds `a` but creates a dependency on a.b.
                records.append(
                    ImportRecord(
                        module=alias.name,
                        names=((target, binding),),
                        line=node.lineno,
                        deferred=deferred,
                        is_from=False,
                    )
                )
        else:
            base = _resolve_relative(
                module_name, is_package, node.level, node.module or ""
            )
            names = tuple(
                (alias.name, alias.asname if alias.asname else alias.name)
                for alias in node.names
            )
            records.append(
                ImportRecord(
                    module=base,
                    names=names,
                    line=node.lineno,
                    deferred=deferred,
                    is_from=True,
                )
            )
    summary.imports = tuple(records)


def _registry_dict_classes(node: ast.Dict) -> list[str]:
    """Class-call names in a dict literal's values (``{"k": Cls()}``)."""
    out: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                out.append(name)
    return out


def _collect_toplevel(tree: ast.Module, summary: ModuleSummary) -> None:
    names: list[str] = []
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            names.append(target.id)
            if isinstance(value, ast.Dict):
                classes = _registry_dict_classes(value)
                if classes:
                    summary.registry_tables[target.id] = tuple(classes)
            elif isinstance(value, ast.Call):
                callee = _dotted(value.func)
                if callee is not None and "." not in callee:
                    summary.registry_factories[target.id] = callee
    summary.module_level_names = tuple(dict.fromkeys(names))


def _iter_scope_nodes(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, str]]:
    """Every function-like node with its flow qualname.

    Nested defs are ``outer.inner``; lambdas are ``owner.<lambda-LN>``;
    class-body lambdas fold into ``ClassName.<body>``.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            prefix = _class_qualname(node)
            qual = f"{prefix}.{node.name}" if prefix else node.name
            yield node, qual
        elif isinstance(node, ast.Lambda):
            prefix = _class_qualname(node)
            owner_is_class = False
            parent = getattr(node, "parent", None)
            while parent is not None:
                if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(parent, ast.ClassDef):
                    owner_is_class = True
                    break
                parent = getattr(parent, "parent", None)
            if owner_is_class:
                yield node, f"{prefix}.<body>"
            elif prefix:
                yield node, f"{prefix}.<lambda-L{node.lineno}>"
            else:
                yield node, f"<lambda-L{node.lineno}>"


def _owning_scope(
    node: ast.AST, scope_of: dict[int, str]
) -> str | None:
    parent = getattr(node, "parent", None)
    while parent is not None:
        qual = scope_of.get(id(parent))
        if qual is not None:
            return qual
        parent = getattr(parent, "parent", None)
    return None


def _record_call(scope: _Scope, node: ast.Call, scope_of: dict[int, str]) -> None:
    callee = _dotted(node.func)
    if callee is None:
        return
    kwargs: list[str] = []
    none_kwargs: list[str] = []
    kw_names: list[tuple[str, str]] = []
    str_kwargs: list[tuple[str, str]] = []
    pos_names: list[tuple[int, str]] = []
    lambda_args: list[str] = []
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Name):
            pos_names.append((index, arg.id))
        elif isinstance(arg, (ast.List, ast.Tuple)):
            for element in arg.elts:
                if isinstance(element, ast.Name):
                    pos_names.append((index, element.id))
        elif isinstance(arg, ast.Lambda):
            qual = scope_of.get(id(arg))
            if qual is not None:
                lambda_args.append(qual)
    for keyword in node.keywords:
        if keyword.arg is None:
            continue
        if isinstance(keyword.value, ast.Constant) and keyword.value.value is None:
            none_kwargs.append(keyword.arg)
            continue
        kwargs.append(keyword.arg)
        if isinstance(keyword.value, ast.Name):
            kw_names.append((keyword.arg, keyword.value.id))
        elif isinstance(keyword.value, ast.Constant) and isinstance(
            keyword.value.value, str
        ):
            str_kwargs.append((keyword.arg, keyword.value.value))
        elif isinstance(keyword.value, ast.Lambda):
            qual = scope_of.get(id(keyword.value))
            if qual is not None:
                lambda_args.append(qual)
    scope.calls.append(
        CallRecord(
            callee=callee,
            line=node.lineno,
            kwargs=tuple(kwargs),
            none_kwargs=tuple(none_kwargs),
            pos_names=tuple(pos_names),
            kw_names=tuple(kw_names),
            str_kwargs=tuple(str_kwargs),
            lambda_args=tuple(lambda_args),
        )
    )
    if callee.split(".")[-1] in ("current_budget", "subbudget"):
        scope.reads_budget = True
    if callee == "next":
        for _, name in pos_names[:1]:
            if name not in scope.locals:
                scope.mutations.append(
                    MutationRecord(
                        name=name,
                        line=node.lineno,
                        kind="consume",
                        locked=_under_lock(node),
                        is_global_decl=name in scope.globals,
                    )
                )
    head, _, attr = callee.rpartition(".")
    if head and attr in _MUTATOR_METHODS and "." not in head and "(" not in head:
        if head not in scope.locals:
            scope.mutations.append(
                MutationRecord(
                    name=head,
                    line=node.lineno,
                    kind="mutate",
                    locked=_under_lock(node),
                    is_global_decl=head in scope.globals,
                )
            )


def _collect_scopes(tree: ast.Module, summary: ModuleSummary) -> None:
    scope_nodes = list(_iter_scope_nodes(tree))
    scope_of = {id(node): qual for node, qual in scope_nodes}

    scopes: dict[str, _Scope] = {}
    for node, qual in scope_nodes:
        if qual in scopes:  # class-body lambdas share one <body> scope
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes[qual] = _Scope(
                qual,
                node.lineno,
                _param_names(node.args),
                _optional_param_names(node.args),
            )
        else:
            scopes[qual] = _Scope(
                qual,
                node.lineno,
                _param_names(node.args),
                _optional_param_names(node.args),
            )

    # First pass: locals / global declarations per scope (shadowing filter).
    for node in ast.walk(tree):
        owner = _owning_scope(node, scope_of)
        if owner is None or owner not in scopes:
            continue
        scope = scopes[owner]
        if isinstance(node, ast.Global):
            scope.globals.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        scope.locals.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    scope.locals.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            scope.locals.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    scope.locals.add(sub.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scope.locals.add(node.name)
    for scope in scopes.values():
        scope.locals -= scope.globals

    # Second pass: calls, assignments, mutations, raises, registry shapes.
    for node in ast.walk(tree):
        owner = _owning_scope(node, scope_of)
        if owner is None or owner not in scopes:
            continue
        scope = scopes[owner]
        if isinstance(node, ast.Call):
            _record_call(scope, node, scope_of)
        elif isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = _dotted(node.value.func)
                if callee is not None:
                    scope.assign_calls.append(
                        AssignCall(
                            target=node.targets[0].id,
                            callee=callee,
                            line=node.lineno,
                        )
                    )
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in scope.globals:
                    scope.mutations.append(
                        MutationRecord(
                            name=target.id,
                            line=node.lineno,
                            kind="rebind",
                            locked=_under_lock(node),
                            is_global_decl=True,
                        )
                    )
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name not in scope.locals:
                        scope.mutations.append(
                            MutationRecord(
                                name=name,
                                line=node.lineno,
                                kind="mutate",
                                locked=_under_lock(node),
                                is_global_decl=name in scope.globals,
                            )
                        )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id in scope.globals:
                scope.mutations.append(
                    MutationRecord(
                        name=target.id,
                        line=node.lineno,
                        kind="rebind",
                        locked=_under_lock(node),
                        is_global_decl=True,
                    )
                )
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name not in scope.locals:
                    scope.mutations.append(
                        MutationRecord(
                            name=name,
                            line=node.lineno,
                            kind="mutate",
                            locked=_under_lock(node),
                            is_global_decl=name in scope.globals,
                        )
                    )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    callee = _dotted(item.context_expr.func)
                    if callee is not None:
                        scope.assign_calls.append(
                            AssignCall(
                                target=item.optional_vars.id,
                                callee=callee,
                                line=node.lineno,
                            )
                        )
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = _dotted(exc)
            if name is not None:
                scope.raises.append(RaiseRecord(exc=name, line=node.lineno))
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if node.attr in ("budget", "subbudget"):
                scope.reads_budget = True
        elif isinstance(node, ast.Dict):
            classes = _registry_dict_classes(node)
            scope.registry_return_classes.extend(classes)
        elif isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.value.id not in scope.locals:
                scope.registry_lookup_tables.append(node.value.id)

    # Classes: bases, methods, callable attributes.
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        prefix = _class_qualname(node)
        qual = f"{prefix}.{node.name}" if prefix else node.name
        bases = tuple(
            name for name in (_dotted(b) for b in node.bases) if name is not None
        )
        methods = tuple(
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        attr_callables = _collect_attr_callables(node)
        summary.classes[qual] = ClassSummary(
            name=qual,
            line=node.lineno,
            bases=bases,
            methods=methods,
            attr_callables=attr_callables,
        )

    summary.functions = {qual: scope.build() for qual, scope in scopes.items()}


def _collect_attr_callables(node: ast.ClassDef) -> tuple[tuple[str, str], ...]:
    """``self.attr = <callable>`` bindings visible from ``__init__``."""
    out: list[tuple[str, str]] = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults_map: dict[str, str] = {}
        args = item.args
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(
            positional[len(positional) - len(args.defaults) :], args.defaults
        ):
            name = _dotted(default)
            if name is not None:
                defaults_map[arg.arg] = name
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is None:
                continue
            name = _dotted(kw_default)
            if name is not None:
                defaults_map[arg.arg] = name
        for stmt in ast.walk(item):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value_name = _dotted(stmt.value)
            if value_name is None:
                continue
            if value_name in defaults_map:
                out.append((target.attr, defaults_map[value_name]))
            elif "." not in value_name:
                out.append((target.attr, value_name))
    return tuple(dict.fromkeys(out))
