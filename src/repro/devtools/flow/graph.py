"""Whole-program import + approximate call graph over one package.

Built from per-module :class:`~repro.devtools.flow.summary.ModuleSummary`
records (cached by file hash), so a warm build re-parses only changed
files.  Resolution is module-level name resolution plus a few deliberate
extensions that the repository's architecture makes reliable:

* instantiate-then-call (``ExactMM(...).solve(...)``) and one-step local
  typing (``algo = get_mm_algorithm(spec); algo.solve(...)``);
* registry fan-out: a call through an explicit registry table
  (``MM_ALGORITHMS``-style dict of instances) targets every registered
  class's method;
* ``self.attr(...)`` where ``__init__`` bound ``attr`` from a parameter
  with a function default (the serve layer's ``solve_fn`` injection);
* higher-order "ref" edges for functions passed as arguments, which is
  how ``parallel_map`` worker entry points are discovered.

Function identity is ``"module:qualname"`` (e.g.
``repro.core.solver:ISESolver.solve``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from .summary import (
    CallRecord,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    file_sha256,
    summarize_module,
)

__all__ = [
    "CallEdge",
    "ImportEdge",
    "ProgramGraph",
    "WorkerEntry",
    "build_graph",
    "discover_modules",
]

_POOL_CLASSES = {
    "concurrent.futures.ProcessPoolExecutor": "process",
    "concurrent.futures.process.ProcessPoolExecutor": "process",
    "concurrent.futures.ThreadPoolExecutor": "thread",
    "concurrent.futures.thread.ThreadPoolExecutor": "thread",
}

_THREAD_CLASSES = {"threading.Thread", "threading.Timer"}


@dataclass(frozen=True)
class ImportEdge:
    """``src`` imports ``dst`` at ``line`` (both in-program modules)."""

    src: str
    dst: str
    line: int
    deferred: bool


@dataclass(frozen=True)
class CallEdge:
    """``caller`` may invoke ``target``.

    ``kind`` is ``"call"`` for a direct call expression and ``"ref"`` for
    a function passed as a value (higher-order / callback edge).
    ``budgeted`` marks call sites that visibly forward a budget
    (``budget=`` / ``resilience=`` keyword with a non-None value).
    """

    caller: str
    target: str
    line: int
    kind: str
    budgeted: bool = False


@dataclass(frozen=True)
class WorkerEntry:
    """A function handed to a pool: runs on worker threads/processes."""

    fqid: str
    kind: str
    """``"thread"`` or ``"process"`` (``"process"`` when the dispatch mode
    is dynamic — auto resolves to process)."""
    site_module: str
    line: int


@dataclass
class ProgramGraph:
    """The resolved whole-program view handed to every flow rule."""

    package: str
    root: Path
    summaries: dict[str, ModuleSummary] = field(default_factory=dict)
    parse_failures: list[tuple[str, int, str]] = field(default_factory=list)
    """``(path, line, message)`` for files that failed to parse."""
    import_edges: list[ImportEdge] = field(default_factory=list)
    call_edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    reverse_edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    worker_entries: list[WorkerEntry] = field(default_factory=list)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    registries: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """``module:NAME`` registry table -> class fqids it holds."""
    symbols: dict[str, dict[str, str]] = field(default_factory=dict)
    """module -> local binding -> absolute dotted target."""

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def module_of(self, fqid: str) -> str:
        return fqid.partition(":")[0]

    def path_of(self, module: str) -> str:
        summary = self.summaries.get(module)
        return summary.path if summary is not None else module

    def function(self, fqid: str) -> FunctionSummary | None:
        return self.functions.get(fqid)

    def out_edges(self, fqid: str) -> list[CallEdge]:
        return self.call_edges.get(fqid, [])

    def in_edges(self, fqid: str) -> list[CallEdge]:
        return self.reverse_edges.get(fqid, [])

    def reachable(
        self,
        starts: Iterable[str],
        *,
        include_refs: bool = True,
        reverse: bool = False,
        stop: "set[str] | None" = None,
    ) -> dict[str, tuple[str, int] | None]:
        """BFS over call edges; maps each reached fqid to its BFS parent
        ``(predecessor, line)`` (None for the start nodes), which is what
        rule messages use to reconstruct the offending chain."""
        parents: dict[str, tuple[str, int] | None] = {}
        queue: deque[str] = deque()
        for start in starts:
            if start not in parents:
                parents[start] = None
                queue.append(start)
        while queue:
            current = queue.popleft()
            if stop is not None and current in stop:
                continue
            edges = self.in_edges(current) if reverse else self.out_edges(current)
            for edge in edges:
                if not include_refs and edge.kind == "ref":
                    continue
                nxt = edge.caller if reverse else edge.target
                if nxt in parents:
                    continue
                parents[nxt] = (current, edge.line)
                queue.append(nxt)
        return parents

    def chain(
        self, parents: Mapping[str, tuple[str, int] | None], target: str
    ) -> list[str]:
        """Start-to-target fqid path out of a :meth:`reachable` parent map."""
        path = [target]
        seen = {target}
        current: str | None = target
        while current is not None:
            step = parents.get(current)
            if step is None:
                break
            current = step[0]
            if current in seen:
                break
            seen.add(current)
            path.append(current)
        path.reverse()
        return path


def discover_modules(root: Path, package: str) -> Iterator[tuple[str, Path]]:
    """``(module_name, path)`` for every ``*.py`` under ``root``."""
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root)
        parts = list(relative.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        name = ".".join([package, *parts]) if parts else package
        yield name, path


def build_graph(
    root: Path,
    *,
    package: str | None = None,
    cached: Mapping[str, ModuleSummary] | None = None,
) -> ProgramGraph:
    """Summarize every module under ``root`` and resolve the graphs.

    ``cached`` maps module names to previously computed summaries; entries
    whose ``sha256`` still matches the on-disk file are reused without
    re-parsing.
    """
    package_name = package if package is not None else root.name
    graph = ProgramGraph(package=package_name, root=root)
    for module_name, path in discover_modules(root, package_name):
        try:
            data = path.read_bytes()
        except OSError as exc:
            graph.parse_failures.append((str(path), 1, f"could not read: {exc}"))
            continue
        sha = file_sha256(data)
        previous = cached.get(module_name) if cached is not None else None
        if previous is not None and previous.sha256 == sha:
            summary = previous
            if summary.path != str(path):
                summary = ModuleSummary.from_dict(
                    {**previous.to_dict(), "path": str(path)}
                )
        else:
            try:
                summary = summarize_module(
                    module_name,
                    path,
                    text=data.decode("utf-8"),
                    is_package=path.name == "__init__.py",
                )
            except SyntaxError as exc:
                graph.parse_failures.append(
                    (str(path), exc.lineno or 1, f"could not parse: {exc.msg}")
                )
                continue
            except UnicodeDecodeError as exc:
                graph.parse_failures.append((str(path), 1, f"could not decode: {exc}"))
                continue
        graph.summaries[module_name] = summary

    _build_symbols(graph)
    _build_import_edges(graph)
    _index_definitions(graph)
    _build_registries(graph)
    _build_call_edges(graph)
    _find_worker_entries(graph)
    return graph


# ---------------------------------------------------------------------------
# build passes
# ---------------------------------------------------------------------------


def _build_symbols(graph: ProgramGraph) -> None:
    modules = graph.summaries
    for name, summary in modules.items():
        table: dict[str, str] = {}
        for record in summary.imports:
            if not record.is_from:
                for target, binding in record.names:
                    table[binding] = target
                continue
            base = record.module
            for imported, binding in record.names:
                if imported == "*":
                    star_target = modules.get(base)
                    if star_target is not None:
                        for fn in star_target.functions:
                            if "." not in fn:
                                table.setdefault(fn, f"{base}.{fn}")
                        for cls in star_target.classes:
                            if "." not in cls:
                                table.setdefault(cls, f"{base}.{cls}")
                    continue
                table[binding] = f"{base}.{imported}" if base else imported
        graph.symbols[name] = table


def _build_import_edges(graph: ProgramGraph) -> None:
    modules = graph.summaries
    for name, summary in modules.items():
        seen: set[tuple[str, bool]] = set()
        for record in summary.imports:
            targets: list[str] = []
            if record.is_from:
                base = record.module
                if base in modules:
                    for imported, _ in record.names:
                        sub = f"{base}.{imported}"
                        targets.append(sub if sub in modules else base)
                else:
                    # `from repro.core import x` where repro.core itself is
                    # not summarized (outside the root) — skip.
                    prefix = _longest_module_prefix(modules, base)
                    if prefix is not None:
                        targets.append(prefix)
            else:
                prefix = _longest_module_prefix(modules, record.module)
                if prefix is not None:
                    targets.append(prefix)
            for target in targets:
                if target == name:
                    continue
                key = (target, record.deferred)
                if key in seen:
                    continue
                seen.add(key)
                graph.import_edges.append(
                    ImportEdge(
                        src=name,
                        dst=target,
                        line=record.line,
                        deferred=record.deferred,
                    )
                )


def _longest_module_prefix(
    modules: Mapping[str, ModuleSummary], dotted: str
) -> str | None:
    parts = dotted.split(".")
    for length in range(len(parts), 0, -1):
        candidate = ".".join(parts[:length])
        if candidate in modules:
            return candidate
    return None


def _index_definitions(graph: ProgramGraph) -> None:
    for name, summary in graph.summaries.items():
        for qual, fn in summary.functions.items():
            graph.functions[f"{name}:{qual}"] = fn
        for qual, cls in summary.classes.items():
            graph.classes[f"{name}:{qual}"] = cls


def _build_registries(graph: ProgramGraph) -> None:
    for name, summary in graph.summaries.items():
        tables: dict[str, tuple[str, ...]] = {}
        for table, class_names in summary.registry_tables.items():
            tables[table] = class_names
        for table, factory in summary.registry_factories.items():
            fn = summary.functions.get(factory)
            if fn is not None and fn.registry_return_classes:
                tables.setdefault(table, fn.registry_return_classes)
        for table, class_names in tables.items():
            resolved: list[str] = []
            for cls_name in class_names:
                hit = _resolve_name(graph, name, cls_name)
                if hit is not None and hit[0] == "class":
                    resolved.append(hit[1])
            if resolved:
                graph.registries[f"{name}:{table}"] = tuple(dict.fromkeys(resolved))


def _resolve_name(
    graph: ProgramGraph, module: str, dotted: str
) -> tuple[str, str] | None:
    """Resolve a dotted name as seen from ``module``.

    Returns ``("func", fqid)``, ``("class", fqid)``, ``("registry",
    regid)``, or ``("external", absolute_dotted)``; None when the head is
    an unknown bare name (a local, a builtin, a parameter).
    """
    parts = dotted.split(".")
    head, rest = parts[0], parts[1:]
    summary = graph.summaries.get(module)
    if summary is None:
        return None

    if head in summary.classes:
        return _resolve_in_module(graph, module, [head, *rest])
    if head in summary.functions and not rest:
        return ("func", f"{module}:{head}")
    if head in summary.functions and rest:
        # nested def: outer.inner
        return _resolve_in_module(graph, module, [head, *rest])
    if f"{module}:{head}" in graph.registries:
        return ("registry", f"{module}:{head}")

    table = graph.symbols.get(module, {})
    if head in table:
        absolute = table[head] + ("." + ".".join(rest) if rest else "")
        return _resolve_absolute(graph, absolute)
    return None


def _resolve_absolute(graph: ProgramGraph, dotted: str) -> tuple[str, str] | None:
    target_module = _longest_module_prefix(graph.summaries, dotted)
    if target_module is None:
        return ("external", dotted)
    remainder = dotted[len(target_module) :].lstrip(".")
    if not remainder:
        return ("external", dotted)  # a module object, not a callable
    return _resolve_in_module(graph, target_module, remainder.split("."))


def _resolve_in_module(
    graph: ProgramGraph, module: str, parts: list[str]
) -> tuple[str, str] | None:
    summary = graph.summaries.get(module)
    if summary is None:
        return None
    name = parts[0]
    rest = parts[1:]
    if name in summary.classes:
        if not rest:
            return ("class", f"{module}:{name}")
        method = _lookup_method(graph, f"{module}:{name}", ".".join(rest))
        if method is not None:
            return ("func", method)
        return ("external", f"{module}.{'.'.join(parts)}")
    qual = ".".join(parts)
    if qual in summary.functions:
        return ("func", f"{module}:{qual}")
    if name in summary.functions:
        return ("func", f"{module}:{name}")
    if f"{module}:{name}" in graph.registries:
        return ("registry", f"{module}:{name}")
    return ("external", f"{module}.{qual}")


def _lookup_method(graph: ProgramGraph, class_fqid: str, method: str) -> str | None:
    """Find ``method`` on a class or its (resolvable) bases."""
    seen: set[str] = set()
    stack = [class_fqid]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        cls = graph.classes.get(current)
        if cls is None:
            continue
        module = current.partition(":")[0]
        candidate = f"{module}:{cls.name}.{method}"
        if candidate in graph.functions:
            return candidate
        for base in cls.bases:
            hit = _resolve_name(graph, module, base)
            if hit is not None and hit[0] == "class":
                stack.append(hit[1])
    return None


def _class_targets(graph: ProgramGraph, class_fqid: str) -> list[str]:
    """Call targets of instantiating a class: __init__ and class-body code."""
    out: list[str] = []
    module, _, qual = class_fqid.partition(":")
    for suffix in ("__init__", "__post_init__", "<body>"):
        candidate = f"{module}:{qual}.{suffix}"
        if candidate in graph.functions:
            out.append(candidate)
    return out


def _callable_targets(
    graph: ProgramGraph, resolution: tuple[str, str] | None, *, method: str | None = None
) -> list[str]:
    """Concrete function fqids for a resolution (fanning out registries)."""
    if resolution is None:
        return []
    kind, ident = resolution
    if kind == "func":
        return [ident]
    if kind == "class":
        if method is None:
            return _class_targets(graph, ident)
        hit = _lookup_method(graph, ident, method)
        return [hit] if hit is not None else []
    if kind == "registry":
        out: list[str] = []
        for cls in graph.registries.get(ident, ()):
            if method is None:
                out.extend(_class_targets(graph, cls))
            else:
                hit = _lookup_method(graph, cls, method)
                if hit is not None:
                    out.append(hit)
        return out
    return []


def _local_env(
    graph: ProgramGraph, module: str, fn: FunctionSummary
) -> dict[str, tuple[str, str]]:
    """One-step local type environment: var -> ("class"/"registry", ident)."""
    env: dict[str, tuple[str, str]] = {}
    for assign in fn.assign_calls:
        callee = assign.callee
        if "()." in callee:
            continue
        hit = _resolve_name(graph, module, callee)
        if hit is None:
            continue
        kind, ident = hit
        if kind == "class":
            env[assign.target] = ("class", ident)
        elif kind == "external" and ident in _POOL_CLASSES:
            env[assign.target] = ("pool", _POOL_CLASSES[ident])
        elif kind == "func":
            target_fn = graph.functions.get(ident)
            if target_fn is not None and target_fn.registry_lookup_tables:
                target_module = ident.partition(":")[0]
                for table in target_fn.registry_lookup_tables:
                    regid = f"{target_module}:{table}"
                    if regid in graph.registries:
                        env[assign.target] = ("registry", regid)
                        break
    return env


def _owner_class(graph: ProgramGraph, module: str, qualname: str) -> str | None:
    """Enclosing class fqid of a method-like qualname, if any."""
    parts = qualname.split(".")
    for length in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:length])
        if f"{module}:{candidate}" in graph.classes:
            return f"{module}:{candidate}"
    return None


def _is_budgeted_call(call: CallRecord) -> bool:
    return "budget" in call.kwargs or "resilience" in call.kwargs


def _resolve_call_targets(
    graph: ProgramGraph,
    module: str,
    fn: FunctionSummary,
    call: CallRecord,
    env: Mapping[str, tuple[str, str]],
) -> list[str]:
    callee = call.callee
    if "()." in callee:
        ctor, _, method = callee.partition("().")
        hit = _resolve_name(graph, module, ctor)
        targets = _callable_targets(graph, hit, method=method)
        if hit is not None and hit[0] == "class":
            targets.extend(_class_targets(graph, hit[1]))
        return targets

    parts = callee.split(".")
    head = parts[0]
    if head in ("self", "cls") and len(parts) > 1:
        owner = _owner_class(graph, module, fn.qualname)
        if owner is None:
            return []
        method = ".".join(parts[1:])
        hit = _lookup_method(graph, owner, method)
        if hit is not None:
            return [hit]
        cls = graph.classes.get(owner)
        if cls is not None and len(parts) == 2:
            for attr, target_name in cls.attr_callables:
                if attr == parts[1]:
                    resolution = _resolve_name(graph, module, target_name)
                    return _callable_targets(graph, resolution)
        return []

    if head in env and len(parts) > 1:
        kind, ident = env[head]
        if kind == "class":
            hit = _lookup_method(graph, ident, ".".join(parts[1:]))
            return [hit] if hit is not None else []
        if kind == "registry":
            return _callable_targets(
                graph, ("registry", ident), method=".".join(parts[1:])
            )
        return []

    # nested defs are visible under the enclosing function's qualname
    if len(parts) == 1:
        nested = f"{module}:{fn.qualname}.{head}"
        if nested in graph.functions:
            return [nested]
        enclosing = fn.qualname.rpartition(".")[0]
        while enclosing:
            sibling = f"{module}:{enclosing}.{head}"
            if sibling in graph.functions:
                return [sibling]
            enclosing = enclosing.rpartition(".")[0]

    resolution = _resolve_name(graph, module, callee)
    return _callable_targets(graph, resolution)


def _resolve_ref_name(
    graph: ProgramGraph,
    module: str,
    fn: FunctionSummary,
    name: str,
) -> list[str]:
    """Resolve a bare name passed as a value to function targets."""
    nested = f"{module}:{fn.qualname}.{name}"
    if nested in graph.functions:
        return [nested]
    enclosing = fn.qualname.rpartition(".")[0]
    while enclosing:
        sibling = f"{module}:{enclosing}.{name}"
        if sibling in graph.functions:
            return [sibling]
        enclosing = enclosing.rpartition(".")[0]
    resolution = _resolve_name(graph, module, name)
    return _callable_targets(graph, resolution)


def _build_call_edges(graph: ProgramGraph) -> None:
    for module, summary in graph.summaries.items():
        for qual, fn in summary.functions.items():
            caller = f"{module}:{qual}"
            edges: list[CallEdge] = []
            env = _local_env(graph, module, fn)
            for call in fn.calls:
                budgeted = _is_budgeted_call(call)
                for target in _resolve_call_targets(graph, module, fn, call, env):
                    edges.append(
                        CallEdge(
                            caller=caller,
                            target=target,
                            line=call.line,
                            kind="call",
                            budgeted=budgeted,
                        )
                    )
                ref_names = [name for _, name in call.pos_names]
                ref_names.extend(name for _, name in call.kw_names)
                for name in ref_names:
                    for target in _resolve_ref_name(graph, module, fn, name):
                        edges.append(
                            CallEdge(
                                caller=caller,
                                target=target,
                                line=call.line,
                                kind="ref",
                                budgeted=budgeted,
                            )
                        )
                for lam in call.lambda_args:
                    target = f"{module}:{lam}"
                    if target in graph.functions:
                        edges.append(
                            CallEdge(
                                caller=caller,
                                target=target,
                                line=call.line,
                                kind="ref",
                                budgeted=budgeted,
                            )
                        )
            # a lambda defined in a function is conservatively assumed to run
            if "." in qual:
                parent_qual = qual.rpartition(".")[0]
                parent = f"{module}:{parent_qual}"
                if qual.endswith(">") and parent in graph.functions:
                    edges.append(
                        CallEdge(
                            caller=parent,
                            target=caller,
                            line=fn.line,
                            kind="ref",
                        )
                    )
            for edge in edges:
                graph.call_edges.setdefault(edge.caller, []).append(edge)
                graph.reverse_edges.setdefault(edge.target, []).append(edge)


def _worker_kind_for_mode(call: CallRecord) -> str | None:
    mode = dict(call.str_kwargs).get("mode")
    if mode == "serial":
        return None
    if mode == "thread":
        return "thread"
    return "process"


def _find_worker_entries(graph: ProgramGraph) -> None:
    parallel_map_fqid = f"{graph.package}.core.parallel:parallel_map"
    entries: list[WorkerEntry] = []
    for module, summary in graph.summaries.items():
        for qual, fn in summary.functions.items():
            env = _local_env(graph, module, fn)
            for call in fn.calls:
                kind: str | None = None
                is_dispatch = False
                targets = _resolve_call_targets(graph, module, fn, call, env)
                if parallel_map_fqid in targets:
                    is_dispatch = True
                    kind = _worker_kind_for_mode(call)
                else:
                    head, _, attr = call.callee.rpartition(".")
                    if attr == "submit" and head in env and env[head][0] == "pool":
                        is_dispatch = True
                        kind = env[head][1]
                    else:
                        resolution = _resolve_name(graph, module, call.callee)
                        if (
                            resolution is not None
                            and resolution[0] == "external"
                            and resolution[1] in _THREAD_CLASSES
                        ):
                            is_dispatch = True
                            kind = "thread"
                if not is_dispatch or kind is None:
                    continue
                task_names = [name for _, name in call.pos_names]
                task_names.extend(name for _, name in call.kw_names)
                task_fqids: list[str] = []
                for name in task_names:
                    task_fqids.extend(_resolve_ref_name(graph, module, fn, name))
                for lam in call.lambda_args:
                    candidate = f"{module}:{lam}"
                    if candidate in graph.functions:
                        task_fqids.append(candidate)
                for fqid in dict.fromkeys(task_fqids):
                    entries.append(
                        WorkerEntry(
                            fqid=fqid,
                            kind=kind,
                            site_module=module,
                            line=call.line,
                        )
                    )
    graph.worker_entries = entries
