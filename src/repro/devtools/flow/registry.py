"""Registry of whole-program (ISE100+) flow rules.

Flow rules are deliberately a *separate* registry from the per-file rules
in :mod:`repro.devtools.rules`: a flow rule sees the whole
:class:`~repro.devtools.flow.graph.ProgramGraph` plus the layer
configuration, not a single file, so it cannot run in the per-file
pipeline (and the per-file registry's completeness tests would
mis-classify it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..diagnostics import Diagnostic
from .config import FlowConfig
from .graph import ProgramGraph

__all__ = [
    "FLOW_RULES",
    "FlowRule",
    "get_flow_rule",
    "iter_flow_rules",
    "register_flow",
]

CheckFn = Callable[[ProgramGraph, FlowConfig], Iterator[Diagnostic]]


@dataclass(frozen=True)
class FlowRule:
    """One registered whole-program rule."""

    code: str
    name: str
    summary: str
    check: CheckFn

    def run(self, graph: ProgramGraph, config: FlowConfig) -> Iterator[Diagnostic]:
        return self.check(graph, config)


FLOW_RULES: dict[str, FlowRule] = {}


def register_flow(
    code: str, name: str, summary: str
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering a flow rule under ``code`` (ISE1xx)."""

    def wrap(fn: CheckFn) -> CheckFn:
        if code in FLOW_RULES:
            raise ValueError(f"duplicate flow rule code {code}")
        FLOW_RULES[code] = FlowRule(code=code, name=name, summary=summary, check=fn)
        return fn

    return wrap


def get_flow_rule(code: str) -> FlowRule:
    """Look up a registered flow rule; ``KeyError`` on unknown codes."""
    try:
        return FLOW_RULES[code]
    except KeyError:
        known = ", ".join(sorted(FLOW_RULES))
        raise KeyError(f"unknown flow rule {code!r}; registered: {known}") from None


def iter_flow_rules() -> Iterator[FlowRule]:
    """All registered flow rules in code order."""
    for code in sorted(FLOW_RULES):
        yield FLOW_RULES[code]
