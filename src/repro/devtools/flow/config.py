"""Flow-analysis configuration: the layer DAG and rule parameters.

The canonical source is ``pyproject.toml``::

    [tool.repro-lint.layers]
    foundation = { members = ["repro.core", "repro.core.*"], allow = [] }
    lp         = { members = ["repro.lp", "repro.lp.*"], allow = ["foundation"] }
    ...

    [tool.repro-lint.flow]
    forbid = [["foundation", "serve"], ...]
    entrypoints = ["repro.core.solver:solve_ise", ...]
    concurrent_roots = ["repro.serve.*"]
    pool_sanctioned = ["repro.core.parallel"]

Member patterns are ``fnmatch`` globs over dotted module names; when a
module matches several layers the **most specific** pattern wins (exact
name beats glob; longer literal prefix beats shorter), which is how
``repro.core.solver`` lives in the ``solver`` layer while the rest of
``repro.core.*`` stays in ``foundation``.

``allow`` lists are closed transitively: a layer may import itself, its
allowed layers, and everything *they* allow.  ``forbid`` pairs add
reachability checks on top of the DAG (used to keep ``devtools`` fully
isolated even through intermediaries).

Parsing uses :mod:`tomllib` when available (Python 3.11+); on 3.10 the
loader falls back to :func:`FlowConfig.default`, which mirrors the
committed repository configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["FlowConfig", "FlowConfigError", "LayerSpec"]


class FlowConfigError(ValueError):
    """Malformed ``[tool.repro-lint.*]`` configuration."""


@dataclass(frozen=True)
class LayerSpec:
    """One architecture layer: its member modules and import allowance."""

    name: str
    members: tuple[str, ...]
    allow: tuple[str, ...]


def _pattern_specificity(pattern: str) -> tuple[int, int]:
    """Sort key: exact patterns beat globs, longer literal prefixes win."""
    literal = pattern.split("*")[0].split("?")[0]
    is_exact = "*" not in pattern and "?" not in pattern
    return (1 if is_exact else 0, len(literal))


@dataclass(frozen=True)
class FlowConfig:
    """Everything the ISE100+ rules are parameterized on."""

    layers: tuple[LayerSpec, ...]
    forbid: tuple[tuple[str, str], ...] = ()
    entrypoints: tuple[str, ...] = ()
    extra_budget_sinks: tuple[str, ...] = ()
    concurrent_roots: tuple[str, ...] = ()
    pool_sanctioned: tuple[str, ...] = ()
    budget_class: str = "repro.core.resilience.SolveBudget"
    budget_module: str = "repro.core.resilience"

    def layer_of(self, module: str) -> str | None:
        """Most-specific layer containing ``module`` (None = uncovered)."""
        best: tuple[tuple[int, int], str] | None = None
        for layer in self.layers:
            for pattern in layer.members:
                if module == pattern or fnmatchcase(module, pattern):
                    key = _pattern_specificity(pattern)
                    if best is None or key > best[0]:
                        best = (key, layer.name)
        return None if best is None else best[1]

    def allowed_layers(self, layer: str) -> frozenset[str]:
        """Transitive closure of ``allow`` (always contains ``layer``)."""
        by_name = {spec.name: spec for spec in self.layers}
        seen = {layer}
        stack = [layer]
        while stack:
            current = by_name.get(stack.pop())
            if current is None:
                continue
            for nxt in current.allow:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return frozenset(seen)

    def validate(self) -> None:
        """Reject unknown layer references and cycles in ``allow``."""
        names = {spec.name for spec in self.layers}
        for spec in self.layers:
            for ref in spec.allow:
                if ref not in names:
                    raise FlowConfigError(
                        f"layer {spec.name!r} allows unknown layer {ref!r}"
                    )
        for src, dst in self.forbid:
            for ref in (src, dst):
                if ref not in names:
                    raise FlowConfigError(f"forbid pair references unknown layer {ref!r}")
        # The allow relation itself must be acyclic, otherwise the "DAG"
        # licenses the very cycles ISE101 exists to prevent.
        colors: dict[str, int] = {}
        order: dict[str, tuple[str, ...]] = {
            spec.name: spec.allow for spec in self.layers
        }

        def visit(node: str, trail: tuple[str, ...]) -> None:
            state = colors.get(node, 0)
            if state == 1:
                cycle = " -> ".join(trail + (node,))
                raise FlowConfigError(f"layer allow-lists form a cycle: {cycle}")
            if state == 2:
                return
            colors[node] = 1
            for nxt in order.get(node, ()):
                visit(nxt, trail + (node,))
            colors[node] = 2

        for name in order:
            visit(name, ())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def default(cls) -> "FlowConfig":
        """The repository's committed layer DAG (3.10 tomllib fallback).

        Keep in sync with ``pyproject.toml`` — the loader prefers the TOML
        and only uses this when :mod:`tomllib` is unavailable.
        """
        layers = (
            LayerSpec("foundation", ("repro.core", "repro.core.*"), ()),
            LayerSpec("lp", ("repro.lp", "repro.lp.*"), ("foundation",)),
            LayerSpec("mm", ("repro.mm", "repro.mm.*"), ("foundation", "lp")),
            LayerSpec(
                "algorithms",
                (
                    "repro.longwindow",
                    "repro.longwindow.*",
                    "repro.shortwindow",
                    "repro.shortwindow.*",
                    "repro.baselines",
                    "repro.baselines.*",
                    "repro.postopt",
                    "repro.postopt.*",
                ),
                ("foundation", "lp", "mm"),
            ),
            LayerSpec(
                "bounds",
                ("repro.analysis.lower_bounds",),
                ("foundation", "lp", "mm", "algorithms"),
            ),
            LayerSpec(
                "solver",
                ("repro.core.solver",),
                ("foundation", "lp", "mm", "algorithms", "bounds"),
            ),
            LayerSpec(
                "online",
                ("repro.online", "repro.online.*"),
                ("foundation", "lp", "mm", "algorithms", "bounds", "solver"),
            ),
            LayerSpec(
                "toolkit",
                (
                    "repro.analysis",
                    "repro.analysis.*",
                    "repro.instances",
                    "repro.instances.*",
                    "repro.sim",
                    "repro.sim.*",
                    "repro.theory",
                    "repro.theory.*",
                    "repro.viz",
                    "repro.viz.*",
                    "repro.testing",
                    "repro.testing.*",
                ),
                (
                    "foundation",
                    "lp",
                    "mm",
                    "algorithms",
                    "bounds",
                    "solver",
                    "online",
                ),
            ),
            LayerSpec(
                "serve",
                ("repro.serve", "repro.serve.*"),
                ("foundation", "solver", "online", "toolkit"),
            ),
            LayerSpec(
                "app",
                ("repro", "repro.cli"),
                (
                    "foundation",
                    "lp",
                    "mm",
                    "algorithms",
                    "bounds",
                    "solver",
                    "online",
                    "toolkit",
                    "serve",
                ),
            ),
            LayerSpec("devtools", ("repro.devtools", "repro.devtools.*"), ()),
        )
        config = cls(
            layers=layers,
            forbid=(
                ("foundation", "serve"),
                ("solver", "serve"),
                ("online", "serve"),
                ("online", "devtools"),
                ("toolkit", "devtools"),
                ("serve", "devtools"),
                ("app", "devtools"),
                ("devtools", "foundation"),
                ("devtools", "serve"),
            ),
            entrypoints=(
                "repro.core.solver:solve_ise",
                "repro.serve.service:SolveService.submit",
                "repro.serve.service:SolveService._handle",
                "repro.analysis.sweep:run_sweep",
                "repro.analysis.sweep:run_sweep_report",
            ),
            concurrent_roots=("repro.serve.*", "repro.serve"),
            pool_sanctioned=("repro.core.parallel",),
        )
        config.validate()
        return config

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "FlowConfig":
        """Build from the parsed ``[tool.repro-lint]`` table."""
        raw_layers = data.get("layers")
        if not isinstance(raw_layers, Mapping) or not raw_layers:
            raise FlowConfigError(
                "missing or empty [tool.repro-lint.layers] configuration"
            )
        layers: list[LayerSpec] = []
        for name, spec in raw_layers.items():
            if not isinstance(spec, Mapping):
                raise FlowConfigError(f"layer {name!r} must be a table")
            members = _str_tuple(spec.get("members"), f"layers.{name}.members")
            if not members:
                raise FlowConfigError(f"layer {name!r} declares no members")
            allow = _str_tuple(spec.get("allow", ()), f"layers.{name}.allow")
            layers.append(LayerSpec(name=name, members=members, allow=allow))
        flow = data.get("flow", {})
        if not isinstance(flow, Mapping):
            raise FlowConfigError("[tool.repro-lint.flow] must be a table")
        forbid_raw = flow.get("forbid", ())
        forbid: list[tuple[str, str]] = []
        for pair in forbid_raw:
            if not (isinstance(pair, Sequence) and len(pair) == 2):
                raise FlowConfigError("flow.forbid entries must be [from, to] pairs")
            forbid.append((str(pair[0]), str(pair[1])))
        config = cls(
            layers=tuple(layers),
            forbid=tuple(forbid),
            entrypoints=_str_tuple(flow.get("entrypoints", ()), "flow.entrypoints"),
            extra_budget_sinks=_str_tuple(
                flow.get("budget_sinks", ()), "flow.budget_sinks"
            ),
            concurrent_roots=_str_tuple(
                flow.get("concurrent_roots", ()), "flow.concurrent_roots"
            ),
            pool_sanctioned=_str_tuple(
                flow.get("pool_sanctioned", ()), "flow.pool_sanctioned"
            ),
        )
        config.validate()
        return config

    @classmethod
    def from_pyproject(cls, path: Path) -> "FlowConfig":
        """Parse ``[tool.repro-lint]`` out of a ``pyproject.toml``.

        Falls back to :meth:`default` when :mod:`tomllib` is unavailable
        (Python 3.10) so the analyzer still runs there.
        """
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 fallback
            return cls.default()
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("repro-lint")
        if section is None:
            raise FlowConfigError(f"no [tool.repro-lint] section in {path}")
        return cls.from_mapping(section)

    @classmethod
    def discover(cls, start: Path) -> "FlowConfig":
        """Walk up from ``start`` for a pyproject with ``[tool.repro-lint]``.

        Returns :meth:`default` when no configured pyproject is found, so
        ``repro-lint --flow src/repro`` works from any checkout directory.
        """
        current = start.resolve()
        if current.is_file():
            current = current.parent
        for candidate_dir in (current, *current.parents):
            candidate = candidate_dir / "pyproject.toml"
            if not candidate.is_file():
                continue
            try:
                return cls.from_pyproject(candidate)
            except FlowConfigError:
                continue  # pyproject of an unrelated project — keep walking
        return cls.default()


def _str_tuple(value: Any, where: str) -> tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise FlowConfigError(f"{where} must be a list of strings")
    return tuple(str(item) for item in value)
