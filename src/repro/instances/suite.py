"""Named benchmark suites: curated case lists for repeatable studies.

``repro-ise sweep --preset smoke|standard|large`` and
:func:`repro.instances.suite.preset_cases` give everyone the same workload
mix, so numbers quoted from different machines are at least about the same
instances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, KeysView

if TYPE_CHECKING:  # built lazily: analysis.sweep imports this package
    from ..analysis.sweep import SweepCase

__all__ = ["PRESETS", "preset_cases"]


# (families, [(n, machines, T)], seed count) per preset; expanded lazily so
# importing repro.instances never touches repro.analysis (cycle otherwise).
_PRESET_SPECS: dict[str, tuple[list[str], list[tuple[int, int, float]], int]] = {
    # Seconds: one case per family, tiny.
    "smoke": (["long", "short", "mixed", "unit"], [(8, 2, 10.0)], 1),
    # The default study: every family, two sizes, three seeds.
    "standard": (
        [
            "long", "short", "mixed", "clustered",
            "rigid", "staircase", "heavy_tail", "unit",
        ],
        [(12, 2, 10.0), (20, 2, 10.0)],
        3,
    ),
    # Stress the LP and the interval machinery.
    "large": (
        ["long", "mixed", "clustered", "heavy_tail"],
        [(32, 3, 10.0), (48, 3, 10.0)],
        2,
    ),
}


def preset_cases(name: str) -> "list[SweepCase]":
    """Expand a preset by name; raises KeyError with the available names."""
    from ..analysis.sweep import SweepCase  # deferred: avoids import cycle

    try:
        families, sizes, seeds = _PRESET_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(_PRESET_SPECS)}"
        ) from None
    return [
        SweepCase(
            family=family,
            n=n,
            machines=m,
            calibration_length=(int(T) if family == "unit" else T),
            seed=seed,
        )
        for family in families
        for (n, m, T) in sizes
        for seed in range(seeds)
    ]


class _PresetView(dict):
    """Mapping view exposing the expanded presets on demand."""

    def __missing__(self, key: str):  # pragma: no cover - dict protocol
        return preset_cases(key)

    def __contains__(self, key: object) -> bool:
        return key in _PRESET_SPECS

    def __iter__(self):
        return iter(_PRESET_SPECS)

    def __len__(self) -> int:
        return len(_PRESET_SPECS)

    def keys(self) -> "KeysView[str]":
        """Preset names, in declaration order."""
        return _PRESET_SPECS.keys()


PRESETS = _PresetView()
