"""Feasible-by-construction random ISE instance families.

All of the paper's guarantees are conditioned on the input being ISE-feasible
on ``m`` machines, so every random family here works backwards from a hidden
*witness* schedule: calibrations are laid out on ``m`` machines, jobs are
packed into them, and each job's window is then drawn around its witness
execution.  The witness is returned alongside the instance; its calibration
count is a certified *upper bound* on OPT and it doubles as a feasibility
certificate for tests (e.g. it feeds the Lemma 2 transformation).

Families:

* :func:`long_window_instance`  — every window ``>= 2T`` (Section 3 input);
* :func:`short_window_instance` — every window ``< 2T`` (Section 4 input);
* :func:`mixed_instance`        — both kinds (Theorem 1 input);
* :func:`unit_instance`         — ``p_j = 1`` and integral times (the
  Bender et al. [5] regime, bench UNIT);
* :func:`partition_instance`    — the NP-hardness reduction from Partition
  (Section 1), feasible by construction;
* :func:`clustered_instance`    — bursty arrivals (the motivating stockpile
  scenario: test campaigns arrive in clusters);
* :func:`rigid_instance`        — zero-slack jobs (MM becomes interval
  coloring; the scheduler's only freedom is calibration placement);
* :func:`staircase_instance`    — sliding overlapping windows (adversarial
  for greedy EDF tie-breaking);
* :func:`heavy_tail_instance`   — bounded-Pareto processing times (stresses
  the LP's work-fit constraint and in-calibration packing).

Determinism: each function takes an integer ``seed`` and uses an isolated
``numpy.random.default_rng``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob

__all__ = [
    "GeneratedInstance",
    "long_window_instance",
    "short_window_instance",
    "mixed_instance",
    "unit_instance",
    "partition_instance",
    "clustered_instance",
    "rigid_instance",
    "staircase_instance",
    "heavy_tail_instance",
]


@dataclass(frozen=True)
class GeneratedInstance:
    """A random instance plus its feasibility witness.

    ``witness`` is a feasible ISE schedule on ``instance.machines`` machines;
    ``witness.num_calibrations`` upper-bounds OPT.
    """

    instance: Instance
    witness: Schedule
    family: str
    params: dict[str, object] = field(default_factory=dict, compare=False)

    @property
    def witness_calibrations(self) -> int:
        return self.witness.num_calibrations


class _WitnessBuilder:
    """Packs jobs into fresh calibrations on ``m`` machines."""

    def __init__(
        self,
        rng: np.random.Generator,
        machines: int,
        T: float,
        load: float,
        gap_scale: float,
    ) -> None:
        self.rng = rng
        self.m = machines
        self.T = T
        self.load = load
        self.gap_scale = gap_scale
        # Per machine: (current calibration start or None, used within it,
        # time the machine becomes free for a new calibration).
        self.cal_start: list[float | None] = [None] * machines
        self.used: list[float] = [0.0] * machines
        self.free_at: list[float] = [0.0] * machines
        self.calibrations: list[Calibration] = []
        self.placements: list[ScheduledJob] = []

    def _open_calibration(self, machine: int) -> None:
        gap = float(self.rng.uniform(0.0, self.gap_scale * self.T))
        start = self.free_at[machine] + gap
        self.cal_start[machine] = start
        self.used[machine] = 0.0
        self.free_at[machine] = start + self.T
        self.calibrations.append(Calibration(start=start, machine=machine))

    def place(self, job_id: int, processing: float) -> tuple[float, int]:
        """Place one job; returns its witness ``(start, machine)``."""
        machine = int(self.rng.integers(self.m))
        budget = self.load * self.T
        if (
            self.cal_start[machine] is None
            or self.used[machine] + processing > budget
        ):
            self._open_calibration(machine)
        start = float(self.cal_start[machine]) + self.used[machine]  # type: ignore[arg-type]
        self.used[machine] += processing
        self.placements.append(
            ScheduledJob(start=start, machine=machine, job_id=job_id)
        )
        return start, machine

    def witness(self, T: float) -> Schedule:
        return Schedule(
            calibrations=CalibrationSchedule(
                calibrations=tuple(self.calibrations),
                num_machines=self.m,
                calibration_length=T,
            ),
            placements=tuple(self.placements),
            speed=1.0,
        )


def _window_around(
    rng: np.random.Generator,
    exec_start: float,
    processing: float,
    min_window: float,
    max_window: float,
) -> tuple[float, float]:
    """Draw a window of length in ``[min_window, max_window]`` containing
    the execution interval ``[exec_start, exec_start + processing)``."""
    length = float(rng.uniform(max(min_window, processing), max_window))
    # Split the slack (length - processing) around the execution interval.
    slack = length - processing
    before = float(rng.uniform(0.0, slack)) if slack > 0 else 0.0
    release = exec_start - before
    deadline = release + length
    return release, deadline


def long_window_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    load: float = 0.85,
    gap_scale: float = 1.5,
    min_processing_frac: float = 0.1,
    max_processing_frac: float = 0.95,
    max_window_factor: float = 5.0,
) -> GeneratedInstance:
    """Random feasible instance where every window is ``>= 2T``.

    ``load`` caps the work packed per witness calibration; ``gap_scale``
    controls idle gaps between witness calibrations (larger = sparser);
    processing times are ``U[min, max] * T``; windows are
    ``U[2T, max_window_factor * T]`` around the witness execution.
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load, gap_scale)
    jobs: list[Job] = []
    for job_id in range(n):
        p = float(rng.uniform(min_processing_frac, max_processing_frac)) * T
        p = min(p, load * T)  # must fit under the per-calibration budget
        start, _ = builder.place(job_id, p)
        release, deadline = _window_around(
            rng, start, p, min_window=2.0 * T, max_window=max_window_factor * T
        )
        jobs.append(
            Job(job_id=job_id, release=release, deadline=deadline, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"long(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="long_window",
        params={"n": n, "m": machines, "T": T, "seed": seed, "load": load},
    )


def short_window_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    load: float = 0.85,
    gap_scale: float = 1.5,
    min_processing_frac: float = 0.1,
    max_processing_frac: float = 0.95,
    min_window_slack: float = 0.0,
    max_window_factor: float = 1.9,
) -> GeneratedInstance:
    """Random feasible instance where every window is ``< 2T``.

    Window lengths are ``U[p + min_window_slack*T, max_window_factor*T]``
    (``max_window_factor`` must stay below 2 to keep windows short).
    """
    if max_window_factor >= 2.0:
        raise ValueError("short windows require max_window_factor < 2")
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load, gap_scale)
    jobs: list[Job] = []
    for job_id in range(n):
        p = float(rng.uniform(min_processing_frac, max_processing_frac)) * T
        p = min(p, load * T)
        start, _ = builder.place(job_id, p)
        min_window = min(p + min_window_slack * T, max_window_factor * T)
        release, deadline = _window_around(
            rng, start, p, min_window=min_window, max_window=max_window_factor * T
        )
        jobs.append(
            Job(job_id=job_id, release=release, deadline=deadline, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"short(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="short_window",
        params={"n": n, "m": machines, "T": T, "seed": seed, "load": load},
    )


def mixed_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    long_fraction: float = 0.5,
    load: float = 0.85,
    gap_scale: float = 1.5,
) -> GeneratedInstance:
    """Random feasible instance mixing long and short windows.

    Each job is long with probability ``long_fraction``.
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load, gap_scale)
    jobs: list[Job] = []
    for job_id in range(n):
        p = float(rng.uniform(0.1, 0.95)) * T
        p = min(p, load * T)
        start, _ = builder.place(job_id, p)
        if rng.random() < long_fraction:
            release, deadline = _window_around(
                rng, start, p, min_window=2.0 * T, max_window=5.0 * T
            )
        else:
            release, deadline = _window_around(
                rng, start, p, min_window=p, max_window=1.9 * T
            )
        jobs.append(
            Job(job_id=job_id, release=release, deadline=deadline, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"mixed(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="mixed",
        params={
            "n": n,
            "m": machines,
            "T": T,
            "seed": seed,
            "long_fraction": long_fraction,
        },
    )


def unit_instance(
    n: int,
    machines: int,
    calibration_length: int,
    seed: int,
    load: float = 1.0,
    gap_scale: float = 2.0,
    max_window: int | None = None,
) -> GeneratedInstance:
    """Unit-processing instance with integral times (the Bender [5] regime).

    Calibration starts, releases, and deadlines are integers; ``p_j = 1``.
    ``max_window`` caps the drawn window length (default ``4 T``).
    """
    T = int(calibration_length)
    if T < 2:
        raise ValueError("unit instances require integer T >= 2")
    rng = np.random.default_rng(seed)
    max_window = max_window if max_window is not None else 4 * T
    # Integral witness: walk machines, integral gaps.
    cal_start: list[int | None] = [None] * machines
    used: list[int] = [0] * machines
    free_at: list[int] = [0] * machines
    calibrations: list[Calibration] = []
    placements: list[ScheduledJob] = []
    jobs: list[Job] = []
    budget = max(1, int(load * T))
    for job_id in range(n):
        machine = int(rng.integers(machines))
        if cal_start[machine] is None or used[machine] + 1 > budget:
            gap = int(rng.integers(0, max(1, int(gap_scale * T)) + 1))
            start = free_at[machine] + gap
            cal_start[machine] = start
            used[machine] = 0
            free_at[machine] = start + T
            calibrations.append(Calibration(start=float(start), machine=machine))
        x = int(cal_start[machine]) + used[machine]  # type: ignore[arg-type]
        used[machine] += 1
        placements.append(
            ScheduledJob(start=float(x), machine=machine, job_id=job_id)
        )
        length = int(rng.integers(1, max_window + 1))
        before = int(rng.integers(0, length - 1 + 1)) if length > 1 else 0
        release = x - before
        deadline = release + length
        jobs.append(
            Job(
                job_id=job_id,
                release=float(release),
                deadline=float(deadline),
                processing=1.0,
            )
        )
    witness = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=machines,
            calibration_length=float(T),
        ),
        placements=tuple(placements),
        speed=1.0,
    )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=float(T),
        name=f"unit(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=witness,
        family="unit",
        params={"n": n, "m": machines, "T": T, "seed": seed},
    )


def partition_instance(
    num_values: int,
    seed: int,
    value_range: tuple[int, int] = (1, 20),
) -> GeneratedInstance:
    """The Section 1 NP-hardness gadget, feasible by construction.

    ``2 * num_values`` integer values are drawn as ``num_values`` pairs so
    that a perfect partition exists; all jobs get ``r_j = 0``,
    ``d_j = T = (sum values) / 2`` and ``m = 2`` — exactly the reduction
    from Partition the paper sketches.  The witness is the known partition.
    """
    rng = np.random.default_rng(seed)
    # Draw one half, mirror it: sides A and B have identical multisets, so
    # a perfect partition trivially exists but is hidden after shuffling.
    half = [int(rng.integers(value_range[0], value_range[1] + 1)) for _ in range(num_values)]
    values = half + list(half)
    total = sum(values)
    T = total / 2.0
    order = rng.permutation(len(values))

    jobs: list[Job] = []
    placements: list[ScheduledJob] = []
    offsets = [0.0, 0.0]
    sides = [0] * num_values + [1] * num_values  # pre-shuffle side labels
    for new_id, orig in enumerate(order):
        value = float(values[orig])
        side = sides[orig]
        jobs.append(
            Job(job_id=new_id, release=0.0, deadline=T, processing=value)
        )
        placements.append(
            ScheduledJob(start=offsets[side], machine=side, job_id=new_id)
        )
        offsets[side] += value
    witness = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=(
                Calibration(start=0.0, machine=0),
                Calibration(start=0.0, machine=1),
            ),
            num_machines=2,
            calibration_length=T,
        ),
        placements=tuple(placements),
        speed=1.0,
    )
    instance = Instance(
        jobs=tuple(jobs),
        machines=2,
        calibration_length=T,
        name=f"partition(k={num_values},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=witness,
        family="partition",
        params={"num_values": num_values, "seed": seed, "T": T},
    )


def clustered_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    num_clusters: int = 3,
    cluster_span_factor: float = 3.0,
    intercluster_gap_factor: float = 6.0,
    long_fraction: float = 0.6,
) -> GeneratedInstance:
    """Bursty arrivals: jobs cluster into well-separated test campaigns.

    This is the motivating ISE workload shape (stockpile test campaigns):
    within a campaign, calibrations should be shared aggressively; between
    campaigns, machines go idle.  Good algorithms exploit the gaps — the
    bench shows the naive always-calibrated baseline paying for them.
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    cluster_origin = 0.0
    jobs: list[Job] = []
    calibrations: list[Calibration] = []
    placements: list[ScheduledJob] = []
    per_cluster = max(1, n // num_clusters)
    job_id = 0
    for cluster in range(num_clusters):
        builder = _WitnessBuilder(rng, machines, T, load=0.85, gap_scale=0.5)
        count = per_cluster if cluster < num_clusters - 1 else n - job_id
        local_jobs: list[tuple[int, float, float]] = []
        for _ in range(count):
            p = min(float(rng.uniform(0.1, 0.9)) * T, 0.85 * T)
            start, _ = builder.place(job_id, p)
            local_jobs.append((job_id, start, p))
            job_id += 1
        span = max(
            (c.start + T for c in builder.calibrations), default=0.0
        )
        for jid, start, p in local_jobs:
            absolute = cluster_origin + start
            if rng.random() < long_fraction:
                release, deadline = _window_around(
                    rng, absolute, p, min_window=2.0 * T, max_window=cluster_span_factor * T
                )
            else:
                release, deadline = _window_around(
                    rng, absolute, p, min_window=p, max_window=1.9 * T
                )
            jobs.append(
                Job(job_id=jid, release=release, deadline=deadline, processing=p)
            )
        calibrations.extend(
            Calibration(start=c.start + cluster_origin, machine=c.machine)
            for c in builder.calibrations
        )
        placements.extend(
            ScheduledJob(start=p.start + cluster_origin, machine=p.machine, job_id=p.job_id)
            for p in builder.placements
        )
        cluster_origin += span + intercluster_gap_factor * T
    witness = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=machines,
            calibration_length=T,
        ),
        placements=tuple(placements),
        speed=1.0,
    )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"clustered(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=witness,
        family="clustered",
        params={
            "n": n,
            "m": machines,
            "T": T,
            "seed": seed,
            "num_clusters": num_clusters,
        },
    )


def rigid_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    load: float = 0.85,
    gap_scale: float = 1.0,
) -> GeneratedInstance:
    """All-rigid workload: every job has zero slack (``d_j = r_j + p_j``).

    Rigid jobs make machine minimization polynomial (interval coloring, see
    :mod:`repro.mm.rigid`) and maximally constrain every scheduler: a rigid
    job's execution interval is fixed, so the only freedom left is the
    calibration placement.  All windows are ``< T <= 2T``: pure short-window
    input.
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load, gap_scale)
    jobs: list[Job] = []
    for job_id in range(n):
        p = min(float(rng.uniform(0.1, 0.9)) * T, load * T)
        start, _ = builder.place(job_id, p)
        jobs.append(
            Job(job_id=job_id, release=start, deadline=start + p, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"rigid(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="rigid",
        params={"n": n, "m": machines, "T": T, "seed": seed},
    )


def staircase_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    step_fraction: float = 0.35,
    window_factor: float = 3.0,
) -> GeneratedInstance:
    """Staircase workload: windows slide forward by a fixed step per job.

    Successive long-window jobs have windows offset by ``step_fraction * T``,
    producing long chains of pairwise-overlapping windows — the adversarial
    shape for greedy EDF assignment (every calibration has many eligible
    jobs, so tie-breaking and the TISE restriction actually matter).
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load=0.85, gap_scale=0.4)
    jobs: list[Job] = []
    window = max(window_factor, 2.0) * T
    for job_id in range(n):
        p = min(float(rng.uniform(0.15, 0.7)) * T, 0.85 * T)
        start, _ = builder.place(job_id, p)
        release = min(start, job_id * step_fraction * T)
        # Window must contain the witness execution and be >= 2T.
        deadline = max(release + window, start + p)
        jobs.append(
            Job(job_id=job_id, release=release, deadline=deadline, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"staircase(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="staircase",
        params={"n": n, "m": machines, "T": T, "seed": seed},
    )


def heavy_tail_instance(
    n: int,
    machines: int,
    calibration_length: float,
    seed: int,
    alpha: float = 1.3,
    long_fraction: float = 0.5,
) -> GeneratedInstance:
    """Heavy-tailed processing times (bounded Pareto, capped at ``0.85 T``).

    Many tiny jobs plus a few near-calibration-size ones: stresses the
    work-fit constraint (3) of the LP and bin-packing inside calibrations
    (the EDF step's stop-at-first-nonfit rule is most visible here).
    """
    T = calibration_length
    rng = np.random.default_rng(seed)
    builder = _WitnessBuilder(rng, machines, T, load=0.85, gap_scale=1.2)
    jobs: list[Job] = []
    for job_id in range(n):
        raw = float((rng.pareto(alpha) + 1.0) * 0.05)  # >= 0.05, heavy tail
        p = min(raw, 0.85) * T
        start, _ = builder.place(job_id, p)
        if rng.random() < long_fraction:
            release, deadline = _window_around(
                rng, start, p, min_window=2.0 * T, max_window=5.0 * T
            )
        else:
            release, deadline = _window_around(
                rng, start, p, min_window=p, max_window=1.9 * T
            )
        jobs.append(
            Job(job_id=job_id, release=release, deadline=deadline, processing=p)
        )
    instance = Instance(
        jobs=tuple(jobs),
        machines=machines,
        calibration_length=T,
        name=f"heavy_tail(n={n},m={machines},T={T},seed={seed})",
    )
    return GeneratedInstance(
        instance=instance,
        witness=builder.witness(T),
        family="heavy_tail",
        params={"n": n, "m": machines, "T": T, "seed": seed, "alpha": alpha},
    )
