"""Workload generators, paper examples, and instance I/O."""

from .generators import (
    GeneratedInstance,
    clustered_instance,
    heavy_tail_instance,
    long_window_instance,
    mixed_instance,
    partition_instance,
    rigid_instance,
    short_window_instance,
    staircase_instance,
    unit_instance,
)
from .io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_schedule,
    load_schedule_certificate,
    save_instance,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from .paper_examples import (
    FIGURE_T,
    figure1_instance,
    figure2_fractional_calibrations,
    figure3_inputs,
)
from .suite import PRESETS, preset_cases

__all__ = [
    "GeneratedInstance",
    "long_window_instance",
    "short_window_instance",
    "mixed_instance",
    "unit_instance",
    "partition_instance",
    "clustered_instance",
    "rigid_instance",
    "staircase_instance",
    "heavy_tail_instance",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
    "load_schedule_certificate",
    "FIGURE_T",
    "figure1_instance",
    "figure2_fractional_calibrations",
    "figure3_inputs",
    "PRESETS",
    "preset_cases",
]
