"""The paper's worked examples (Figures 1-3), reconstructed as data.

The paper contains no numeric tables; its three figures illustrate the
Section 3 constructions on small examples.  The figures give qualitative
anchors (which jobs are advanced/delayed in Figure 1; where rounding emits
calibrations in Figure 2; that a delayed tail is discarded in Figure 3), and
these reconstructions are built to reproduce exactly those anchors:

* :func:`figure1_instance` — one machine, three calibrations, seven
  long-window jobs; jobs 1 and 5 must be *advanced* (deadline inside their
  calibration) and job 7 *delayed* (release inside its calibration), as in
  the figure's caption.
* :func:`figure2_fractional_calibrations` — four fractional calibrations
  whose running total crosses 1/2 after the second and crosses 1 and 3/2 at
  the fourth, so Algorithm 1 emits one calibration at the second point and
  two at the fourth ("a full calibration and two full calibrations
  respectively").
* :func:`figure3_inputs` — fractional job assignments on the Figure 2
  calibrations such that one job's delayed tail is discarded by
  Algorithm 3.  Note: the figure is schematic — no LP-consistent assignment
  can both fully assign the discarded job and reproduce Figure 2's emission
  pattern (constraint (2) caps its mass below 1 on its feasible points), so
  the reconstruction satisfies constraints (2), (3) and (5) but assigns the
  discarded job only partially; the Lemma 5 invariants, which do not rely
  on constraint (4), are still machine-checked.
"""

from __future__ import annotations

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob

__all__ = [
    "FIGURE_T",
    "figure1_instance",
    "figure2_fractional_calibrations",
    "figure3_inputs",
]

FIGURE_T: float = 10.0
"""Calibration length used by all figure reconstructions."""


def figure1_instance() -> tuple[Instance, Schedule]:
    """Figure 1's seven-job, one-machine ISE schedule.

    Returns ``(instance, ise_schedule)`` where the schedule is feasible on
    one machine with three calibrations (the figure's panel B).  Running
    :func:`repro.longwindow.ise_to_tise` on it reproduces panel C: jobs 1
    and 5 advance onto machine ``i-`` and job 7 delays onto ``i+``.

    Job ids follow the figure (1-7).  Times are chosen so that:

    * jobs 2, 3, 4, 6 already satisfy the TISE restriction ("keep");
    * jobs 1 and 5 have deadlines inside their calibration ("advance");
    * job 7 has its release inside its calibration ("delay").
    """
    T = FIGURE_T
    # (job_id, witness start x_j, processing, release, deadline)
    rows = [
        (1, 0.0, 3.0, -16.0, 4.0),   # d < t+T = 10 -> advance
        (2, 3.0, 3.0, -2.0, 18.0),   # keep
        (3, 6.0, 2.0, 0.0, 20.0),    # keep
        (4, 10.0, 4.0, 5.0, 25.0),   # keep
        (5, 14.0, 3.0, -3.0, 17.0),  # d < t+T = 20 -> advance
        (6, 20.0, 5.0, 10.0, 30.0),  # keep
        (7, 26.0, 3.0, 22.0, 42.0),  # r > t = 20 -> delay
    ]
    jobs = tuple(
        Job(job_id=jid, release=r, deadline=d, processing=p)
        for jid, _x, p, r, d in rows
    )
    calibrations = CalibrationSchedule(
        calibrations=(
            Calibration(start=0.0, machine=0),
            Calibration(start=10.0, machine=0),
            Calibration(start=20.0, machine=0),
        ),
        num_machines=1,
        calibration_length=T,
    )
    placements = tuple(
        ScheduledJob(start=x, machine=0, job_id=jid) for jid, x, _p, _r, _d in rows
    )
    instance = Instance(
        jobs=jobs, machines=1, calibration_length=T, name="figure1"
    )
    schedule = Schedule(calibrations=calibrations, placements=placements)
    return instance, schedule


def figure2_fractional_calibrations() -> dict[float, float]:
    """Figure 2's fractional calibration masses, keyed by calibration point.

    Running total: 0.30, 0.55, 0.75, 1.55 — so Algorithm 1 emits one
    calibration at the second point (crossing 1/2) and two at the fourth
    (crossing 1 and 3/2), matching the figure.
    """
    return {0.0: 0.30, 2.0: 0.25, 5.0: 0.20, 7.0: 0.80}


def figure3_inputs() -> tuple[tuple[Job, ...], dict[float, float], dict[tuple[int, float], float]]:
    """Figure 3's jobs and fractional assignments on the Figure 2 masses.

    Returns ``(jobs, fractional_calibrations, fractional_assignments)``.
    Job 2's window ends at 16, so its TISE-latest calibration point is 6:
    its mass at point 5 is delayed by the rounding to the calibration
    emitted at point 7 — infeasible for it — and ends up discarded, the
    figure's central event.  Job 1's window covers everything; its mass
    rides along normally.
    """
    T = FIGURE_T
    jobs = (
        Job(job_id=1, release=-5.0, deadline=40.0, processing=4.0),
        Job(job_id=2, release=-5.0, deadline=16.0, processing=6.0),
    )
    calibrations = figure2_fractional_calibrations()
    # Constraint (2): X_jt <= C_t at every point; constraint (5): job 2 has
    # no mass at point 7 (7 > d_2 - T = 6).  Job 2 is only partially
    # assigned (0.75 < 1) — see the module docstring.
    assignments = {
        (1, 0.0): 0.10,
        (1, 2.0): 0.10,
        (1, 7.0): 0.80,
        (2, 0.0): 0.30,
        (2, 2.0): 0.25,
        (2, 5.0): 0.20,
    }
    return jobs, calibrations, assignments
