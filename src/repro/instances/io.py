"""JSON (de)serialization for instances and schedules.

Plain-JSON round-tripping so workloads and solutions can be saved, diffed,
and shared.  The format is versioned; loaders reject unknown versions rather
than silently misreading them.

Crash safety: saves go through :mod:`repro.core.atomicio` — an atomic
temp-file + fsync + rename write wrapped in a checksummed envelope — so a
crash mid-save can never leave a truncated file, and bit-level damage is
detected on load (:class:`~repro.core.errors.CorruptArtifactError`).
Files written before the envelope format still load (without checksum
verification).  Malformed payloads raise the typed
:class:`~repro.core.errors.InvalidArtifactError` carrying the path and the
offending field, never a raw ``KeyError``/``json.JSONDecodeError``.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any

from ..core.atomicio import dump_artifact, load_artifact
from ..core.calibration import Calibration, CalibrationSchedule
from ..core.certify import SolveCertificate
from ..core.errors import InvalidArtifactError, ReproError
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
    "load_schedule_certificate",
]

FORMAT_VERSION = 1


def _finite(value: Any, field: str) -> float:
    """Coerce ``value`` to a finite float or raise a field-naming error."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidArtifactError(
            f"field {field!r} is not a number: {value!r}", field=field
        ) from exc
    if not math.isfinite(number):
        raise InvalidArtifactError(
            f"field {field!r} is not finite: {value!r}", field=field
        )
    return number


def _integer(value: Any, field: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise InvalidArtifactError(
            f"field {field!r} is not an integer: {value!r}", field=field
        ) from exc


def _require(payload: dict[str, Any], key: str, field: str | None = None) -> Any:
    """Fetch ``payload[key]``, raising a typed error naming ``field``.

    ``field`` is the human-facing (possibly indexed) field label, e.g.
    ``jobs[3].release``; it defaults to ``key`` for top-level fields.
    """
    label = field if field is not None else key
    try:
        return payload[key]
    except (KeyError, TypeError) as exc:
        raise InvalidArtifactError(
            f"required field {label!r} is missing", field=label
        ) from exc


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Serialize an instance to plain JSON-compatible types."""
    return {
        "version": FORMAT_VERSION,
        "kind": "ise-instance",
        "name": instance.name,
        "machines": instance.machines,
        "calibration_length": instance.calibration_length,
        "jobs": [
            {
                "id": j.job_id,
                "release": j.release,
                "deadline": j.deadline,
                "processing": j.processing,
            }
            for j in instance.jobs
        ],
    }


def instance_from_dict(payload: dict[str, Any]) -> Instance:
    """Deserialize an instance; validates version, kind, and field types."""
    if payload.get("kind") != "ise-instance":
        raise ReproError(f"not an ISE instance payload: kind={payload.get('kind')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported instance format version {payload.get('version')!r}"
        )
    rows = _require(payload, "jobs")
    if not isinstance(rows, list):
        raise InvalidArtifactError(
            f"field 'jobs' must be a list, got {type(rows).__name__}",
            field="jobs",
        )
    jobs = tuple(
        Job(
            job_id=_integer(
                _require(row, "id", f"jobs[{i}].id"), f"jobs[{i}].id"
            ),
            release=_finite(
                _require(row, "release", f"jobs[{i}].release"),
                f"jobs[{i}].release",
            ),
            deadline=_finite(
                _require(row, "deadline", f"jobs[{i}].deadline"),
                f"jobs[{i}].deadline",
            ),
            processing=_finite(
                _require(row, "processing", f"jobs[{i}].processing"),
                f"jobs[{i}].processing",
            ),
        )
        for i, row in enumerate(rows)
    )
    return Instance(
        jobs=jobs,
        machines=_integer(_require(payload, "machines"), "machines"),
        calibration_length=_finite(
            _require(payload, "calibration_length"), "calibration_length"
        ),
        name=str(payload.get("name", "")),
    )


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule to plain JSON-compatible types."""
    return {
        "version": FORMAT_VERSION,
        "kind": "ise-schedule",
        "speed": schedule.speed,
        "num_machines": schedule.calibrations.num_machines,
        "calibration_length": schedule.calibration_length,
        "calibrations": [
            {"start": c.start, "machine": c.machine}
            for c in schedule.calibrations
        ],
        "placements": [
            {"job": p.job_id, "start": p.start, "machine": p.machine}
            for p in schedule.placements
        ],
    }


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Deserialize a schedule; validates version, kind, and field types."""
    if payload.get("kind") != "ise-schedule":
        raise ReproError(f"not an ISE schedule payload: kind={payload.get('kind')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported schedule format version {payload.get('version')!r}"
        )
    calibrations = CalibrationSchedule(
        calibrations=tuple(
            Calibration(
                start=_finite(
                    _require(c, "start", f"calibrations[{i}].start"),
                    f"calibrations[{i}].start",
                ),
                machine=_integer(
                    _require(c, "machine", f"calibrations[{i}].machine"),
                    f"calibrations[{i}].machine",
                ),
            )
            for i, c in enumerate(_require(payload, "calibrations"))
        ),
        num_machines=_integer(_require(payload, "num_machines"), "num_machines"),
        calibration_length=_finite(
            _require(payload, "calibration_length"), "calibration_length"
        ),
    )
    placements = tuple(
        ScheduledJob(
            start=_finite(
                _require(p, "start", f"placements[{i}].start"),
                f"placements[{i}].start",
            ),
            machine=_integer(
                _require(p, "machine", f"placements[{i}].machine"),
                f"placements[{i}].machine",
            ),
            job_id=_integer(
                _require(p, "job", f"placements[{i}].job"),
                f"placements[{i}].job",
            ),
        )
        for i, p in enumerate(_require(payload, "placements"))
    )
    return Schedule(
        calibrations=calibrations,
        placements=placements,
        speed=_finite(payload.get("speed", 1.0), "speed"),
    )


def save_instance(instance: Instance, path: str | Path) -> None:
    """Atomically write an instance to ``path`` in a checksummed envelope."""
    dump_artifact(instance_to_dict(instance), path)


def load_instance(path: str | Path) -> Instance:
    """Read an instance written by :func:`save_instance` (or legacy plain JSON).

    Raises :class:`~repro.core.errors.CorruptArtifactError` for byte-level
    damage and :class:`~repro.core.errors.InvalidArtifactError` for
    malformed payloads, both carrying the offending path.
    """
    try:
        return instance_from_dict(load_artifact(path))
    except InvalidArtifactError as exc:
        if exc.path is None:
            exc.path = str(path)
        raise


def save_schedule(
    schedule: Schedule,
    path: str | Path,
    *,
    certificate: SolveCertificate | None = None,
) -> None:
    """Atomically write a schedule to ``path`` in a checksummed envelope.

    When a :class:`~repro.core.certify.SolveCertificate` is supplied (a
    verified solve), it rides inside the payload under ``"certificate"`` —
    the certificate carries its own sha256 self-checksum on top of the
    envelope's, so a schedule file can prove it was certified long after
    the solve that produced it is gone.
    """
    payload = schedule_to_dict(schedule)
    if certificate is not None:
        payload["certificate"] = certificate.to_dict()
    dump_artifact(payload, path)


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule written by :func:`save_schedule` (or legacy plain JSON).

    Same typed-error contract as :func:`load_instance`.
    """
    try:
        return schedule_from_dict(load_artifact(path))
    except InvalidArtifactError as exc:
        if exc.path is None:
            exc.path = str(path)
        raise


def load_schedule_certificate(path: str | Path) -> SolveCertificate | None:
    """The certificate embedded in a schedule file, or None if it has none.

    Verifies the certificate's self-checksum; tampering raises
    :class:`~repro.core.errors.InvalidArtifactError` naming the path.
    """
    payload = load_artifact(path)
    raw = payload.get("certificate")
    if raw is None:
        return None
    try:
        return SolveCertificate.from_dict(raw)
    except InvalidArtifactError as exc:
        if exc.path is None:
            exc.path = str(path)
        raise
