"""JSON (de)serialization for instances and schedules.

Plain-JSON round-tripping so workloads and solutions can be saved, diffed,
and shared.  The format is versioned; loaders reject unknown versions rather
than silently misreading them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import ReproError
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_instance",
    "load_instance",
    "save_schedule",
    "load_schedule",
]

FORMAT_VERSION = 1


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """Serialize an instance to plain JSON-compatible types."""
    return {
        "version": FORMAT_VERSION,
        "kind": "ise-instance",
        "name": instance.name,
        "machines": instance.machines,
        "calibration_length": instance.calibration_length,
        "jobs": [
            {
                "id": j.job_id,
                "release": j.release,
                "deadline": j.deadline,
                "processing": j.processing,
            }
            for j in instance.jobs
        ],
    }


def instance_from_dict(payload: dict[str, Any]) -> Instance:
    """Deserialize an instance; validates version and kind."""
    if payload.get("kind") != "ise-instance":
        raise ReproError(f"not an ISE instance payload: kind={payload.get('kind')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported instance format version {payload.get('version')!r}"
        )
    jobs = tuple(
        Job(
            job_id=int(row["id"]),
            release=float(row["release"]),
            deadline=float(row["deadline"]),
            processing=float(row["processing"]),
        )
        for row in payload["jobs"]
    )
    return Instance(
        jobs=jobs,
        machines=int(payload["machines"]),
        calibration_length=float(payload["calibration_length"]),
        name=str(payload.get("name", "")),
    )


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialize a schedule to plain JSON-compatible types."""
    return {
        "version": FORMAT_VERSION,
        "kind": "ise-schedule",
        "speed": schedule.speed,
        "num_machines": schedule.calibrations.num_machines,
        "calibration_length": schedule.calibration_length,
        "calibrations": [
            {"start": c.start, "machine": c.machine}
            for c in schedule.calibrations
        ],
        "placements": [
            {"job": p.job_id, "start": p.start, "machine": p.machine}
            for p in schedule.placements
        ],
    }


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Deserialize a schedule; validates version and kind."""
    if payload.get("kind") != "ise-schedule":
        raise ReproError(f"not an ISE schedule payload: kind={payload.get('kind')!r}")
    if payload.get("version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported schedule format version {payload.get('version')!r}"
        )
    calibrations = CalibrationSchedule(
        calibrations=tuple(
            Calibration(start=float(c["start"]), machine=int(c["machine"]))
            for c in payload["calibrations"]
        ),
        num_machines=int(payload["num_machines"]),
        calibration_length=float(payload["calibration_length"]),
    )
    placements = tuple(
        ScheduledJob(
            start=float(p["start"]), machine=int(p["machine"]), job_id=int(p["job"])
        )
        for p in payload["placements"]
    )
    return Schedule(
        calibrations=calibrations,
        placements=placements,
        speed=float(payload.get("speed", 1.0)),
    )


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: str | Path) -> Instance:
    """Read an instance written by :func:`save_instance`."""
    return instance_from_dict(json.loads(Path(path).read_text()))


def save_schedule(schedule: Schedule, path: str | Path) -> None:
    """Write a schedule to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: str | Path) -> Schedule:
    """Read a schedule written by :func:`save_schedule`."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
