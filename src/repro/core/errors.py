"""Exception hierarchy for the ISE reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated Python errors.

Errors raised from inside a solve pipeline carry *structured context* —
which pipeline stage failed (``stage``), which backend or algorithm was
running (``backend``), and how long it had been running (``elapsed``
seconds).  The resilience layer (:mod:`repro.core.resilience`) uses that
context to build its :class:`~repro.core.resilience.ResilienceReport`, and
the CLI uses it to pinpoint the failed stage in error messages.  All three
fields are optional keywords, so ``SolverError("message")`` keeps working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleScheduleError",
    "InfeasibleInstanceError",
    "SolverError",
    "NumericalDriftError",
    "CertificationError",
    "LimitExceededError",
    "StageTimeoutError",
    "FallbacksExhaustedError",
    "ArtifactError",
    "InvalidArtifactError",
    "CorruptArtifactError",
    "OverloadError",
    "ServiceShutdownError",
    "CommitRetractionError",
    "StaleFenceError",
    "SessionConflictError",
]


class ReproError(Exception):
    """Base class for all errors raised by this library.

    Attributes:
        stage: pipeline stage that failed (``"lp"``, ``"mm"``,
            ``"long_pipeline"``, ...) or None when not applicable.
        backend: backend / algorithm name that was running, or None.
        elapsed: seconds the failed stage had been running, or None.
    """

    def __init__(
        self,
        *args: object,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(*args)
        self.stage = stage
        self.backend = backend
        self.elapsed = elapsed

    def context_suffix(self) -> str:
        """Human-readable ``[stage=... backend=... elapsed=...]`` tail."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.elapsed is not None:
            parts.append(f"elapsed={self.elapsed:.3f}s")
        return f" [{' '.join(parts)}]" if parts else ""

    def __str__(self) -> str:
        return super().__str__() + self.context_suffix()


class InvalidInstanceError(ReproError, ValueError):
    """An :class:`~repro.core.job.Instance` violates the problem definition.

    Examples: a job with ``p_j > T``, a deadline before ``r_j + p_j``, a
    non-positive calibration length, or a non-positive machine count.
    """


class InvalidScheduleError(ReproError, ValueError):
    """A schedule object is structurally malformed.

    This is distinct from :class:`InfeasibleScheduleError`: a malformed
    schedule references unknown jobs or machines, while an infeasible one is
    well-formed but violates a scheduling constraint.
    """


class InfeasibleScheduleError(ReproError):
    """A produced schedule failed independent validation.

    The library's algorithms carry proofs of correctness (Lemmas 4-19 of the
    paper); this error firing on a feasible input instance indicates an
    implementation bug, and the attached :class:`ValidationReport` pinpoints
    the violated constraint.
    """

    def __init__(
        self,
        message: str,
        report: object | None = None,
        *,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.report = report


class InfeasibleInstanceError(ReproError):
    """No feasible schedule exists (or none was found) for the instance.

    Raised e.g. when the TISE linear program of Section 3 is infeasible,
    which under Lemma 2 certifies that the long-window instance is not
    feasible on ``m`` machines.  The resilience layer never retries or
    falls back on this error: a different backend cannot make an
    infeasible instance feasible.
    """


class SolverError(ReproError, RuntimeError):
    """An underlying numeric solver (LP / MILP / flow) failed unexpectedly."""


class NumericalDriftError(SolverError):
    """An LP backend's answer failed its numerical sentinels beyond repair.

    Raised by the revised simplex when the post-solve residual checks
    (primal feasibility, basis consistency ``B (B^-1 b) = b``, the
    objective-vs-duals identity) stay above tolerance after the full
    escalation ladder — iterative refinement, forced refactorization, and
    a cold re-solve — has been exhausted.  Subclasses :class:`SolverError`
    so the resilience layer treats it as a retryable backend failure: the
    fallback chain moves on to the next LP backend, and the warm-start
    stash entry that seeded the drifting solve is evicted by the caller.

    ``residuals`` maps sentinel names to their final (scaled) values;
    ``escalations`` records the repair steps that were attempted.
    """

    def __init__(
        self,
        message: str,
        *,
        residuals: dict[str, float] | None = None,
        escalations: tuple[str, ...] = (),
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.residuals = dict(residuals or {})
        self.escalations = tuple(escalations)


class CertificationError(ReproError):
    """A solve result failed its end-to-end certificate in verified mode.

    The result has already been produced — and quarantined: callers
    running with ``verify=True`` never see the offending schedule, only
    this error (or a repaired result from a clean re-solve).  The failed
    :class:`~repro.core.certify.SolveCertificate` rides along as
    ``certificate`` so logs and clients can report the violation verdict.
    """

    def __init__(
        self,
        message: str,
        *,
        certificate: object | None = None,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.certificate = certificate


class LimitExceededError(ReproError, RuntimeError):
    """A search or solve exceeded its configured node or time budget."""


class StageTimeoutError(LimitExceededError):
    """A pipeline stage exceeded its wall-clock budget.

    Subclasses :class:`LimitExceededError` so existing recovery paths (e.g.
    ``AutoMM``'s exact-to-greedy fallback) treat a time-budget exhaustion
    exactly like a node-budget exhaustion.
    """


class ArtifactError(ReproError):
    """A persisted artifact (instance, schedule, journal, bench JSON) is bad.

    Attributes:
        path: filesystem path of the offending artifact, or None.
        field: the offending payload field, when one can be named.
    """

    def __init__(
        self,
        *args: object,
        path: object = None,
        field: str | None = None,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(*args, stage=stage, backend=backend, elapsed=elapsed)
        self.path = str(path) if path is not None else None
        self.field = field

    def context_suffix(self) -> str:
        parts = []
        if self.path is not None:
            parts.append(f"path={self.path}")
        if self.field is not None:
            parts.append(f"field={self.field}")
        tail = super().context_suffix()
        return (f" [{' '.join(parts)}]" if parts else "") + tail


class InvalidArtifactError(ArtifactError, ValueError):
    """An artifact parsed as JSON but its payload is malformed.

    Examples: a missing or mistyped field, a NaN where a finite float is
    required, an unknown format version.  Loaders raise this instead of the
    raw ``KeyError``/``TypeError``/``json.JSONDecodeError`` so callers can
    distinguish "bad file" from a library bug.
    """


class CorruptArtifactError(InvalidArtifactError):
    """An artifact is damaged at the byte level.

    Examples: truncated JSON from a torn write, a checksum-envelope mismatch,
    a journal line whose embedded checksum does not match its content.
    Subclasses :class:`InvalidArtifactError` so one ``except`` covers both
    byte-level and payload-level damage.
    """


class OverloadError(ReproError):
    """The solve service's admission queue is full; the request was shed.

    This is backpressure, not failure: the service rejects immediately
    instead of buffering unboundedly, so a client sees a fast typed "try
    later" rather than a slow timeout.  ``depth`` and ``capacity`` describe
    the queue at rejection time so clients and dashboards can size their
    retry behavior.
    """

    def __init__(
        self,
        *args: object,
        depth: int | None = None,
        capacity: int | None = None,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(*args, stage=stage, backend=backend, elapsed=elapsed)
        self.depth = depth
        self.capacity = capacity

    def context_suffix(self) -> str:
        parts = []
        if self.depth is not None:
            parts.append(f"depth={self.depth}")
        if self.capacity is not None:
            parts.append(f"capacity={self.capacity}")
        tail = super().context_suffix()
        return (f" [{' '.join(parts)}]" if parts else "") + tail


class ServiceShutdownError(ReproError):
    """The solve service is draining or stopped and cannot take the request.

    Raised for submissions after admission closed, and set on the futures
    of queued requests abandoned when a graceful drain ran out of its drain
    deadline.  Distinct from :class:`OverloadError` so clients can tell
    "back off and retry here" from "this server is going away".
    """


class CommitRetractionError(ReproError):
    """An online session tried to retract a committed calibration.

    A calibration whose start time has passed the session's commit horizon
    is physically underway: the machine is warming up or running, and no
    software rollback can un-spend it.  The incremental solver therefore
    treats the committed set as append-only; every mutation re-validates
    that invariant and raises this error instead of installing a state
    that drops, moves, or re-machines a committed calibration.

    Reaching this error in *recovery* (journal replay) would mean the
    durable record itself witnessed a retraction — the chaos suite asserts
    that is unreachable.  ``retracted`` lists the ``(start, machine)``
    pairs that would have been lost.
    """

    def __init__(
        self,
        message: str,
        *,
        retracted: tuple[tuple[float, int], ...] = (),
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.retracted = tuple(retracted)


class StaleFenceError(ReproError):
    """A session write carried an out-of-date fencing token.

    Every (re)open of a session journal bumps an integer fence epoch and
    records it durably.  A writer holding an older token is, by
    definition, operating on a view of the session that a recovery (or
    another server) has superseded — its writes must be rejected, not
    merged, or a half-dead server could silently corrupt a session it no
    longer owns (split brain).  ``presented`` / ``current`` make the
    rejection auditable; clients re-fetch the current token via a read.
    """

    def __init__(
        self,
        message: str,
        *,
        presented: int | None = None,
        current: int | None = None,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.presented = presented
        self.current = current

    def context_suffix(self) -> str:
        parts = []
        if self.presented is not None:
            parts.append(f"presented={self.presented}")
        if self.current is not None:
            parts.append(f"current={self.current}")
        tail = super().context_suffix()
        return (f" [{' '.join(parts)}]" if parts else "") + tail


class SessionConflictError(ReproError, ValueError):
    """A session operation conflicts with what the session already knows.

    Examples: re-submitting a client job id with *different* fields (the
    idempotent-replay contract covers only identical payloads), an arrival
    timestamp behind the session clock, or a job whose deadline can no
    longer be met at its arrival time.  Distinct from
    :class:`InvalidInstanceError` so serving layers can map it to a
    conflict status rather than a generic bad-request.
    """


class FallbacksExhaustedError(SolverError):
    """Every candidate in a fallback chain failed.

    ``attempts`` holds the per-attempt records (:class:`StageAttempt`
    instances from :mod:`repro.core.resilience`) so callers can see what was
    tried; ``last_error`` is the exception raised by the final candidate.
    """

    def __init__(
        self,
        message: str,
        *,
        attempts: tuple[object, ...] = (),
        last_error: BaseException | None = None,
        stage: str | None = None,
        backend: str | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message, stage=stage, backend=backend, elapsed=elapsed)
        self.attempts = tuple(attempts)
        self.last_error = last_error
