"""Exception hierarchy for the ISE reproduction library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidInstanceError(ReproError, ValueError):
    """An :class:`~repro.core.job.Instance` violates the problem definition.

    Examples: a job with ``p_j > T``, a deadline before ``r_j + p_j``, a
    non-positive calibration length, or a non-positive machine count.
    """


class InvalidScheduleError(ReproError, ValueError):
    """A schedule object is structurally malformed.

    This is distinct from :class:`InfeasibleScheduleError`: a malformed
    schedule references unknown jobs or machines, while an infeasible one is
    well-formed but violates a scheduling constraint.
    """


class InfeasibleScheduleError(ReproError):
    """A produced schedule failed independent validation.

    The library's algorithms carry proofs of correctness (Lemmas 4-19 of the
    paper); this error firing on a feasible input instance indicates an
    implementation bug, and the attached :class:`ValidationReport` pinpoints
    the violated constraint.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        self.report = report


class InfeasibleInstanceError(ReproError):
    """No feasible schedule exists (or none was found) for the instance.

    Raised e.g. when the TISE linear program of Section 3 is infeasible,
    which under Lemma 2 certifies that the long-window instance is not
    feasible on ``m`` machines.
    """


class SolverError(ReproError, RuntimeError):
    """An underlying numeric solver (LP / MILP / flow) failed unexpectedly."""


class LimitExceededError(ReproError, RuntimeError):
    """An exact search exceeded its configured node or time budget."""
