"""Jobs and problem instances for the ISE problem.

This module defines the input side of the problem exactly as stated in
Section 1 of the paper: an instance is a set of ``n`` jobs, an integer number
``m`` of identical machines, and a calibration length ``T``.  Each job ``j``
has a processing time ``p_j <= T``, a release time ``r_j``, and a deadline
``d_j >= r_j + p_j``.

Times are floats: the paper explicitly does *not* require integral times
(that is why Lemma 3 — polynomially many calibration points — must be proved
rather than assumed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import InvalidInstanceError
from .tolerance import EPS, geq, leq

__all__ = ["Job", "Instance", "LONG_WINDOW_FACTOR"]


LONG_WINDOW_FACTOR: float = 2.0
"""Definition 1 threshold: a job is *long* iff ``d_j - r_j >= 2 T``."""


@dataclass(frozen=True, slots=True)
class Job:
    """A single nonpreemptive job.

    Attributes:
        job_id: Identifier, unique within an :class:`Instance`.
        release: Release time ``r_j``; the job may not start earlier.
        deadline: Deadline ``d_j``; the job must complete by this time.
        processing: Processing time ``p_j`` at unit speed.
    """

    job_id: int
    release: float
    deadline: float
    processing: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.release):
            raise InvalidInstanceError(f"job {self.job_id}: release must be finite")
        if not math.isfinite(self.deadline):
            raise InvalidInstanceError(f"job {self.job_id}: deadline must be finite")
        if not (math.isfinite(self.processing) and self.processing > 0):
            raise InvalidInstanceError(
                f"job {self.job_id}: processing time must be positive and finite, "
                f"got {self.processing}"
            )
        if not geq(self.deadline, self.release + self.processing):
            raise InvalidInstanceError(
                f"job {self.job_id}: window [{self.release}, {self.deadline}) "
                f"cannot fit processing time {self.processing}"
            )

    @property
    def window(self) -> float:
        """Window length ``d_j - r_j``."""
        return self.deadline - self.release

    @property
    def slack(self) -> float:
        """Scheduling slack ``d_j - r_j - p_j`` (zero means a rigid job)."""
        return self.deadline - self.release - self.processing

    @property
    def latest_start(self) -> float:
        """Latest feasible start time ``d_j - p_j`` at unit speed."""
        return self.deadline - self.processing

    def is_long(self, calibration_length: float) -> bool:
        """Definition 1: True iff the window is at least ``2 T``."""
        return geq(self.window, LONG_WINDOW_FACTOR * calibration_length)

    def contains_interval(self, start: float, end: float, eps: float = EPS) -> bool:
        """True iff ``[start, end)`` lies within the job's window."""
        return geq(start, self.release, eps) and leq(end, self.deadline, eps)

    def shifted(self, delta: float) -> "Job":
        """A copy of this job with its window translated by ``delta``."""
        return Job(
            job_id=self.job_id,
            release=self.release + delta,
            deadline=self.deadline + delta,
            processing=self.processing,
        )


@dataclass(frozen=True)
class Instance:
    """An ISE problem instance (Section 1 of the paper).

    Attributes:
        jobs: The job set ``J``; job ids must be unique.
        machines: The number ``m`` of identical machines available to OPT.
        calibration_length: The calibration length ``T``: a calibration at
            time ``t`` keeps the machine usable during ``[t, t + T)``.
        name: Optional human-readable label (used in reports).
        metadata: Free-form generator metadata (e.g. the witness schedule of
            a feasible-by-construction random instance).
    """

    jobs: tuple[Job, ...]
    machines: int
    calibration_length: float
    name: str = ""
    metadata: Mapping[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        if self.machines < 1:
            raise InvalidInstanceError(
                f"machine count must be >= 1, got {self.machines}"
            )
        if not (
            math.isfinite(self.calibration_length) and self.calibration_length > 0
        ):
            raise InvalidInstanceError(
                f"calibration length must be positive, got {self.calibration_length}"
            )
        seen: set[int] = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise InvalidInstanceError(f"duplicate job id {job.job_id}")
            seen.add(job.job_id)
            if not leq(job.processing, self.calibration_length):
                raise InvalidInstanceError(
                    f"job {job.job_id}: processing time {job.processing} exceeds "
                    f"calibration length {self.calibration_length} (p_j <= T is "
                    "required by the problem statement)"
                )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def job_by_id(self, job_id: int) -> Job:
        """Look up a job by id (O(n); cached mapping via :meth:`job_map`)."""
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(f"no job with id {job_id}")

    def job_map(self) -> dict[int, Job]:
        """A fresh ``{job_id: job}`` dictionary."""
        return {job.job_id: job for job in self.jobs}

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs ``n``."""
        return len(self.jobs)

    @property
    def horizon(self) -> tuple[float, float]:
        """``(min release, max deadline)``; ``(0.0, 0.0)`` when empty."""
        if not self.jobs:
            return (0.0, 0.0)
        return (
            min(job.release for job in self.jobs),
            max(job.deadline for job in self.jobs),
        )

    @property
    def total_work(self) -> float:
        """Total processing requirement ``sum_j p_j``."""
        return sum(job.processing for job in self.jobs)

    def long_jobs(self) -> tuple[Job, ...]:
        """Jobs with long windows per Definition 1 (``d_j - r_j >= 2T``)."""
        return tuple(j for j in self.jobs if j.is_long(self.calibration_length))

    def short_jobs(self) -> tuple[Job, ...]:
        """Jobs with short windows per Definition 1 (``d_j - r_j < 2T``)."""
        return tuple(j for j in self.jobs if not j.is_long(self.calibration_length))

    def restricted_to(self, jobs: Iterable[Job], name_suffix: str = "") -> "Instance":
        """A sub-instance over ``jobs`` with the same ``m`` and ``T``."""
        return Instance(
            jobs=tuple(jobs),
            machines=self.machines,
            calibration_length=self.calibration_length,
            name=(self.name + name_suffix) if self.name else name_suffix,
            metadata=dict(self.metadata),
        )

    def with_machines(self, machines: int) -> "Instance":
        """A copy of this instance with a different machine budget."""
        return Instance(
            jobs=self.jobs,
            machines=machines,
            calibration_length=self.calibration_length,
            name=self.name,
            metadata=dict(self.metadata),
        )


def make_jobs(
    triples: Sequence[tuple[float, float, float]], start_id: int = 0
) -> tuple[Job, ...]:
    """Build jobs from ``(release, deadline, processing)`` triples.

    A convenience for tests and examples; ids are assigned sequentially from
    ``start_id``.
    """
    return tuple(
        Job(job_id=start_id + i, release=r, deadline=d, processing=p)
        for i, (r, d, p) in enumerate(triples)
    )
