"""The combined ISE solver (Section 2, Theorem 1).

Partition the jobs by Definition 1, solve the long-window jobs with the
Section 3 pipeline and the short-window jobs with the Section 4 pipeline on
disjoint machines, and take the union.  "The partitioning itself is trivial,
and this process at most doubles the number of calibrations and machines
beyond either of the algorithms."

This module also computes the certified lower bound and measured
approximation ratio the benches report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.lower_bounds import (
    LowerBoundBreakdown,
    short_window_lower_bound,
    work_lower_bound,
)
from ..longwindow.pipeline import LongWindowConfig, LongWindowResult, LongWindowSolver
from ..mm.base import MMAlgorithm
from ..shortwindow.pipeline import (
    ShortWindowConfig,
    ShortWindowResult,
    ShortWindowSolver,
)
from .job import LONG_WINDOW_FACTOR, Instance
from .partition import JobPartition, partition_jobs
from .schedule import Schedule, empty_schedule
from .validate import check_ise

__all__ = ["ISEConfig", "ISEResult", "solve_ise", "ISESolver"]


@dataclass(frozen=True)
class ISEConfig:
    """Configuration of the combined solver.

    Attributes:
        mm_algorithm: black-box MM algorithm for the short-window side
            (registry name or instance) — the ``A`` of Theorem 1.
        lp_backend: LP backend for the long-window side.
        window_factor: Definition 1 threshold factor (2; ABL2 varies it).
        rounding_threshold: Algorithm 1 threshold (1/2; ABL1 varies it).
        rounding_scheme: ``"greedy"`` (Algorithm 1), ``"ceil"``, or
            ``"best"`` (cheaper of the two; see ABL5).
        prune_empty: drop job-less calibrations from delivered schedules.
        validate: run independent validators on every produced schedule.
        overlapping_calibrations: footnote-3 variant — calibrations may
            overlap on a machine, so the short-window side needs no
            crossing-job machines.
        specialize_unit: route unit-processing integral instances to the
            Bender et al. [5] lazy-binning algorithm (optimal on one
            machine, 2-approximate flavor on several) instead of the
            general reduction — the regime split the paper's introduction
            recommends.  Non-unit instances are unaffected.
    """

    mm_algorithm: str | MMAlgorithm = "best_greedy"
    lp_backend: str = "highs"
    window_factor: float = LONG_WINDOW_FACTOR
    rounding_threshold: float = 0.5
    rounding_scheme: str = "greedy"
    prune_empty: bool = True
    validate: bool = True
    overlapping_calibrations: bool = False
    specialize_unit: bool = False

    def long_config(self) -> LongWindowConfig:
        return LongWindowConfig(
            lp_backend=self.lp_backend,
            rounding_threshold=self.rounding_threshold,
            rounding_scheme=self.rounding_scheme,
            prune_empty=self.prune_empty,
            validate=self.validate,
        )

    def short_config(self) -> ShortWindowConfig:
        return ShortWindowConfig(
            mm_algorithm=self.mm_algorithm,
            gamma=self.window_factor,
            prune_empty=self.prune_empty,
            validate=self.validate,
            overlapping_calibrations=self.overlapping_calibrations,
        )


@dataclass(frozen=True)
class ISEResult:
    """Combined solve output: the schedule plus per-side telemetry."""

    schedule: Schedule
    partition: JobPartition
    long_result: LongWindowResult | None
    short_result: ShortWindowResult | None
    lower_bound: LowerBoundBreakdown
    wall_times: dict[str, float] = field(default_factory=dict, compare=False)

    @property
    def num_calibrations(self) -> int:
        return self.schedule.num_calibrations

    @property
    def machines_used(self) -> int:
        return len(
            {c.machine for c in self.schedule.calibrations}
            | {p.machine for p in self.schedule.placements}
        )

    @property
    def approximation_ratio(self) -> float:
        """Calibrations / certified lower bound (upper bound on true ratio)."""
        lb = self.lower_bound.best
        if lb <= 0:
            return 1.0 if self.num_calibrations == 0 else float("inf")
        return self.num_calibrations / lb


def _is_unit_integral(instance: Instance) -> bool:
    """True iff every job is unit with integral window and T is integral."""
    if abs(instance.calibration_length - round(instance.calibration_length)) > 1e-9:
        return False
    for job in instance.jobs:
        if abs(job.processing - 1.0) > 1e-9:
            return False
        if abs(job.release - round(job.release)) > 1e-9:
            return False
        if abs(job.deadline - round(job.deadline)) > 1e-9:
            return False
    return True


class ISESolver:
    """Theorem 1: combine the Section 3 and Section 4 pipelines."""

    def __init__(self, config: ISEConfig | None = None) -> None:
        self.config = config or ISEConfig()

    def _solve_unit(self, instance: Instance) -> ISEResult:
        """Specialized path: Bender-style lazy binning for unit instances."""
        from ..baselines.bender_unit import lazy_binning  # deferred import

        cfg = self.config
        times: dict[str, float] = {}
        T = instance.calibration_length
        split = partition_jobs(instance, factor=cfg.window_factor)

        tic = time.perf_counter()
        schedule = lazy_binning(instance)
        times["lazy_binning"] = time.perf_counter() - tic
        if cfg.validate:
            tic = time.perf_counter()
            check_ise(instance, schedule, context="unit specialization")
            times["validate"] = time.perf_counter() - tic
        lower = LowerBoundBreakdown(
            work=work_lower_bound(instance.jobs, T),
            long_lp=0.0,
            short_interval=(
                short_window_lower_bound(
                    split.short_jobs, T, gamma=cfg.window_factor
                )
                if split.short_jobs
                else 0.0
            ),
        )
        return ISEResult(
            schedule=schedule,
            partition=split,
            long_result=None,
            short_result=None,
            lower_bound=lower,
            wall_times=times,
        )

    def solve(self, instance: Instance) -> ISEResult:
        cfg = self.config
        if cfg.specialize_unit and instance.jobs and _is_unit_integral(instance):
            return self._solve_unit(instance)
        times: dict[str, float] = {}
        T = instance.calibration_length

        split = partition_jobs(instance, factor=cfg.window_factor)

        long_result: LongWindowResult | None = None
        short_result: ShortWindowResult | None = None
        long_schedule = empty_schedule(T)
        short_schedule = empty_schedule(T)

        if split.long_jobs:
            tic = time.perf_counter()
            long_result = LongWindowSolver(cfg.long_config()).solve(
                instance.restricted_to(split.long_jobs)
            )
            long_schedule = long_result.schedule
            times["long"] = time.perf_counter() - tic
        if split.short_jobs:
            tic = time.perf_counter()
            short_result = ShortWindowSolver(cfg.short_config()).solve(
                instance.restricted_to(split.short_jobs)
            )
            short_schedule = short_result.schedule
            times["short"] = time.perf_counter() - tic

        merged = long_schedule.merged_with(short_schedule).compact_machines()
        if cfg.validate:
            tic = time.perf_counter()
            check_ise(
                instance,
                merged,
                allow_overlapping_calibrations=cfg.overlapping_calibrations,
                context="combined solver",
            )
            times["validate"] = time.perf_counter() - tic

        lower = LowerBoundBreakdown(
            work=work_lower_bound(instance.jobs, T),
            long_lp=(long_result.lower_bound if long_result else 0.0),
            short_interval=(
                short_window_lower_bound(
                    split.short_jobs, T, gamma=cfg.window_factor
                )
                if split.short_jobs
                else 0.0
            ),
        )
        return ISEResult(
            schedule=merged,
            partition=split,
            long_result=long_result,
            short_result=short_result,
            lower_bound=lower,
            wall_times=times,
        )


def solve_ise(instance: Instance, config: ISEConfig | None = None) -> ISEResult:
    """One-call façade over :class:`ISESolver` (the library's main entry point)."""
    return ISESolver(config).solve(instance)
