"""The combined ISE solver (Section 2, Theorem 1).

Partition the jobs by Definition 1, solve the long-window jobs with the
Section 3 pipeline and the short-window jobs with the Section 4 pipeline on
disjoint machines, and take the union.  "The partitioning itself is trivial,
and this process at most doubles the number of calibrations and machines
beyond either of the algorithms."

This module also computes the certified lower bound and measured
approximation ratio the benches report.

Resilience (see :mod:`repro.core.resilience`): with ``strict=False`` the
solver degrades instead of dying.  Backend-level failures are absorbed by
the per-stage fallback chains inside the pipelines; if a whole pipeline
still fails, the solver swaps in an always-feasible baseline for that side
— the LP-free lazy TISE greedy for long-window jobs, one-calibration-per-
job for short-window jobs — re-validates, and flags the result
``degraded`` with a :class:`~repro.core.resilience.ResilienceReport`
describing every attempt, retry, and fallback.  Only a genuinely
infeasible or invalid *instance* still raises in non-strict mode.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Callable, TypeVar, cast

from ..analysis.lower_bounds import (
    LowerBoundBreakdown,
    short_window_lower_bound,
    work_lower_bound,
)
from ..longwindow.pipeline import LongWindowConfig, LongWindowResult, LongWindowSolver
from ..lp import BasisStash, default_stash
from ..mm.base import MMAlgorithm
from ..shortwindow.pipeline import (
    ShortWindowConfig,
    ShortWindowResult,
    ShortWindowSolver,
)
from .certify import SolveCertificate, certify_result
from .errors import (
    CertificationError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    ReproError,
    SolverError,
)
from .job import LONG_WINDOW_FACTOR, Instance
from .parallel import parallel_map
from .partition import JobPartition, partition_jobs
from .resilience import (
    ResiliencePolicy,
    ResilienceReport,
    SolveBudget,
    StageAttempt,
    budget_scope,
)
from .schedule import Schedule, empty_schedule
from .tolerance import EPS, close
from .validate import check_ise

__all__ = ["ISEConfig", "ISEResult", "solve_ise", "ISESolver"]

_HalfT = TypeVar("_HalfT")

# Outcome tuples produced by :func:`_timed_outcome` for the two halves.
_LongOutcome = tuple["LongWindowResult | None", "BaseException | None", float]
_ShortOutcome = tuple["ShortWindowResult | None", "BaseException | None", float]


def _timed_outcome(
    thunk: Callable[[], _HalfT],
) -> tuple[_HalfT | None, BaseException | None, float]:
    """Run ``thunk``, capturing its result *or* exception plus elapsed time.

    Never raises, which lets two half-solves run concurrently and have their
    outcomes absorbed afterwards in a fixed order — errors surface with the
    same precedence as the sequential path.
    """
    tic = time.perf_counter()
    try:
        return thunk(), None, time.perf_counter() - tic
    except Exception as exc:  # noqa: BLE001 — re-raised by the handler
        return None, exc, time.perf_counter() - tic


@dataclass(frozen=True)
class ISEConfig:
    """Configuration of the combined solver.

    Attributes:
        mm_algorithm: black-box MM algorithm for the short-window side
            (registry name or instance) — the ``A`` of Theorem 1.
        lp_backend: LP backend for the long-window side.
        window_factor: Definition 1 threshold factor (2; ABL2 varies it).
        rounding_threshold: Algorithm 1 threshold (1/2; ABL1 varies it).
        rounding_scheme: ``"greedy"`` (Algorithm 1), ``"ceil"``, or
            ``"best"`` (cheaper of the two; see ABL5).
        prune_empty: drop job-less calibrations from delivered schedules.
        validate: run independent validators on every produced schedule.
        overlapping_calibrations: footnote-3 variant — calibrations may
            overlap on a machine, so the short-window side needs no
            crossing-job machines.
        specialize_unit: route unit-processing integral instances to the
            Bender et al. [5] lazy-binning algorithm (optimal on one
            machine, 2-approximate flavor on several) instead of the
            general reduction — the regime split the paper's introduction
            recommends.  Non-unit instances are unaffected.
        strict: when True (default), failures propagate as typed errors;
            when False, the resilience layer's fallback chains and
            pipeline degradation guarantee a validated feasible schedule
            whenever the instance admits one.
        timeout: wall-clock seconds for the whole solve (None = unlimited).
            Shorthand for a :class:`SolveBudget`-only resilience policy.
        resilience: full failure-handling policy; when set it overrides
            ``strict``/``timeout``.
        max_workers: parallelism for the independent sub-solves — the
            long/short halves run concurrently (thread mode: the halves
            mostly release the GIL inside HiGHS/numpy) and the short side's
            per-interval MM solves fan out over a worker pool.  None or 1
            (the default) is fully serial; the parallel path is
            output-identical to the serial one.
        parallel_mode: worker pool kind for the per-interval MM fan-out —
            ``"auto"``/``"process"``/``"thread"``/``"serial"`` (see
            :mod:`repro.core.parallel`).
        lp_warm_start: warm-start repeated long-window LP solves from the
            process-local :func:`~repro.lp.default_stash` (or from
            ``lp_warm_stash`` when one is supplied).  A plain boolean so
            configs stay picklable across sweep process pools — each worker
            process materializes its own stash lazily, which is how the
            previous shard's basis carries forward within a worker.
            Results are bit-identical to cold solves (exact-content keys;
            a stale basis falls back to phase 1 inside the solver).
        lp_warm_stash: an explicit :class:`~repro.lp.BasisStash` to use
            instead of the process default (the serve layer passes a
            per-worker stash).  Implies warm starting when set.  Not
            picklable — leave None for configs that cross process pools.
        verify: verified mode — issue a :class:`~repro.core.certify.
            SolveCertificate` for every result via an independent
            re-validation pass and attach it to ``ISEResult.certificate``.
            A result whose certificate fails is *quarantined*: the solver
            raises :class:`~repro.core.errors.CertificationError` instead
            of returning the schedule.  Orthogonal to ``validate`` — the
            certificate does not trust the solve path's own checks.
    """

    mm_algorithm: str | MMAlgorithm = "best_greedy"
    lp_backend: str = "highs"
    window_factor: float = LONG_WINDOW_FACTOR
    rounding_threshold: float = 0.5
    rounding_scheme: str = "greedy"
    prune_empty: bool = True
    validate: bool = True
    overlapping_calibrations: bool = False
    specialize_unit: bool = False
    strict: bool = True
    timeout: float | None = None
    resilience: ResiliencePolicy | None = None
    max_workers: int | None = None
    parallel_mode: str = "auto"
    lp_warm_start: bool = False
    lp_warm_stash: BasisStash | None = None
    verify: bool = False

    def resilience_policy(self) -> ResiliencePolicy:
        """The effective policy (explicit one, or built from strict/timeout)."""
        if self.resilience is not None:
            return self.resilience
        budget = (
            SolveBudget(wall_clock=self.timeout)
            if self.timeout is not None
            else None
        )
        return ResiliencePolicy(strict=self.strict, budget=budget)

    def long_config(self) -> LongWindowConfig:
        stash = self.lp_warm_stash
        if stash is None and self.lp_warm_start:
            stash = default_stash()
        return LongWindowConfig(
            lp_backend=self.lp_backend,
            rounding_threshold=self.rounding_threshold,
            rounding_scheme=self.rounding_scheme,
            prune_empty=self.prune_empty,
            validate=self.validate,
            resilience=self.resilience_policy(),
            lp_warm_stash=stash,
        )

    def short_config(self) -> ShortWindowConfig:
        return ShortWindowConfig(
            mm_algorithm=self.mm_algorithm,
            gamma=self.window_factor,
            prune_empty=self.prune_empty,
            validate=self.validate,
            overlapping_calibrations=self.overlapping_calibrations,
            resilience=self.resilience_policy(),
            max_workers=self.max_workers,
            parallel_mode=self.parallel_mode,
        )


@dataclass(frozen=True)
class ISEResult:
    """Combined solve output: the schedule plus per-side telemetry."""

    schedule: Schedule
    partition: JobPartition
    long_result: LongWindowResult | None
    short_result: ShortWindowResult | None
    lower_bound: LowerBoundBreakdown
    wall_times: dict[str, float] = field(default_factory=dict, compare=False)
    resilience: ResilienceReport | None = field(default=None, compare=False)
    certificate: SolveCertificate | None = field(default=None, compare=False)

    @property
    def degraded(self) -> bool:
        """True when any fallback or degradation produced part of the answer."""
        return self.resilience is not None and self.resilience.degraded

    @property
    def num_calibrations(self) -> int:
        return self.schedule.num_calibrations

    @property
    def machines_used(self) -> int:
        return len(
            {c.machine for c in self.schedule.calibrations}
            | {p.machine for p in self.schedule.placements}
        )

    @property
    def approximation_ratio(self) -> float:
        """Calibrations / certified lower bound (upper bound on true ratio)."""
        lb = self.lower_bound.best
        if lb <= 0:
            return 1.0 if self.num_calibrations == 0 else float("inf")
        return self.num_calibrations / lb


def _is_unit_integral(instance: Instance, eps: float = EPS) -> bool:
    """True iff every job is unit with integral window and T is integral.

    All comparisons go through :mod:`repro.core.tolerance` — the single
    tolerance source for the library — so the unit-specialization routing
    agrees with every validator about what "integral" means.
    """
    T = instance.calibration_length
    if not close(T, round(T), eps):
        return False
    for job in instance.jobs:
        if not close(job.processing, 1.0, eps):
            return False
        if not close(job.release, round(job.release), eps):
            return False
        if not close(job.deadline, round(job.deadline), eps):
            return False
    return True


class ISESolver:
    """Theorem 1: combine the Section 3 and Section 4 pipelines."""

    def __init__(self, config: ISEConfig | None = None) -> None:
        self.config = config or ISEConfig()

    def _solve_unit(self, instance: Instance) -> ISEResult:
        """Specialized path: Bender-style lazy binning for unit instances."""
        from ..baselines.bender_unit import lazy_binning  # deferred import

        cfg = self.config
        times: dict[str, float] = {}
        T = instance.calibration_length
        split = partition_jobs(instance, factor=cfg.window_factor)

        tic = time.perf_counter()
        schedule = lazy_binning(instance)
        times["lazy_binning"] = time.perf_counter() - tic
        if cfg.validate:
            tic = time.perf_counter()
            check_ise(instance, schedule, context="unit specialization")
            times["validate"] = time.perf_counter() - tic
        lower = LowerBoundBreakdown(
            work=work_lower_bound(instance.jobs, T),
            long_lp=0.0,
            short_interval=(
                short_window_lower_bound(
                    split.short_jobs, T, gamma=cfg.window_factor
                )
                if split.short_jobs
                else 0.0
            ),
        )
        return self._certified(
            instance,
            ISEResult(
                schedule=schedule,
                partition=split,
                long_result=None,
                short_result=None,
                lower_bound=lower,
                wall_times=times,
            ),
        )

    def _certified(self, instance: Instance, result: ISEResult) -> ISEResult:
        """Verified mode: attach a certificate or quarantine the result.

        No-op unless ``verify`` is on.  The certificate comes from an
        independent re-validation pass (:func:`~repro.core.certify.
        certify_result`); a failing one means the result must never reach
        the caller, so the quarantined schedule leaves this method only
        inside the raised :class:`CertificationError`'s certificate — not
        as a return value.
        """
        cfg = self.config
        if not cfg.verify:
            return result
        tic = time.perf_counter()
        certificate = certify_result(
            instance,
            result,
            overlapping_calibrations=cfg.overlapping_calibrations,
        )
        result.wall_times["certify"] = time.perf_counter() - tic
        if not certificate.ok:
            raise CertificationError(
                "solve result failed certification and was quarantined: "
                + certificate.violation_detail,
                certificate=certificate,
                stage="certify",
            )
        return replace(result, certificate=certificate)

    def _degrade(
        self,
        report: ResilienceReport,
        stage: str,
        primary: str,
        fallback_name: str,
        error: BaseException,
        elapsed: float,
        rescue,
    ) -> Schedule:
        """Record a failed pipeline and run its always-feasible rescue.

        The rescue runs outside any budget scope: it is cheap by
        construction, and killing the last line of defense with the same
        deadline that killed the optimizing pipeline would defeat the
        point of degrading.
        """
        from .errors import StageTimeoutError

        outcome = "timeout" if isinstance(error, StageTimeoutError) else "failed"
        report.record(
            StageAttempt(
                stage=stage,
                backend=primary,
                outcome=outcome,
                elapsed=elapsed,
                error=f"{type(error).__name__}: {error}",
            )
        )
        tic = time.perf_counter()
        with budget_scope(None):  # mask the (possibly expired) deadline
            schedule = rescue()
        report.record(
            StageAttempt(
                stage=stage,
                backend=fallback_name,
                outcome="ok",
                elapsed=time.perf_counter() - tic,
            )
        )
        report.record_fallback(stage, primary, fallback_name)
        return schedule

    def solve(self, instance: Instance) -> ISEResult:
        cfg = self.config
        if cfg.specialize_unit and instance.jobs and _is_unit_integral(instance):
            return self._solve_unit(instance)
        policy = cfg.resilience_policy()
        report = ResilienceReport()
        times: dict[str, float] = {}
        T = instance.calibration_length

        split = partition_jobs(instance, factor=cfg.window_factor)

        long_result: LongWindowResult | None = None
        short_result: ShortWindowResult | None = None
        long_schedule = empty_schedule(T)
        short_schedule = empty_schedule(T)
        degrade_ok = not policy.strict and policy.pipeline_fallback

        def handle_long(
            outcome: tuple[LongWindowResult | None, BaseException | None, float],
            long_instance: Instance,
        ) -> None:
            nonlocal long_result, long_schedule
            result, error, elapsed = outcome
            tic = time.perf_counter()
            if error is not None:
                if isinstance(error, (InfeasibleInstanceError, InvalidInstanceError)):
                    raise error  # the instance is at fault; degrading cannot help
                if not degrade_ok:
                    if isinstance(error, ReproError):
                        raise error
                    raise SolverError(
                        f"long-window pipeline crashed: {error}",
                        stage="long_pipeline",
                    ) from error
                from ..baselines.greedy_tise import lazy_tise_greedy

                long_schedule = self._degrade(
                    report,
                    stage="long_pipeline",
                    primary="theorem12",
                    fallback_name="greedy_tise",
                    error=error,
                    elapsed=elapsed,
                    rescue=lambda: lazy_tise_greedy(long_instance),
                )
                check_ise(
                    long_instance,
                    long_schedule,
                    context="degraded long-window fallback",
                )
            elif result is not None:
                long_result = result
                long_schedule = result.schedule
                report.merge(result.resilience)
            times["long"] = elapsed + (time.perf_counter() - tic)

        def handle_short(
            outcome: tuple[ShortWindowResult | None, BaseException | None, float],
            short_instance: Instance,
        ) -> None:
            nonlocal short_result, short_schedule
            result, error, elapsed = outcome
            tic = time.perf_counter()
            if error is not None:
                if isinstance(error, (InfeasibleInstanceError, InvalidInstanceError)):
                    raise error
                if not degrade_ok:
                    if isinstance(error, ReproError):
                        raise error
                    raise SolverError(
                        f"short-window pipeline crashed: {error}",
                        stage="short_pipeline",
                    ) from error
                from ..baselines.naive import one_calibration_per_job

                short_schedule = self._degrade(
                    report,
                    stage="short_pipeline",
                    primary="theorem20",
                    fallback_name="one_calibration_per_job",
                    error=error,
                    elapsed=elapsed,
                    rescue=lambda: one_calibration_per_job(short_instance),
                )
                check_ise(
                    short_instance,
                    short_schedule,
                    context="degraded short-window fallback",
                )
            elif result is not None:
                short_result = result
                short_schedule = result.schedule
                report.merge(result.resilience)
            times["short"] = elapsed + (time.perf_counter() - tic)

        parallel_halves = (
            cfg.max_workers is not None
            and cfg.max_workers > 1
            and cfg.parallel_mode != "serial"
            and bool(split.long_jobs)
            and bool(split.short_jobs)
        )

        with ExitStack() as stack:
            budget = policy.fresh_budget()
            if budget is not None:
                stack.enter_context(budget_scope(budget))

            long_instance: Instance | None = (
                instance.restricted_to(split.long_jobs) if split.long_jobs else None
            )
            short_instance: Instance | None = (
                instance.restricted_to(split.short_jobs) if split.short_jobs else None
            )

            def run_long(
                inst: Instance,
            ) -> tuple[LongWindowResult | None, BaseException | None, float]:
                return _timed_outcome(
                    lambda: LongWindowSolver(cfg.long_config()).solve(inst)
                )

            def run_short(
                inst: Instance,
            ) -> tuple[ShortWindowResult | None, BaseException | None, float]:
                return _timed_outcome(
                    lambda: ShortWindowSolver(cfg.short_config()).solve(inst)
                )

            if (
                parallel_halves
                and long_instance is not None
                and short_instance is not None
            ):
                # The halves solve disjoint job sets on disjoint machines, so
                # they can run concurrently.  Thread mode keeps the ambient
                # budget (and any deterministic test clock) genuinely shared;
                # the short side may still fan its MM solves out to a process
                # pool of its own.  _timed_outcome never raises, so both
                # outcomes always materialize; they are then absorbed in the
                # same (long, short) order as the serial path, preserving
                # error precedence and report ordering exactly.
                li, si = long_instance, short_instance
                outcomes = parallel_map(
                    lambda side: run_long(li) if side == "long" else run_short(si),
                    ["long", "short"],
                    max_workers=2,
                    mode="thread",
                )
                handle_long(cast("_LongOutcome", outcomes[0]), li)
                handle_short(cast("_ShortOutcome", outcomes[1]), si)
            else:
                if long_instance is not None:
                    handle_long(run_long(long_instance), long_instance)
                if short_instance is not None:
                    handle_short(run_short(short_instance), short_instance)

        merged = long_schedule.merged_with(short_schedule).compact_machines()
        if cfg.validate:
            tic = time.perf_counter()
            check_ise(
                instance,
                merged,
                allow_overlapping_calibrations=cfg.overlapping_calibrations,
                context="combined solver",
            )
            times["validate"] = time.perf_counter() - tic

        lower = LowerBoundBreakdown(
            work=work_lower_bound(instance.jobs, T),
            long_lp=(long_result.lower_bound if long_result else 0.0),
            short_interval=(
                short_window_lower_bound(
                    split.short_jobs, T, gamma=cfg.window_factor
                )
                if split.short_jobs
                else 0.0
            ),
        )
        report.record_times(times)
        return self._certified(
            instance,
            ISEResult(
                schedule=merged,
                partition=split,
                long_result=long_result,
                short_result=short_result,
                lower_bound=lower,
                wall_times=times,
                resilience=report,
            ),
        )


def solve_ise(instance: Instance, config: ISEConfig | None = None) -> ISEResult:
    """One-call façade over :class:`ISESolver` (the library's main entry point)."""
    return ISESolver(config).solve(instance)
