"""Independent feasibility validators for ISE, TISE, and MM schedules.

These validators are the library's ground truth: every algorithm's output is
checked against them in tests and benches, so a bug in a pipeline cannot
silently produce an invalid "solution".  They re-derive feasibility from the
problem definitions alone (Section 1 for ISE, Section 3 for the TISE
restriction) and share no code with the solvers.

Each validator returns a :class:`ValidationReport` listing every violation it
found (never just the first), which makes failure-injection tests and
debugging precise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from .calibration import CalibrationSchedule
from .errors import InfeasibleScheduleError
from .job import Instance, Job
from .schedule import Schedule, ScheduledJob
from .tolerance import EPS, geq, gt, leq

__all__ = [
    "ViolationKind",
    "Violation",
    "ValidationReport",
    "validate_ise",
    "validate_tise",
    "check_ise",
    "check_tise",
]


class ViolationKind(Enum):
    """Machine-readable classification of feasibility violations."""

    UNKNOWN_JOB = "unknown_job"
    MISSING_JOB = "missing_job"
    RELEASE = "release"
    DEADLINE = "deadline"
    NO_CALIBRATION = "no_calibration"
    JOB_OVERLAP = "job_overlap"
    CALIBRATION_OVERLAP = "calibration_overlap"
    TISE_WINDOW = "tise_window"
    MACHINE_BUDGET = "machine_budget"


@dataclass(frozen=True, slots=True)
class Violation:
    """One feasibility violation, with the ids needed to locate it."""

    kind: ViolationKind
    message: str
    job_id: int | None = None
    machine: int | None = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.kind.value}] {self.message}"


@dataclass(frozen=True)
class ValidationReport:
    """The outcome of validating one schedule against one instance."""

    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def by_kind(self, kind: ViolationKind) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.kind == kind)

    def summary(self) -> str:
        if self.ok:
            return "feasible"
        counts: dict[ViolationKind, int] = {}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        parts = ", ".join(f"{k.value}={c}" for k, c in sorted(counts.items(), key=lambda kv: kv[0].value))
        return f"{len(self.violations)} violations ({parts})"

    def detail(self, limit: int = 5) -> str:
        """The first ``limit`` violations, one per line, with identifiers.

        Meant for exception messages and service error payloads: a count
        alone ("3 violations") is not actionable, but "[deadline] job 7
        completes at 31 after its deadline 30" is.  Lines beyond ``limit``
        are elided with a count so messages stay bounded.
        """
        if self.ok:
            return "feasible"
        lines = [
            f"[{v.kind.value}] {v.message}"
            for v in self.violations[: max(0, limit)]
        ]
        hidden = len(self.violations) - len(lines)
        if hidden > 0:
            lines.append(f"... and {hidden} more")
        return "\n".join(lines)


def _window_violations(
    job: Job, placement: ScheduledJob, speed: float, eps: float
) -> list[Violation]:
    out: list[Violation] = []
    end = placement.end(job.processing, speed)
    if not geq(placement.start, job.release, eps):
        out.append(
            Violation(
                ViolationKind.RELEASE,
                f"job {job.job_id} starts at {placement.start} before its "
                f"release {job.release}",
                job_id=job.job_id,
                machine=placement.machine,
            )
        )
    if not leq(end, job.deadline, eps):
        out.append(
            Violation(
                ViolationKind.DEADLINE,
                f"job {job.job_id} completes at {end} after its deadline "
                f"{job.deadline}",
                job_id=job.job_id,
                machine=placement.machine,
            )
        )
    return out


def _machine_overlap_violations(
    placements: Sequence[ScheduledJob],
    job_map: dict[int, Job],
    speed: float,
    eps: float,
) -> list[Violation]:
    out: list[Violation] = []
    by_machine: dict[int, list[ScheduledJob]] = {}
    for placement in placements:
        if placement.job_id in job_map:
            by_machine.setdefault(placement.machine, []).append(placement)
    for machine, plist in by_machine.items():
        plist.sort()
        for prev, cur in zip(plist, plist[1:]):
            prev_end = prev.end(job_map[prev.job_id].processing, speed)
            if gt(prev_end, cur.start, eps):
                out.append(
                    Violation(
                        ViolationKind.JOB_OVERLAP,
                        f"jobs {prev.job_id} and {cur.job_id} overlap on "
                        f"machine {machine}: [{prev.start}, {prev_end}) vs "
                        f"start {cur.start}",
                        job_id=cur.job_id,
                        machine=machine,
                    )
                )
    return out


def _calibration_violations(
    calibrations: CalibrationSchedule, eps: float
) -> list[Violation]:
    return [
        Violation(
            ViolationKind.CALIBRATION_OVERLAP,
            f"calibrations at {a.start} and {b.start} overlap on machine "
            f"{a.machine} (T={calibrations.calibration_length})",
            machine=a.machine,
        )
        for a, b in calibrations.overlap_violations(eps)
    ]


def validate_ise(
    instance: Instance,
    schedule: Schedule,
    *,
    require_all_jobs: bool = True,
    max_machines: int | None = None,
    allow_overlapping_calibrations: bool = False,
    eps: float = EPS,
) -> ValidationReport:
    """Validate a schedule against the ISE feasibility definition.

    Checks, in the order of the paper's Section 1 definition:

    * every instance job is placed exactly once (``require_all_jobs``);
    * every placement respects release time and deadline at the schedule's
      speed;
    * every placement lies entirely within one calibrated interval on its
      machine;
    * no two jobs overlap on one machine;
    * no two calibrated intervals overlap on one machine — unless
      ``allow_overlapping_calibrations`` is set, which selects the paper's
      footnote-3 problem variant where calibrations may be invoked less
      than ``T`` apart;
    * optionally, at most ``max_machines`` distinct machines are used.
    """
    violations: list[Violation] = []
    job_map = instance.job_map()

    placed_ids: set[int] = set()
    for placement in schedule.placements:
        job = job_map.get(placement.job_id)
        if job is None:
            violations.append(
                Violation(
                    ViolationKind.UNKNOWN_JOB,
                    f"placement references unknown job id {placement.job_id}",
                    job_id=placement.job_id,
                )
            )
            continue
        placed_ids.add(placement.job_id)
        violations.extend(_window_violations(job, placement, schedule.speed, eps))
        if schedule.enclosing_calibration(placement, job.processing, eps) is None:
            end = placement.end(job.processing, schedule.speed)
            violations.append(
                Violation(
                    ViolationKind.NO_CALIBRATION,
                    f"job {job.job_id} runs on machine {placement.machine} "
                    f"during [{placement.start}, {end}) with no enclosing "
                    "calibration",
                    job_id=job.job_id,
                    machine=placement.machine,
                )
            )

    if require_all_jobs:
        for job in instance.jobs:
            if job.job_id not in placed_ids:
                violations.append(
                    Violation(
                        ViolationKind.MISSING_JOB,
                        f"job {job.job_id} is not scheduled",
                        job_id=job.job_id,
                    )
                )

    violations.extend(
        _machine_overlap_violations(
            schedule.placements, job_map, schedule.speed, eps
        )
    )
    if not allow_overlapping_calibrations:
        violations.extend(_calibration_violations(schedule.calibrations, eps))

    if max_machines is not None:
        used = {c.machine for c in schedule.calibrations} | {
            p.machine for p in schedule.placements
        }
        if len(used) > max_machines:
            violations.append(
                Violation(
                    ViolationKind.MACHINE_BUDGET,
                    f"schedule uses {len(used)} machines, budget is "
                    f"{max_machines}",
                )
            )

    return ValidationReport(violations=tuple(violations))


def validate_tise(
    instance: Instance,
    schedule: Schedule,
    *,
    require_all_jobs: bool = True,
    max_machines: int | None = None,
    eps: float = EPS,
) -> ValidationReport:
    """Validate against the TISE restriction on top of ISE feasibility.

    Section 3: a job may be scheduled inside a calibration starting at ``t``
    only if ``r_j <= t <= d_j - T``, i.e. the *entire* calibrated interval
    lies within the job's window.
    """
    base = validate_ise(
        instance,
        schedule,
        require_all_jobs=require_all_jobs,
        max_machines=max_machines,
        eps=eps,
    )
    violations = list(base.violations)
    job_map = instance.job_map()
    T = schedule.calibration_length
    for placement in schedule.placements:
        job = job_map.get(placement.job_id)
        if job is None:
            continue
        cal = schedule.enclosing_calibration(placement, job.processing, eps)
        if cal is None:
            continue  # already reported by validate_ise
        if not (geq(cal.start, job.release, eps) and leq(cal.start + T, job.deadline, eps)):
            violations.append(
                Violation(
                    ViolationKind.TISE_WINDOW,
                    f"job {job.job_id} sits in calibration [{cal.start}, "
                    f"{cal.start + T}) not contained in its window "
                    f"[{job.release}, {job.deadline}) (TISE restriction)",
                    job_id=job.job_id,
                    machine=placement.machine,
                )
            )
    return ValidationReport(violations=tuple(violations))


def check_ise(
    instance: Instance,
    schedule: Schedule,
    *,
    require_all_jobs: bool = True,
    max_machines: int | None = None,
    allow_overlapping_calibrations: bool = False,
    context: str = "",
) -> None:
    """Raise :class:`InfeasibleScheduleError` unless the schedule is ISE-valid."""
    report = validate_ise(
        instance,
        schedule,
        require_all_jobs=require_all_jobs,
        max_machines=max_machines,
        allow_overlapping_calibrations=allow_overlapping_calibrations,
    )
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise InfeasibleScheduleError(
            f"{prefix}schedule failed ISE validation: {report.summary()}\n"
            f"{report.detail()}",
            report=report,
        )


def check_tise(
    instance: Instance,
    schedule: Schedule,
    *,
    require_all_jobs: bool = True,
    max_machines: int | None = None,
    context: str = "",
) -> None:
    """Raise :class:`InfeasibleScheduleError` unless the schedule is TISE-valid."""
    report = validate_tise(
        instance,
        schedule,
        require_all_jobs=require_all_jobs,
        max_machines=max_machines,
    )
    if not report.ok:
        prefix = f"{context}: " if context else ""
        raise InfeasibleScheduleError(
            f"{prefix}schedule failed TISE validation: {report.summary()}\n"
            f"{report.detail()}",
            report=report,
        )
