"""The resilience layer: solve budgets, fallback chains, and reports.

The ROADMAP's north star is a production-scale service, and a service must
*degrade, not die*: a hung LP solve, a crashed backend, or an exploding
exact search should cost solution quality, never availability.  The paper's
own structure licenses this — the Section 4 reduction is black-box in the
MM algorithm (Theorem 20), so swapping a failed or slow backend for a
cheaper one preserves correctness (only the approximation factor moves),
and the Section 3 LP side can always be replaced wholesale by the LP-free
lazy greedy baseline.

Three cooperating pieces:

* :class:`SolveBudget` — a wall-clock deadline plus optional per-stage
  timeouts.  The budget is installed as ambient context for the duration of
  a solve (:func:`budget_scope`), so deep inner loops — the simplex pivot
  loop, the exact branch-and-bound — can poll it cheaply via
  :func:`check_budget` without threading a parameter through every call.
  The clock is injectable, which makes timeout behavior deterministic in
  tests (see :class:`repro.testing.faults.FakeClock`).

* :class:`ResiliencePolicy` + :func:`run_with_fallbacks` — declarative
  fallback chains (LP: ``highs -> simplex``; MM: anything ``->
  best_greedy -> greedy_edf``) with per-candidate retry/backoff, executed
  by one generic engine that records every attempt.

* :class:`ResilienceReport` — the attempt/retry/fallback/wall-time record
  attached to results so operators can see *how* an answer was produced,
  not just what it is.

``strict`` mode (the default) disables fallbacks and degradation: errors
propagate, carrying structured context.  ``strict=False`` turns every
failure into the best feasible answer the chain can still produce.
"""

from __future__ import annotations

import math
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    TypeVar,
    runtime_checkable,
)

from .errors import (
    FallbacksExhaustedError,
    InfeasibleInstanceError,
    InvalidInstanceError,
    ReproError,
    SolverError,
    StageTimeoutError,
)

__all__ = [
    "SolveBudget",
    "StageGuard",
    "RetryPolicy",
    "ResiliencePolicy",
    "FallbackGate",
    "StageAttempt",
    "ResilienceReport",
    "budget_scope",
    "current_budget",
    "check_budget",
    "run_with_fallbacks",
    "DEFAULT_LP_CHAIN",
    "DEFAULT_MM_CHAIN",
]

T = TypeVar("T")

#: Default LP fallback order (primary first; see ``ResiliencePolicy.lp_chain``).
DEFAULT_LP_CHAIN: tuple[str, ...] = ("highs", "simplex")

#: Default MM fallback order.  ``best_greedy`` is polynomial and total
#: (never raises on a feasible MM sub-instance); ``greedy_edf`` backs it up
#: so that even a fault injected into ``best_greedy`` itself leaves a
#: distinct candidate.
DEFAULT_MM_CHAIN: tuple[str, ...] = ("best_greedy", "greedy_edf")


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


@dataclass
class SolveBudget:
    """A wall-clock budget for one solve, with optional per-stage timeouts.

    Attributes:
        wall_clock: total seconds the solve may spend, or None (unlimited).
        stage_timeouts: per-stage seconds, keyed by stage name (``"lp"``,
            ``"mm"``, ``"long"``, ``"short"``); stages absent from the map
            are limited only by the global deadline.
        clock: monotonic time source; injectable for deterministic tests.
        started_at: set by :meth:`start`; None until the solve begins.
    """

    wall_clock: float | None = None
    stage_timeouts: Mapping[str, float] = field(default_factory=dict)
    clock: Callable[[], float] = time.monotonic
    started_at: float | None = None

    def fresh(self) -> "SolveBudget":
        """An unstarted copy — budgets held in configs are templates."""
        return replace(self, started_at=None)

    def subbudget(self) -> "SolveBudget":
        """An unstarted budget carrying the time *remaining* right now.

        This is how a budget crosses an execution boundary that its ambient
        context-local cannot (a worker process, a thread pool without
        context propagation): the parent snapshots ``remaining()`` into a
        fresh budget, ships it to the worker, and the worker re-enters it
        via :func:`budget_scope`.  Stage timeouts are copied through; an
        injected test clock is deliberately *not* (a fake clock's ticks do
        not cross process boundaries — the snapshot freezes its verdict
        instead: an expired parent yields a ``wall_clock=0`` child).
        """
        remaining = self.remaining()
        wall = None if math.isinf(remaining) else max(0.0, remaining)
        return SolveBudget(
            wall_clock=wall, stage_timeouts=dict(self.stage_timeouts)
        )

    def start(self) -> "SolveBudget":
        """Begin the countdown (idempotent); returns self for chaining."""
        if self.started_at is None:
            self.started_at = self.clock()
        return self

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return max(0.0, self.clock() - self.started_at)

    def remaining(self) -> float:
        """Seconds left on the global deadline (``inf`` when unlimited)."""
        if self.wall_clock is None:
            return float("inf")
        return self.wall_clock - self.elapsed()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def ensure(self, stage: str, backend: str | None = None) -> None:
        """Raise :class:`StageTimeoutError` if the global deadline passed."""
        if self.expired:
            raise StageTimeoutError(
                f"solve budget of {self.wall_clock:g}s exhausted",
                stage=stage,
                backend=backend,
                elapsed=self.elapsed(),
            )

    def stage_limit(self, stage: str) -> float:
        """Seconds available to ``stage`` right now (stage cap ∧ global)."""
        limit = self.remaining()
        stage_cap = self.stage_timeouts.get(stage)
        if stage_cap is not None:
            limit = min(limit, stage_cap)
        return limit

    def guard(self, stage: str, backend: str | None = None) -> "StageGuard":
        """A per-stage guard enforcing both stage and global limits."""
        self.start()
        return StageGuard(budget=self, stage=stage, backend=backend)


@dataclass
class StageGuard:
    """Tracks one stage's elapsed time against its (and the global) limit."""

    budget: SolveBudget
    stage: str
    backend: str | None = None
    stage_started: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.stage_started = self.budget.clock()

    def elapsed(self) -> float:
        return max(0.0, self.budget.clock() - self.stage_started)

    def remaining(self) -> float:
        """Seconds left for this stage (min of stage cap and global)."""
        limit = self.budget.remaining()
        cap = self.budget.stage_timeouts.get(self.stage)
        if cap is not None:
            limit = min(limit, cap - self.elapsed())
        return limit

    def ensure(self) -> None:
        """Raise :class:`StageTimeoutError` when the stage is out of time."""
        if self.remaining() <= 0.0:
            raise StageTimeoutError(
                f"stage {self.stage!r} exceeded its time budget",
                stage=self.stage,
                backend=self.backend,
                elapsed=self.elapsed(),
            )


_AMBIENT_BUDGET: ContextVar[SolveBudget | None] = ContextVar(
    "repro_solve_budget", default=None
)


def current_budget() -> SolveBudget | None:
    """The budget installed by the innermost :func:`budget_scope`, if any."""
    return _AMBIENT_BUDGET.get()


@contextmanager
def budget_scope(budget: SolveBudget | None) -> Iterator[SolveBudget | None]:
    """Install ``budget`` as the ambient budget for the dynamic extent.

    Passing None installs "no budget" (masking any outer scope), which the
    degraded-mode fallbacks use so a cheap rescue path is never itself
    killed by the deadline that killed the optimizing path.
    """
    if budget is not None:
        budget.start()
    token = _AMBIENT_BUDGET.set(budget)
    try:
        yield budget
    finally:
        _AMBIENT_BUDGET.reset(token)


def check_budget(stage: str, backend: str | None = None) -> None:
    """Poll the ambient budget from an inner loop (no-op without a scope).

    This is the cheap hook the simplex pivot loop and the exact search call
    every few hundred iterations/nodes: one contextvar read, and a clock
    read only when a budget is actually installed.
    """
    budget = _AMBIENT_BUDGET.get()
    if budget is not None:
        budget.ensure(stage, backend)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try each fallback candidate, and how to back off.

    Attributes:
        attempts: tries per candidate (1 = no retry).  Retrying makes sense
            for transiently flaky backends; deterministic failures fall
            through to the next candidate after the retries.
        backoff: base sleep in seconds between retries of one candidate,
            doubling per retry.  0.0 (default) sleeps not at all.
        jitter: fraction of each backoff delay that is randomized (bounded
            full jitter): the actual sleep is uniform in
            ``[delay * (1 - jitter), delay]``.  0.0 (default) keeps the
            historical deterministic behavior; values near 1.0 approach
            classic full jitter.  Jitter de-synchronizes retry herds — a
            fleet of clients whose first attempts failed together would
            otherwise all come back on the same doubling schedule.
        sleep: injectable sleeper (tests pass a no-op).
        rng: injectable uniform source in ``[0, 1)`` (the library's RNG
            convention: tests pass a deterministic stub).
    """

    attempts: int = 1
    backoff: float = 0.0
    jitter: float = 0.0
    sleep: Callable[[float], None] = time.sleep
    rng: Callable[[], float] = random.random

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def backoff_delay(self, attempt: int) -> float:
        """The (possibly jittered) delay before retry number ``attempt``."""
        if attempt <= 1 or self.backoff <= 0.0:
            return 0.0
        delay = self.backoff * (2 ** (attempt - 2))
        if self.jitter > 0.0:
            low = delay * (1.0 - self.jitter)
            delay = low + (delay - low) * self.rng()
        return delay

    def pause_before(
        self, attempt: int, budget: SolveBudget | None = None
    ) -> None:
        """Sleep before retry number ``attempt`` (2-based; 1 never sleeps).

        With a ``budget``, the sleep is clamped to the budget's remaining
        wall clock — an exponential backoff must never out-sleep an
        almost-expired deadline — and skipped entirely when nothing
        remains (the caller's next ``ensure()`` then raises instead of
        this method burning real time first).
        """
        delay = self.backoff_delay(attempt)
        if delay <= 0.0:
            return
        if budget is not None:
            remaining = budget.remaining()
            if remaining <= 0.0:
                return
            if not math.isinf(remaining):
                delay = min(delay, remaining)
        self.sleep(delay)


@runtime_checkable
class FallbackGate(Protocol):
    """Admission control over individual fallback-chain candidates.

    A gate lets an external supervisor — in practice the per-backend
    circuit breakers of :mod:`repro.serve.breaker` — veto candidates
    *before* :func:`run_with_fallbacks` spends budget on them, and observe
    every attempt's outcome so it can learn which backends are currently
    failing.  The core layer defines only this protocol; it never imports
    the service layer.
    """

    def allow(self, stage: str, backend: str) -> str | None:
        """None to admit the candidate; a human-readable reason to skip it."""
        ...

    def record_outcome(self, stage: str, backend: str, ok: bool) -> None:
        """Observe one attempt's outcome (success or any kind of failure)."""
        ...


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything the pipelines need to know about failure handling.

    Attributes:
        strict: when True (default), no fallbacks and no degradation —
            failures propagate as typed :class:`ReproError` subclasses with
            stage context.  When False, fallback chains and whole-pipeline
            degradation guarantee a feasible answer whenever one exists.
        budget: wall-clock budget template (copied fresh per solve).
        retry: per-candidate retry/backoff policy.
        lp_chain: LP backend fallback order; None uses
            :data:`DEFAULT_LP_CHAIN`.
        mm_chain: MM algorithm fallback order; None uses
            :data:`DEFAULT_MM_CHAIN`.
        pipeline_fallback: allow whole-pipeline degradation (long side to
            the lazy TISE greedy, short side to one-calibration-per-job)
            when a pipeline fails outright in non-strict mode.
        gate: optional :class:`FallbackGate` consulted per candidate (the
            solve service plugs its circuit-breaker board in here).  Gates
            hold locks, so they are shared only within a process: the
            short-window pipeline applies the gate in serial and thread
            modes and drops it for process pools.
    """

    strict: bool = True
    budget: SolveBudget | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    lp_chain: tuple[str, ...] | None = None
    mm_chain: tuple[str, ...] | None = None
    pipeline_fallback: bool = True
    gate: FallbackGate | None = None

    def lp_candidates(self, primary: str) -> tuple[str, ...]:
        """Primary backend first, then the rest of the chain (non-strict)."""
        if self.strict:
            return (primary,)
        chain = self.lp_chain if self.lp_chain is not None else DEFAULT_LP_CHAIN
        return (primary,) + tuple(b for b in chain if b != primary)

    def mm_candidates(self, primary: str) -> tuple[str, ...]:
        """Primary MM algorithm first, then the rest of the chain."""
        if self.strict:
            return (primary,)
        chain = self.mm_chain if self.mm_chain is not None else DEFAULT_MM_CHAIN
        return (primary,) + tuple(a for a in chain if a != primary)

    def fresh_budget(self) -> SolveBudget | None:
        return self.budget.fresh() if self.budget is not None else None


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageAttempt:
    """One attempt at one stage with one backend.

    ``detail`` carries backend-reported numeric telemetry for successful
    attempts (e.g. LP ``iterations`` / ``refactorizations`` / ``solve_ms``
    / ``warm_started``), populated through the ``telemetry`` hook of
    :func:`run_with_fallbacks`.  It round-trips losslessly through
    ``to_dict``/``from_dict`` so checkpointed shards keep it.
    """

    stage: str
    backend: str
    outcome: str  # "ok" | "failed" | "timeout" | "invalid" | "skipped"
    attempt: int = 1
    elapsed: float = 0.0
    error: str = ""
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class ResilienceReport:
    """What the resilience layer did during one solve.

    ``attempts`` records every try (including successes); ``fallbacks``
    lists the chain hops that were actually taken, human-readably;
    ``degraded`` is True when any non-primary path produced part of the
    answer; ``wall_times`` mirrors the per-stage timing dicts.
    """

    attempts: list[StageAttempt] = field(default_factory=list)
    fallbacks: list[str] = field(default_factory=list)
    degraded: bool = False
    wall_times: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def record(self, attempt: StageAttempt) -> None:
        self.attempts.append(attempt)

    def record_fallback(self, stage: str, primary: str, winner: str) -> None:
        self.fallbacks.append(f"{stage}: {primary} -> {winner}")
        self.degraded = True

    def record_note(self, note: str) -> None:
        """Attach an operational note (e.g. a pool-to-serial degradation).

        Notes do not flip ``degraded`` — the *answer* is unaffected; only
        how it was computed changed — but they surface in :meth:`summary`
        and :meth:`to_dict` so the degradation is never invisible.
        """
        self.notes.append(note)

    def record_times(self, times: Mapping[str, float], prefix: str = "") -> None:
        for key, value in times.items():
            name = f"{prefix}.{key}" if prefix else key
            self.wall_times[name] = self.wall_times.get(name, 0.0) + value

    def merge(self, other: "ResilienceReport | None", prefix: str = "") -> None:
        """Fold a sub-pipeline's report into this one."""
        if other is None:
            return
        self.attempts.extend(other.attempts)
        self.fallbacks.extend(other.fallbacks)
        self.degraded = self.degraded or other.degraded
        self.notes.extend(other.notes)
        self.record_times(other.wall_times, prefix=prefix)

    @property
    def num_retries(self) -> int:
        """Attempts beyond the first per (stage, backend) pair."""
        return sum(1 for a in self.attempts if a.attempt > 1)

    @property
    def num_failures(self) -> int:
        return sum(1 for a in self.attempts if not a.ok)

    def summary(self) -> str:
        if not self.attempts and not self.fallbacks:
            return "resilience: clean (no attempts recorded)"
        status = "degraded" if self.degraded else "clean"
        parts = [
            f"resilience: {status}",
            f"{len(self.attempts)} attempts",
            f"{self.num_failures} failures",
            f"{self.num_retries} retries",
        ]
        if self.fallbacks:
            parts.append("fallbacks: " + "; ".join(self.fallbacks))
        if self.notes:
            parts.append("notes: " + "; ".join(self.notes))
        return ", ".join(parts)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form for logs, the CLI, and checkpoint journals."""
        return {
            "degraded": self.degraded,
            "fallbacks": list(self.fallbacks),
            "notes": list(self.notes),
            "attempts": [
                {
                    "stage": a.stage,
                    "backend": a.backend,
                    "outcome": a.outcome,
                    "attempt": a.attempt,
                    "elapsed": a.elapsed,
                    "error": a.error,
                    "detail": dict(a.detail),
                }
                for a in self.attempts
            ],
            "wall_times": dict(self.wall_times),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ResilienceReport":
        """Rebuild a report from :meth:`to_dict` output (journal replay).

        ``to_dict`` -> ``from_dict`` is lossless: the checkpoint layer
        relies on a restored shard's report being equal to the one a fresh
        solve would have produced.
        """
        def as_list(value: object) -> list[object]:
            return list(value) if isinstance(value, list) else []

        attempts = [
            StageAttempt(
                stage=str(a.get("stage", "")),
                backend=str(a.get("backend", "")),
                outcome=str(a.get("outcome", "")),
                attempt=int(str(a.get("attempt", 1))),
                elapsed=float(str(a.get("elapsed", 0.0))),
                error=str(a.get("error", "")),
                detail={
                    str(k): float(str(v))
                    for k, v in a.get("detail", {}).items()
                }
                if isinstance(a.get("detail"), dict)
                else {},
            )
            for a in as_list(payload.get("attempts"))
            if isinstance(a, dict)
        ]
        wall_raw = payload.get("wall_times")
        wall_times = (
            {str(k): float(str(v)) for k, v in wall_raw.items()}
            if isinstance(wall_raw, dict)
            else {}
        )
        return cls(
            attempts=attempts,
            fallbacks=[str(f) for f in as_list(payload.get("fallbacks"))],
            degraded=bool(payload.get("degraded", False)),
            wall_times=wall_times,
            notes=[str(n) for n in as_list(payload.get("notes"))],
        )


# ---------------------------------------------------------------------------
# The fallback executor
# ---------------------------------------------------------------------------

#: Errors that no amount of retrying or backend-swapping can fix: the
#: *instance* is at fault, not the solver.  These propagate immediately.
_NON_RETRYABLE = (InfeasibleInstanceError, InvalidInstanceError)


def _classify(error: BaseException) -> str:
    if isinstance(error, StageTimeoutError):
        return "timeout"
    return "failed"


def run_with_fallbacks(
    stage: str,
    candidates: Sequence[tuple[str, Callable[[], T]]],
    *,
    report: ResilienceReport,
    retry: RetryPolicy | None = None,
    budget: SolveBudget | None = None,
    validate: Callable[[T], None] | None = None,
    gate: FallbackGate | None = None,
    telemetry: Callable[[T], Mapping[str, float]] | None = None,
) -> T:
    """Try ``candidates`` in order until one returns a validated result.

    Each candidate is ``(backend_name, thunk)``; each is tried up to
    ``retry.attempts`` times with backoff between tries.  A candidate
    "fails" when its thunk raises (any exception except the non-retryable
    instance errors) or when ``validate`` rejects its return value — the
    defense against a backend returning garbage.  Every attempt is recorded
    in ``report``; a success on a non-primary candidate records a fallback.

    A ``gate`` (circuit breakers, in practice) is consulted before each
    candidate: a vetoed candidate is recorded as a ``"skipped"`` attempt
    and the chain moves on without spending budget on it.  Every real
    attempt's outcome is reported back to the gate so it can trip or reset.

    ``telemetry`` extracts backend counters from a *successful* result
    (e.g. ``LPSolution.telemetry``); its mapping is attached to the "ok"
    attempt's ``detail`` so solver behavior shows up in serve ``/stats``
    and benches without profiling.  A telemetry hook that raises is
    ignored — observability must never fail a solve.

    Raises:
        The original error, when there was a single candidate and a single
        attempt (strict mode — preserves the typed error).
        StageTimeoutError: the global budget expired (no point continuing).
        FallbacksExhaustedError: every candidate failed (or was skipped).
    """
    retry = retry or RetryPolicy()
    if not candidates:
        raise ValueError(f"no candidates given for stage {stage!r}")
    primary = candidates[0][0]
    last_error: BaseException | None = None
    single_shot = len(candidates) == 1 and retry.attempts <= 1
    clock = budget.clock if budget is not None else time.monotonic

    for backend, thunk in candidates:
        if gate is not None:
            reason = gate.allow(stage, backend)
            if reason is not None:
                report.record(
                    StageAttempt(
                        stage=stage,
                        backend=backend,
                        outcome="skipped",
                        error=reason,
                    )
                )
                continue
        for attempt in range(1, max(1, retry.attempts) + 1):
            # Clamped backoff first, then the deadline check: a retry whose
            # budget ran out mid-backoff is skipped, not started.
            retry.pause_before(attempt, budget=budget)
            if budget is not None:
                # A globally-exhausted budget ends the whole chain.
                budget.ensure(stage, backend)
            tic = clock()
            try:
                result = thunk()
            except _NON_RETRYABLE:
                raise
            except ReproError as exc:
                elapsed = max(0.0, clock() - tic)
                report.record(
                    StageAttempt(
                        stage=stage,
                        backend=backend,
                        outcome=_classify(exc),
                        attempt=attempt,
                        elapsed=elapsed,
                        error=str(exc),
                    )
                )
                if gate is not None:
                    gate.record_outcome(stage, backend, ok=False)
                last_error = exc
                if single_shot:
                    raise
                if (
                    isinstance(exc, StageTimeoutError)
                    and budget is not None
                    and budget.expired
                ):
                    raise  # the deadline is real, not simulated/per-stage
                continue
            except Exception as exc:  # noqa: BLE001 — a backend crashed
                elapsed = max(0.0, clock() - tic)
                report.record(
                    StageAttempt(
                        stage=stage,
                        backend=backend,
                        outcome="failed",
                        attempt=attempt,
                        elapsed=elapsed,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                if gate is not None:
                    gate.record_outcome(stage, backend, ok=False)
                wrapped = SolverError(
                    f"backend {backend!r} crashed: {exc}",
                    stage=stage,
                    backend=backend,
                    elapsed=elapsed,
                )
                wrapped.__cause__ = exc
                last_error = wrapped
                if single_shot:
                    raise wrapped from exc
                continue
            elapsed = max(0.0, clock() - tic)
            if validate is not None:
                try:
                    validate(result)
                except _NON_RETRYABLE:
                    raise
                except Exception as exc:  # noqa: BLE001 — garbage output
                    report.record(
                        StageAttempt(
                            stage=stage,
                            backend=backend,
                            outcome="invalid",
                            attempt=attempt,
                            elapsed=elapsed,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    if gate is not None:
                        gate.record_outcome(stage, backend, ok=False)
                    if isinstance(exc, ReproError):
                        last_error = exc
                    else:
                        last_error = SolverError(
                            f"backend {backend!r} returned an invalid "
                            f"result: {exc}",
                            stage=stage,
                            backend=backend,
                            elapsed=elapsed,
                        )
                        last_error.__cause__ = exc
                    if single_shot:
                        if last_error is exc:
                            raise
                        raise last_error from exc
                    continue
            detail: dict[str, float] = {}
            if telemetry is not None:
                try:
                    detail = {
                        str(k): float(v) for k, v in telemetry(result).items()
                    }
                except Exception:  # noqa: BLE001 — observability is best-effort
                    detail = {}
            report.record(
                StageAttempt(
                    stage=stage,
                    backend=backend,
                    outcome="ok",
                    attempt=attempt,
                    elapsed=elapsed,
                    detail=detail,
                )
            )
            if gate is not None:
                gate.record_outcome(stage, backend, ok=True)
            if backend != primary:
                report.record_fallback(stage, primary, backend)
            return result

    raise FallbacksExhaustedError(
        f"all {len(candidates)} candidate(s) for stage {stage!r} failed "
        f"(tried: {', '.join(name for name, _ in candidates)})",
        attempts=tuple(report.attempts),
        last_error=last_error,
        stage=stage,
        backend=primary,
    )
