"""Long/short job partition (Definition 1 and Section 2 of the paper).

The top-level algorithm splits the job set into long-window jobs
(``d_j - r_j >= 2T``) and short-window jobs (``d_j - r_j < 2T``), schedules
the two sets independently on disjoint machines, and unions the schedules.
"Partitioning itself is trivial, and this process at most doubles the number
of calibrations and machines beyond either of the algorithms" (Section 2).

The threshold factor is configurable (default 2, per Definition 1) so that
the ABL2 ablation bench can explore the remark after Definition 1: "making
the threshold larger is okay, but that would weaken the bounds for
short-window jobs".
"""

from __future__ import annotations

from dataclasses import dataclass

from .job import LONG_WINDOW_FACTOR, Instance, Job
from .tolerance import geq

__all__ = ["JobPartition", "partition_jobs"]


@dataclass(frozen=True)
class JobPartition:
    """The result of splitting an instance per Definition 1."""

    long_jobs: tuple[Job, ...]
    short_jobs: tuple[Job, ...]
    threshold: float
    """The absolute window threshold (``factor * T``)."""

    @property
    def n_long(self) -> int:
        return len(self.long_jobs)

    @property
    def n_short(self) -> int:
        return len(self.short_jobs)


def partition_jobs(
    instance: Instance, factor: float = LONG_WINDOW_FACTOR
) -> JobPartition:
    """Split jobs into long and short windows at ``factor * T``.

    A job is *long* iff ``d_j - r_j >= factor * T`` (Definition 1 with
    ``factor = 2``).  The comparison is tolerance-aware so a window of
    exactly ``2T`` computed in floating point is classified long, matching
    the paper's ``>=``.
    """
    if factor < 2:
        # Lemma 2's construction shifts jobs by +-T and needs window >= 2T;
        # a smaller threshold would feed the long-window pipeline jobs it
        # cannot legally shift.
        raise ValueError(
            f"long-window threshold factor must be >= 2 (Lemma 2), got {factor}"
        )
    threshold = factor * instance.calibration_length
    long_jobs: list[Job] = []
    short_jobs: list[Job] = []
    for job in instance.jobs:
        if geq(job.window, threshold):
            long_jobs.append(job)
        else:
            short_jobs.append(job)
    return JobPartition(
        long_jobs=tuple(long_jobs),
        short_jobs=tuple(short_jobs),
        threshold=threshold,
    )
