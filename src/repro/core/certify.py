"""End-to-end solve certificates: independent re-validation of results.

The pipelines already validate their own output (``check_ise``) and the LP
substrate runs numerical sentinels (:mod:`repro.lp.sentinel`); this module
is the *last* line of defense, applied to the fully-merged result exactly
as a caller would receive it.  A :class:`SolveCertificate` records:

* an exact content fingerprint of the instance that was solved,
* the independent validator's verdict, with honest violation details,
* the certified lower bound and the measured approximation gap against the
  paper's Theorem 1/12 guarantee,
* a digest of the solver telemetry (attempt log, stage timings) so a
  certificate can be matched to the solve that produced it,
* a sha256 self-checksum over the canonical payload, so a certificate that
  was tampered with (or torn in transit) is detectable.

Verified mode (``ISEConfig.verify``, ``ServiceConfig.verify_results``, the
CLI's ``--verify``) certifies every result before it escapes; a failed
certificate quarantines the result behind a typed
:class:`~repro.core.errors.CertificationError` instead of returning it.

``within_guarantee`` is deliberately informational, not part of
:attr:`SolveCertificate.ok`: the measured ratio compares against the
*certified lower bound*, which can sit below the true optimum, so a ratio
above the paper's factor is not by itself evidence of a wrong answer —
an infeasible schedule is.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from .atomicio import checksum as _sha_checksum, content_key
from .errors import InvalidArtifactError
from .job import Instance
from .validate import validate_ise

# The result being certified is an ``ISEResult`` from ``repro.core.solver``,
# but that module imports this one, and the layer DAG places it *above* the
# foundation — so this module takes the result duck-typed and never names it.

__all__ = [
    "CERTIFICATE_VERSION",
    "GUARANTEE_FACTOR",
    "SolveCertificate",
    "certify_result",
    "instance_fingerprint",
]

CERTIFICATE_VERSION = 1

# Theorem 1 with the Section 3/4 pipelines: at most 12 * OPT calibrations
# (3 from Lemma 2 x 2 from rounding x 2 from mirroring on the long side;
# the short side and the union stay within the same combined factor).
GUARANTEE_FACTOR = 12.0

_DETAIL_LIMIT = 5


def instance_fingerprint(instance: Instance) -> str:
    """Exact content fingerprint of an instance (stable across processes)."""
    jobs_sig = tuple(
        (j.job_id, j.release, j.deadline, j.processing) for j in instance.jobs
    )
    return content_key(
        "ise-instance", jobs_sig, instance.machines, instance.calibration_length
    )


@dataclass(frozen=True)
class SolveCertificate:
    """An independently re-derived verdict on one :class:`ISEResult`.

    ``ok`` is the hard gate — it is True iff the independent validator
    found the schedule feasible.  Everything else is evidence: the bound
    and ratio quantify quality, the telemetry digest ties the certificate
    to one specific solve, and ``checksum`` covers the whole payload.
    """

    version: int
    instance: str
    valid: bool
    violations: int
    violation_detail: str
    calibrations: int
    machines_used: int
    lower_bound: float
    approximation_ratio: float
    guarantee_factor: float
    within_guarantee: bool
    degraded: bool
    telemetry_digest: str
    checksum: str

    @property
    def ok(self) -> bool:
        """True iff the result passed independent re-validation."""
        return self.valid

    def payload(self) -> dict[str, Any]:
        """The checksummed fields in canonical order (checksum excluded)."""
        return {
            "version": self.version,
            "instance": self.instance,
            "valid": self.valid,
            "violations": self.violations,
            "violation_detail": self.violation_detail,
            "calibrations": self.calibrations,
            "machines_used": self.machines_used,
            "lower_bound": self.lower_bound,
            "approximation_ratio": self.approximation_ratio,
            "guarantee_factor": self.guarantee_factor,
            "within_guarantee": self.within_guarantee,
            "degraded": self.degraded,
            "telemetry_digest": self.telemetry_digest,
        }

    def verify_checksum(self) -> bool:
        """True iff the stored self-checksum matches the payload."""
        return self.checksum == _payload_checksum(self.payload())

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (artifact envelopes, ``/solve`` responses)."""
        data = self.payload()
        data["checksum"] = self.checksum
        return data

    def summary(self) -> dict[str, Any]:
        """The compact form ``/solve`` responses and the CLI print."""
        return {
            "valid": self.valid,
            "violations": self.violations,
            "lower_bound": self.lower_bound,
            "approximation_ratio": self.approximation_ratio,
            "within_guarantee": self.within_guarantee,
            "checksum": self.checksum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveCertificate":
        """Inverse of :meth:`to_dict`; verifies the embedded self-checksum."""
        try:
            cert = cls(
                version=int(payload["version"]),
                instance=str(payload["instance"]),
                valid=bool(payload["valid"]),
                violations=int(payload["violations"]),
                violation_detail=str(payload["violation_detail"]),
                calibrations=int(payload["calibrations"]),
                machines_used=int(payload["machines_used"]),
                lower_bound=float(payload["lower_bound"]),
                approximation_ratio=float(payload["approximation_ratio"]),
                guarantee_factor=float(payload["guarantee_factor"]),
                within_guarantee=bool(payload["within_guarantee"]),
                degraded=bool(payload["degraded"]),
                telemetry_digest=str(payload["telemetry_digest"]),
                checksum=str(payload["checksum"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise InvalidArtifactError(
                f"malformed solve certificate: {exc}"
            ) from exc
        if not cert.verify_checksum():
            raise InvalidArtifactError(
                "solve certificate checksum mismatch (tampered or torn)",
                field="checksum",
            )
        return cert

    def describe(self) -> str:
        """One-line human summary for logs and the CLI."""
        verdict = "VALID" if self.valid else f"INVALID ({self.violations} violations)"
        guarantee = "within" if self.within_guarantee else "above"
        return (
            f"certificate {verdict}: {self.calibrations} calibrations vs "
            f"lower bound {self.lower_bound:.3f} (ratio "
            f"{self.approximation_ratio:.3f}, {guarantee} the "
            f"{self.guarantee_factor:g}x guarantee)"
        )


def _payload_checksum(payload: Mapping[str, Any]) -> str:
    """sha256 self-checksum over the canonical JSON form of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return _sha_checksum(canonical)


def _telemetry_digest(result: Any) -> str:
    """Digest of the solve's telemetry (attempt log + stage timings)."""
    resilience = (
        result.resilience.to_dict() if result.resilience is not None else {}
    )
    canonical = json.dumps(
        {"resilience": resilience, "wall_times": dict(result.wall_times)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return _sha_checksum(canonical)


def certify_result(
    instance: Instance,
    result: Any,
    *,
    overlapping_calibrations: bool = False,
    guarantee_factor: float = GUARANTEE_FACTOR,
) -> SolveCertificate:
    """Independently re-validate ``result`` and issue its certificate.

    This is a *re*-validation pass: it runs even when the solve already
    validated internally, because the certificate's value is precisely
    that it does not trust the solve path (a bit flip between the
    pipeline's check and the caller's hands is exactly what it catches).
    Issuing a certificate never raises on an invalid result — the
    certificate records the verdict; enforcement (quarantine) is the
    caller's job.
    """
    report = validate_ise(
        instance,
        result.schedule,
        allow_overlapping_calibrations=overlapping_calibrations,
    )
    ratio = result.approximation_ratio
    lb = result.lower_bound.best
    payload = {
        "version": CERTIFICATE_VERSION,
        "instance": instance_fingerprint(instance),
        "valid": report.ok,
        "violations": len(report.violations),
        "violation_detail": report.detail(limit=_DETAIL_LIMIT),
        "calibrations": result.num_calibrations,
        "machines_used": result.machines_used,
        "lower_bound": lb,
        "approximation_ratio": ratio,
        "guarantee_factor": guarantee_factor,
        "within_guarantee": ratio <= guarantee_factor,
        "degraded": result.degraded,
        "telemetry_digest": _telemetry_digest(result),
    }
    return SolveCertificate(checksum=_payload_checksum(payload), **payload)
