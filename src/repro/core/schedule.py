"""Complete ISE schedules: calibrations plus nonpreemptive job placements.

A feasible ISE schedule (Section 1 of the paper) must

1. run every job nonpreemptively within its window ``[r_j, d_j)``,
2. run every job entirely inside a single calibrated interval of the machine
   it is placed on,
3. never run two jobs concurrently on one machine, and
4. never overlap two calibrated intervals on one machine.

Schedules carry a ``speed`` field to support the resource-augmentation model
(Phillips et al., as adopted in Section 1): on a speed-``s`` machine a job
with processing time ``p_j`` occupies ``p_j / s`` time units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .calibration import Calibration, CalibrationSchedule
from .errors import InvalidScheduleError
from .tolerance import EPS

__all__ = ["ScheduledJob", "Schedule"]


@dataclass(frozen=True, slots=True, order=True)
class ScheduledJob:
    """Placement of one job: it runs on ``machine`` starting at ``start``.

    The execution interval is ``[start, start + p_j / speed)`` where ``speed``
    comes from the enclosing :class:`Schedule`.
    """

    start: float
    machine: int
    job_id: int

    def end(self, processing: float, speed: float = 1.0) -> float:
        """Exclusive completion time for the given processing requirement."""
        return self.start + processing / speed


@dataclass(frozen=True)
class Schedule:
    """A full ISE schedule.

    Attributes:
        calibrations: The calibration schedule (machine pool included).
        placements: One :class:`ScheduledJob` per scheduled job.
        speed: Machine speed ``s`` (resource augmentation); 1.0 is no
            augmentation.  All machines share the same speed.
    """

    calibrations: CalibrationSchedule
    placements: tuple[ScheduledJob, ...]
    speed: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "placements", tuple(sorted(self.placements)))
        if self.speed <= 0:
            raise InvalidScheduleError(f"speed must be positive, got {self.speed}")
        seen: set[int] = set()
        for placement in self.placements:
            if placement.job_id in seen:
                raise InvalidScheduleError(
                    f"job {placement.job_id} placed more than once"
                )
            seen.add(placement.job_id)
            if not (0 <= placement.machine < self.calibrations.num_machines):
                raise InvalidScheduleError(
                    f"job {placement.job_id} placed on machine "
                    f"{placement.machine} outside pool of size "
                    f"{self.calibrations.num_machines}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[ScheduledJob]:
        return iter(self.placements)

    @property
    def num_machines(self) -> int:
        return self.calibrations.num_machines

    @property
    def num_calibrations(self) -> int:
        """The ISE objective value."""
        return self.calibrations.num_calibrations

    @property
    def calibration_length(self) -> float:
        return self.calibrations.calibration_length

    def placement_of(self, job_id: int) -> ScheduledJob:
        for placement in self.placements:
            if placement.job_id == job_id:
                return placement
        raise KeyError(f"job {job_id} is not scheduled")

    def scheduled_job_ids(self) -> frozenset[int]:
        return frozenset(p.job_id for p in self.placements)

    def jobs_on_machine(self, machine: int) -> tuple[ScheduledJob, ...]:
        return tuple(p for p in self.placements if p.machine == machine)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def enclosing_calibration(
        self, placement: ScheduledJob, processing: float, eps: float = EPS
    ) -> Calibration | None:
        """The calibration on the placement's machine containing its execution.

        Returns None when no calibration contains it — which the validator
        reports as a feasibility violation.
        """
        end = placement.end(processing, self.speed)
        for cal in self.calibrations.on_machine(placement.machine):
            if cal.covers(placement.start, end, self.calibration_length, eps):
                return cal
        return None

    def prune_empty_calibrations(
        self, processing_by_job: Mapping[int, float]
    ) -> "Schedule":
        """Drop calibrations that contain no job execution.

        The paper's constructions (e.g. the mirrored machines of Algorithm 2
        and the base calibrations of Algorithm 5) may create calibrations
        that end up unused.  Removing them is always feasibility-preserving
        and only improves the objective; the benches report both counts.
        """
        used: set[tuple[float, int]] = set()
        for placement in self.placements:
            cal = self.enclosing_calibration(
                placement, processing_by_job[placement.job_id]
            )
            if cal is None:
                raise InvalidScheduleError(
                    f"job {placement.job_id} has no enclosing calibration; "
                    "cannot prune an infeasible schedule"
                )
            used.add((cal.start, cal.machine))
        kept = tuple(
            c for c in self.calibrations if (c.start, c.machine) in used
        )
        return Schedule(
            calibrations=CalibrationSchedule(
                calibrations=kept,
                num_machines=self.calibrations.num_machines,
                calibration_length=self.calibration_length,
            ),
            placements=self.placements,
            speed=self.speed,
        )

    def compact_machines(self) -> "Schedule":
        """Renumber machines to drop unused indices (pool size shrinks)."""
        used = sorted(
            {c.machine for c in self.calibrations}
            | {p.machine for p in self.placements}
        )
        remap = {old: new for new, old in enumerate(used)}
        cals = tuple(
            Calibration(start=c.start, machine=remap[c.machine])
            for c in self.calibrations
        )
        placements = tuple(
            ScheduledJob(start=p.start, machine=remap[p.machine], job_id=p.job_id)
            for p in self.placements
        )
        return Schedule(
            calibrations=CalibrationSchedule(
                calibrations=cals,
                num_machines=len(used),
                calibration_length=self.calibration_length,
            ),
            placements=placements,
            speed=self.speed,
        )

    def merged_with(self, other: "Schedule") -> "Schedule":
        """Disjoint-machine union: ``other``'s machines follow this pool.

        Requires equal speeds and calibration lengths; job ids must be
        disjoint (enforced by the Schedule constructor).
        """
        if abs(other.speed - self.speed) > EPS:
            raise InvalidScheduleError(
                f"cannot merge schedules with different speeds: "
                f"{self.speed} vs {other.speed}"
            )
        merged_cals = self.calibrations.merged_with(other.calibrations)
        offset = self.calibrations.num_machines
        moved = tuple(
            ScheduledJob(start=p.start, machine=p.machine + offset, job_id=p.job_id)
            for p in other.placements
        )
        return Schedule(
            calibrations=merged_cals,
            placements=self.placements + moved,
            speed=self.speed,
        )


def empty_schedule(
    calibration_length: float, num_machines: int = 0, speed: float = 1.0
) -> Schedule:
    """A schedule with no jobs and no calibrations."""
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=(),
            num_machines=num_machines,
            calibration_length=calibration_length,
        ),
        placements=(),
        speed=speed,
    )
