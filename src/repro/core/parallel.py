"""Deterministic parallel execution for independent sub-solves.

The paper's structure creates three natural fan-out sites: the per-interval
MM black boxes of Section 4 (Lemma 16 makes the intervals independent by
construction), the long/short halves of the ISE split (disjoint job sets),
and sweep case loops (independent instances).  :func:`parallel_map` runs
such work over a process or thread pool with a strict contract:

* **Determinism.**  Results are collected in input order, and the serial
  path is the reference semantics: for pure task functions every mode
  returns exactly what ``[fn(x) for x in items]`` returns (the first
  exception, by input index, is re-raised unless ``return_exceptions``).
* **Budget propagation.**  The ambient :class:`~repro.core.resilience
  .SolveBudget` is a context-local, which does not cross process
  boundaries.  Process tasks therefore ship a
  :meth:`~repro.core.resilience.SolveBudget.subbudget` snapshot (the
  remaining wall clock + stage timeouts) and re-enter it via
  :func:`~repro.core.resilience.budget_scope` inside the worker, so
  deadlines keep firing inside parallel solves.  Thread tasks run in a copy
  of the dispatching context and share the parent budget object directly.
* **Graceful fallback.**  Anything that prevents pooled execution — one
  worker requested, a single item, pool creation failing (sandboxes),
  unpicklable tasks, a broken pool — silently degrades to the serial path
  rather than erroring.
* **No nested process pools.**  A process worker that itself reaches a
  ``parallel_map`` call site (e.g. a sweep case solving its short-window
  intervals) runs it serially; threads may still fan out to processes.
"""

from __future__ import annotations

import contextvars
import pickle
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from .resilience import SolveBudget, budget_scope, current_budget

__all__ = ["MODES", "effective_workers", "parallel_map", "resolve_mode"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

MODES = ("auto", "serial", "thread", "process")

#: Set to True inside process-pool workers (via the pool initializer) so a
#: nested ``parallel_map`` reached from worker code degrades to serial
#: instead of forking pools from pools.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def resolve_mode(mode: str) -> str:
    """Validate ``mode`` and resolve ``"auto"`` (to ``"process"``)."""
    if mode not in MODES:
        raise ValueError(f"unknown parallel mode {mode!r}; expected one of {MODES}")
    return "process" if mode == "auto" else mode


def effective_workers(
    max_workers: int | None, num_items: int, mode: str = "auto"
) -> int:
    """Workers :func:`parallel_map` would actually use for this call."""
    resolved = resolve_mode(mode)
    if (
        resolved == "serial"
        or _IN_WORKER
        or max_workers is None
        or max_workers <= 1
        or num_items <= 1
    ):
        return 1
    return min(max_workers, num_items)


def _run_with_budget(
    payload: tuple[Callable[[ItemT], ResultT], ItemT, SolveBudget | None],
) -> ResultT:
    """Process-worker task entry: re-enter the shipped budget, then run."""
    fn, item, budget = payload
    if budget is None:
        return fn(item)
    with budget_scope(budget):
        return fn(item)


def _serial_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    return_exceptions: bool,
) -> list[ResultT | BaseException]:
    out: list[ResultT | BaseException] = []
    for item in items:
        if return_exceptions:
            try:
                out.append(fn(item))
            except Exception as exc:  # noqa: BLE001 — collected by contract
                out.append(exc)
        else:
            out.append(fn(item))
    return out


def _collect(
    futures: Sequence[Future[ResultT]], return_exceptions: bool
) -> list[ResultT | BaseException]:
    """Input-order collection matching serial exception semantics."""
    out: list[ResultT | BaseException] = []
    for future in futures:
        if return_exceptions:
            exc = future.exception()
            out.append(exc if exc is not None else future.result())
        else:
            out.append(future.result())
    return out


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    *,
    max_workers: int | None = None,
    mode: str = "auto",
    return_exceptions: bool = False,
) -> list[ResultT | BaseException]:
    """Map ``fn`` over ``items`` with ordered, deterministic collection.

    ``max_workers=None`` or ``<= 1`` runs serially.  ``mode`` is one of
    ``"auto"`` (process), ``"serial"``, ``"thread"``, or ``"process"``.
    With ``return_exceptions=True`` task exceptions are returned in their
    slot instead of raised; otherwise the first failing input index raises,
    exactly as the serial loop would.

    Process mode requires ``fn`` and every item to be picklable (module-
    level functions over frozen dataclasses); anything unpicklable, and any
    pool-infrastructure failure, falls back to the serial path.  The
    ambient solve budget is propagated into workers (see module docstring),
    so stage timeouts keep firing inside parallel solves.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items), mode)
    resolved = resolve_mode(mode)
    if workers <= 1 or resolved == "serial":
        return _serial_map(fn, items, return_exceptions)

    if resolved == "thread":
        # Each task runs in a copy of the dispatching context: ambient
        # budget/policy context-locals are visible, and the budget object
        # (whose clock may be a deterministic fake) is genuinely shared.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(contextvars.copy_context().run, fn, item)
                for item in items
            ]
            return _collect(futures, return_exceptions)

    budget = current_budget()
    snapshot = budget.subbudget() if budget is not None else None
    payloads = [(fn, item, snapshot) for item in items]
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_mark_worker
        ) as pool:
            futures = [pool.submit(_run_with_budget, payload) for payload in payloads]
            return _collect(futures, return_exceptions)
    except (BrokenExecutor, OSError, pickle.PicklingError, TypeError, AttributeError):
        # Pool infrastructure failed (sandboxed environment, unpicklable
        # task, killed worker).  Task results from a broken pool cannot be
        # trusted to be complete, so rerun everything serially — fn is
        # required to be effect-free on the driving process, making the
        # rerun safe and the output identical to a healthy pool's.
        return _serial_map(fn, items, return_exceptions)
