"""Deterministic parallel execution for independent sub-solves.

The paper's structure creates three natural fan-out sites: the per-interval
MM black boxes of Section 4 (Lemma 16 makes the intervals independent by
construction), the long/short halves of the ISE split (disjoint job sets),
and sweep case loops (independent instances).  :func:`parallel_map` runs
such work over a process or thread pool with a strict contract:

* **Determinism.**  Results are collected in input order, and the serial
  path is the reference semantics: for pure task functions every mode
  returns exactly what ``[fn(x) for x in items]`` returns (the first
  exception, by input index, is re-raised unless ``return_exceptions``).
* **Budget propagation.**  The ambient :class:`~repro.core.resilience
  .SolveBudget` is a context-local, which does not cross process
  boundaries.  Process tasks therefore ship a
  :meth:`~repro.core.resilience.SolveBudget.subbudget` snapshot (the
  remaining wall clock + stage timeouts) and re-enter it via
  :func:`~repro.core.resilience.budget_scope` inside the worker, so
  deadlines keep firing inside parallel solves.  Thread tasks run in a copy
  of the dispatching context and share the parent budget object directly.
* **Observable fallback.**  Anything that prevents pooled execution — one
  worker requested, a single item, pool creation failing (sandboxes),
  unpicklable tasks, a broken pool — degrades to the serial path rather
  than erroring.  The degradation is *not* silent: a
  :class:`ParallelFallbackWarning` is emitted and the reason is recorded on
  the :func:`last_fallback_reason` hook so chaos tests and resilience
  reports can assert on it.
* **Incremental observation.**  ``on_result`` is invoked once per input
  index, in input order, as results become available — the hook the
  checkpoint layer (:mod:`repro.core.checkpoint`) uses to journal each
  shard as it completes rather than only after the whole batch returns.
* **No nested process pools.**  A process worker that itself reaches a
  ``parallel_map`` call site (e.g. a sweep case solving its short-window
  intervals) runs it serially; threads may still fan out to processes.
"""

from __future__ import annotations

import contextvars
import pickle
import threading
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from .resilience import SolveBudget, budget_scope, current_budget

__all__ = [
    "MODES",
    "ParallelFallbackWarning",
    "effective_workers",
    "last_fallback_reason",
    "parallel_map",
    "resolve_mode",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

MODES = ("auto", "serial", "thread", "process")


class ParallelFallbackWarning(RuntimeWarning):
    """A worker pool could not be used and execution degraded to serial."""


#: Set to True inside process-pool workers (via the pool initializer) so a
#: nested ``parallel_map`` reached from worker code degrades to serial
#: instead of forking pools from pools.
_IN_WORKER = False

#: Why the most recent :func:`parallel_map` call that *attempted* pooled
#: execution fell back to the serial path, or None when it did not.
#: Guarded by :data:`_FALLBACK_LOCK` — thread-mode workers that recurse
#: into ``parallel_map`` write it concurrently with the dispatching thread.
_LAST_FALLBACK_REASON: str | None = None
_FALLBACK_LOCK = threading.Lock()


def _mark_worker() -> None:
    # Runs once per pool worker *process* via the executor initializer;
    # the flag is process-local state, never shared across threads.
    global _IN_WORKER
    _IN_WORKER = True  # repro-lint: disable=ISE102


def last_fallback_reason() -> str | None:
    """Reason the last pool-attempting :func:`parallel_map` went serial.

    None when the last pooled call genuinely ran on a pool.  Calls that
    never attempt a pool (``mode="serial"``, one worker, one item) leave
    the hook untouched.  Chaos tests and sweep reports read this instead of
    pools being allowed to degrade invisibly.
    """
    with _FALLBACK_LOCK:
        return _LAST_FALLBACK_REASON


def _clear_pool_fallback() -> None:
    """Reset the fallback hook at the start of a pool-attempting call."""
    global _LAST_FALLBACK_REASON
    with _FALLBACK_LOCK:
        _LAST_FALLBACK_REASON = None


def _record_pool_fallback(error: BaseException) -> str:
    """Record and warn that pooled execution degraded to the serial path."""
    global _LAST_FALLBACK_REASON
    reason = f"{type(error).__name__}: {error}"
    with _FALLBACK_LOCK:
        _LAST_FALLBACK_REASON = reason
    warnings.warn(
        f"parallel_map fell back to serial execution: {reason}",
        ParallelFallbackWarning,
        stacklevel=3,
    )
    return reason


def resolve_mode(mode: str) -> str:
    """Validate ``mode`` and resolve ``"auto"`` (to ``"process"``)."""
    if mode not in MODES:
        raise ValueError(f"unknown parallel mode {mode!r}; expected one of {MODES}")
    return "process" if mode == "auto" else mode


def effective_workers(
    max_workers: int | None, num_items: int, mode: str = "auto"
) -> int:
    """Workers :func:`parallel_map` would actually use for this call."""
    resolved = resolve_mode(mode)
    if (
        resolved == "serial"
        or _IN_WORKER
        or max_workers is None
        or max_workers <= 1
        or num_items <= 1
    ):
        return 1
    return min(max_workers, num_items)


def _run_with_budget(
    payload: tuple[Callable[[ItemT], ResultT], ItemT, SolveBudget | None],
) -> ResultT:
    """Process-worker task entry: re-enter the shipped budget, then run."""
    fn, item, budget = payload
    if budget is None:
        return fn(item)
    with budget_scope(budget):
        return fn(item)


def _serial_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    return_exceptions: bool,
    on_result: Callable[[int, "ResultT | BaseException"], None] | None = None,
    skip_notify: int = 0,
) -> list[ResultT | BaseException]:
    out: list[ResultT | BaseException] = []
    for index, item in enumerate(items):
        value: ResultT | BaseException
        if return_exceptions:
            try:
                value = fn(item)
            except Exception as exc:  # noqa: BLE001 — collected by contract
                value = exc
        else:
            value = fn(item)
        out.append(value)
        if on_result is not None and index >= skip_notify:
            on_result(index, value)
    return out


def _collect(
    futures: Sequence[Future[ResultT]],
    return_exceptions: bool,
    on_result: Callable[[int, "ResultT | BaseException"], None] | None = None,
    delivered: list[int] | None = None,
) -> list[ResultT | BaseException]:
    """Input-order collection matching serial exception semantics.

    ``delivered`` (when given) is mutated to count how many input slots had
    their ``on_result`` callback fired, so a serial rerun after a pool
    failure can avoid double-notifying the prefix that already completed.
    """
    out: list[ResultT | BaseException] = []
    for index, future in enumerate(futures):
        value: ResultT | BaseException
        if return_exceptions:
            exc = future.exception()
            value = exc if exc is not None else future.result()
        else:
            value = future.result()
        out.append(value)
        if on_result is not None:
            on_result(index, value)
        if delivered is not None:
            delivered[0] = index + 1
    return out


def parallel_map(
    fn: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    *,
    max_workers: int | None = None,
    mode: str = "auto",
    return_exceptions: bool = False,
    on_result: Callable[[int, "ResultT | BaseException"], None] | None = None,
) -> list[ResultT | BaseException]:
    """Map ``fn`` over ``items`` with ordered, deterministic collection.

    ``max_workers=None`` or ``<= 1`` runs serially.  ``mode`` is one of
    ``"auto"`` (process), ``"serial"``, ``"thread"``, or ``"process"``.
    With ``return_exceptions=True`` task exceptions are returned in their
    slot instead of raised; otherwise the first failing input index raises,
    exactly as the serial loop would.  ``on_result(index, value)`` is
    invoked once per input index, in input order, as soon as that slot's
    result (or, under ``return_exceptions``, exception) is available —
    never twice for one index, even across a pool-failure rerun.

    Process mode requires ``fn`` and every item to be picklable (module-
    level functions over frozen dataclasses); anything unpicklable, and any
    pool-infrastructure failure, falls back to the serial path with a
    :class:`ParallelFallbackWarning` and a recorded
    :func:`last_fallback_reason`.  The ambient solve budget is propagated
    into workers (see module docstring), so stage timeouts keep firing
    inside parallel solves.
    """
    items = list(items)
    workers = effective_workers(max_workers, len(items), mode)
    resolved = resolve_mode(mode)
    if workers <= 1 or resolved == "serial":
        return _serial_map(fn, items, return_exceptions, on_result)
    _clear_pool_fallback()

    if resolved == "thread":
        # Each task runs in a copy of the dispatching context: ambient
        # budget/policy context-locals are visible, and the budget object
        # (whose clock may be a deterministic fake) is genuinely shared.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(contextvars.copy_context().run, fn, item)
                for item in items
            ]
            return _collect(futures, return_exceptions, on_result)

    budget = current_budget()
    snapshot = budget.subbudget() if budget is not None else None
    payloads = [(fn, item, snapshot) for item in items]
    delivered = [0]
    try:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_mark_worker
        ) as pool:
            futures = [pool.submit(_run_with_budget, payload) for payload in payloads]
            return _collect(futures, return_exceptions, on_result, delivered)
    except (BrokenExecutor, OSError, pickle.PicklingError, TypeError, AttributeError) as exc:
        # Pool infrastructure failed (sandboxed environment, unpicklable
        # task, killed worker).  Task results from a broken pool cannot be
        # trusted to be complete, so rerun everything serially — fn is
        # required to be effect-free on the driving process, making the
        # rerun safe and the output identical to a healthy pool's.  The
        # degradation is recorded (warning + last_fallback_reason hook) so
        # it never happens invisibly, and on_result is not re-fired for the
        # prefix of slots that already reported before the pool broke.
        _record_pool_fallback(exc)
        return _serial_map(
            fn, items, return_exceptions, on_result, skip_notify=delivered[0]
        )
