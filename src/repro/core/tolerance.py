"""Numeric tolerance helpers shared across the library.

The ISE problem statement (Fineman & Sheridan, SPAA 2015, Section 1) does not
require release times, deadlines, or processing times to be integral, and the
LP pipeline of Section 3 produces floating-point fractional solutions.  All
comparisons against schedule boundaries therefore go through the
tolerance-aware predicates in this module so that a quantity that is equal "on
paper" but off by a few ulps in floating point is still treated as equal.

The default tolerance ``EPS`` is deliberately loose relative to machine
epsilon but tight relative to any meaningful job length: instances are
expected to have processing times and windows that are ``>> 1e-6``.
"""

from __future__ import annotations

EPS: float = 1e-9
"""Absolute tolerance used for all time comparisons."""

LOOSE_EPS: float = 1e-6
"""Looser tolerance for *accumulated* quantities.

Invariant checks that compare sums of many LP coefficients (the Lemma 5
carryover audit, flow-value comparisons, coverage totals) accumulate one
rounding error per term, so they use this 1000x-looser bound instead of
:data:`EPS`.  Still far below any meaningful job length."""


def leq(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a <= b`` up to tolerance (``a`` may exceed by eps)."""
    return a <= b + eps


def geq(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a >= b`` up to tolerance."""
    return a >= b - eps


def lt(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a < b`` strictly, by more than the tolerance."""
    return a < b - eps


def gt(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a > b`` strictly, by more than the tolerance."""
    return a > b + eps


def close(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``|a - b| <= eps``."""
    return abs(a - b) <= eps


def snap(value: float, grid: float = 1.0, eps: float = EPS) -> float:
    """Snap ``value`` to the nearest multiple of ``grid`` if within ``eps``.

    Used when reconstructing integral schedules from LP output: a calibration
    the LP places at ``3.0000000001`` is really at ``3.0``.
    """
    if grid <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    nearest = round(value / grid) * grid
    if abs(nearest - value) <= eps:
        return nearest
    return value
