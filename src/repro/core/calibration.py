"""Calibrations and calibration schedules.

A calibration performed at time ``t`` on machine ``i`` makes that machine
usable during the *calibrated interval* ``[t, t + T)`` (Section 1 of the
paper).  Calibrations are instantaneous but costly: the objective of the ISE
problem is to minimize their number.  Calibrated intervals on a single
machine must not overlap — i.e. consecutive calibrations on one machine must
be at least ``T`` apart (the paper's footnote 3 calls this the "more
difficult version" of the problem, which is the one we implement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .errors import InvalidScheduleError
from .tolerance import EPS, geq, gt, leq

__all__ = ["Calibration", "CalibrationSchedule"]


@dataclass(frozen=True, slots=True, order=True)
class Calibration:
    """One calibration: machine ``machine`` becomes usable on ``[start, start+T)``.

    Ordering is by ``(start, machine)`` so that sorted containers scan
    calibrations in nondecreasing time order, the order required by
    Algorithms 1-3 of the paper.
    """

    start: float
    machine: int

    def end(self, calibration_length: float) -> float:
        """Exclusive end of the calibrated interval."""
        return self.start + calibration_length

    def covers(
        self, start: float, end: float, calibration_length: float, eps: float = EPS
    ) -> bool:
        """True iff execution interval ``[start, end)`` fits inside this calibration."""
        return geq(start, self.start, eps) and leq(
            end, self.start + calibration_length, eps
        )

    def shifted(self, delta: float, machine: int | None = None) -> "Calibration":
        """A copy translated by ``delta`` (optionally onto another machine)."""
        return Calibration(
            start=self.start + delta,
            machine=self.machine if machine is None else machine,
        )


@dataclass(frozen=True)
class CalibrationSchedule:
    """A set of calibrations together with the machine pool size.

    ``num_machines`` is the size of the machine pool (machine indices must be
    in ``range(num_machines)``); it may exceed the instance's ``m`` when
    machine augmentation is in play.
    """

    calibrations: tuple[Calibration, ...]
    num_machines: int
    calibration_length: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "calibrations", tuple(sorted(self.calibrations))
        )
        if self.num_machines < 0:
            raise InvalidScheduleError(
                f"num_machines must be >= 0, got {self.num_machines}"
            )
        if self.calibration_length <= 0:
            raise InvalidScheduleError(
                f"calibration length must be positive, got {self.calibration_length}"
            )
        for cal in self.calibrations:
            if not (0 <= cal.machine < self.num_machines):
                raise InvalidScheduleError(
                    f"calibration at t={cal.start} references machine "
                    f"{cal.machine} outside pool of size {self.num_machines}"
                )

    def __len__(self) -> int:
        return len(self.calibrations)

    def __iter__(self) -> Iterator[Calibration]:
        return iter(self.calibrations)

    @property
    def num_calibrations(self) -> int:
        """The objective value: total number of calibrations."""
        return len(self.calibrations)

    def on_machine(self, machine: int) -> tuple[Calibration, ...]:
        """Calibrations on one machine, in time order."""
        return tuple(c for c in self.calibrations if c.machine == machine)

    def overlap_violations(self, eps: float = EPS) -> list[tuple[Calibration, Calibration]]:
        """Pairs of same-machine calibrations whose intervals overlap.

        An empty list certifies the schedule's calibrations are valid.
        """
        by_machine: dict[int, list[Calibration]] = {}
        for cal in self.calibrations:
            by_machine.setdefault(cal.machine, []).append(cal)
        bad: list[tuple[Calibration, Calibration]] = []
        for cals in by_machine.values():
            for prev, cur in zip(cals, cals[1:]):
                if gt(prev.start + self.calibration_length, cur.start, eps):
                    bad.append((prev, cur))
        return bad

    def max_concurrent(self, eps: float = EPS) -> int:
        """Maximum number of calibrated intervals overlapping any instant.

        Lemma 4 bounds this by ``3 m'`` for the rounding output; the
        validators and benches measure it directly.
        """
        events: list[tuple[float, int]] = []
        for cal in self.calibrations:
            events.append((cal.start, 1))
            events.append((cal.start + self.calibration_length, -1))
        # Ends sort before starts at equal times: intervals are half-open.
        events.sort(key=lambda e: (e[0], e[1]))
        best = cur = 0
        for _, delta in events:
            cur += delta
            best = max(best, cur)
        return best

    def merged_with(
        self, other: "CalibrationSchedule", machine_offset: int | None = None
    ) -> "CalibrationSchedule":
        """Union with ``other``, placing its machines after this pool.

        Used by the combined solver of Section 2 to run the long-window and
        short-window schedules on disjoint machines.
        """
        if abs(other.calibration_length - self.calibration_length) > EPS:
            raise InvalidScheduleError(
                "cannot merge calibration schedules with different T: "
                f"{self.calibration_length} vs {other.calibration_length}"
            )
        offset = self.num_machines if machine_offset is None else machine_offset
        moved = tuple(
            Calibration(start=c.start, machine=c.machine + offset) for c in other
        )
        return CalibrationSchedule(
            calibrations=self.calibrations + moved,
            num_machines=max(self.num_machines, offset + other.num_machines),
            calibration_length=self.calibration_length,
        )


def pack_round_robin(
    starts: Iterable[float], num_machines: int, calibration_length: float
) -> CalibrationSchedule:
    """Assign calibration start times to machines in round-robin order.

    This is the machine-assignment step at the end of Algorithm 1: the k-th
    calibration (in nondecreasing start order) goes on machine
    ``k mod num_machines``.  Lemma 4 proves this cannot create same-machine
    overlaps when at most ``num_machines`` calibrations start in any length-T
    window.
    """
    ordered = sorted(starts)
    cals = tuple(
        Calibration(start=t, machine=k % num_machines)
        for k, t in enumerate(ordered)
    )
    return CalibrationSchedule(
        calibrations=cals,
        num_machines=num_machines,
        calibration_length=calibration_length,
    )
