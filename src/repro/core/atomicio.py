"""Crash-safe artifact IO: atomic writes and checksummed envelopes.

Every artifact the library persists (instances, schedules, sweep results,
the ``BENCH_perf.json`` sections) used to go through a bare
``Path.write_text``, so a crash mid-write could leave truncated JSON that
poisons the next run.  This module is the single choke point that makes
those writes crash-safe:

* :func:`atomic_write_text` / :func:`atomic_write_bytes` write to a
  temporary file in the *same directory*, ``fsync`` it, and ``os.replace``
  it over the destination — readers see either the old bytes or the new
  bytes, never a torn mixture.  The containing directory is fsynced
  best-effort so the rename itself survives a power cut.
* :func:`dump_artifact` / :func:`load_artifact` wrap a JSON payload in a
  small envelope carrying a SHA-256 content checksum, so silent bit-level
  damage is *detected* on load rather than misparsed.  Legacy plain-JSON
  files (written before the envelope existed) still load; they simply get
  no checksum verification.

Loads raise the typed :class:`~repro.core.errors.CorruptArtifactError`
(byte-level damage: unparseable JSON, checksum mismatch) so callers can
tell a damaged file from a malformed-but-intact one
(:class:`~repro.core.errors.InvalidArtifactError`).

The repro-lint rule ``ISE012`` enforces that result-bearing writes outside
this module route through it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from .errors import CorruptArtifactError

__all__ = [
    "ENVELOPE_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "checksum",
    "content_key",
    "dump_artifact",
    "is_envelope",
    "load_artifact",
]

ENVELOPE_VERSION = 1

#: Envelope key set; a JSON object with exactly these keys is an envelope.
_ENVELOPE_KEYS = frozenset({"envelope", "checksum", "payload"})


def checksum(text: str) -> str:
    """``sha256:<hex>`` content checksum of ``text`` (UTF-8)."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def content_key(*parts: object) -> str:
    """A stable fingerprint of ``parts`` for exact-content cache keys.

    Builds the key from ``repr`` of each part (callers pass primitives and
    tuples of primitives only), so equal content always produces equal keys
    across processes and sessions — unlike ``hash()``, which is salted.
    Used by the LP warm-start stash and by solve-certificate instance
    fingerprints.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory so a rename in it is durable.

    Some filesystems/platforms refuse ``open(O_RDONLY)`` on directories;
    losing the *directory* sync only risks the rename ordering after a
    power cut, not torn file content, so failures are swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + replace).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem rename, which POSIX guarantees to be
    atomic: concurrent readers (and a crash at any instant) observe either
    the complete old content or the complete new content.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(target.parent)
    return target


def atomic_write_text(path: str | Path, text: str) -> Path:
    """UTF-8 text flavor of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def is_envelope(document: Any) -> bool:
    """True when a decoded JSON document is a checksum envelope."""
    return (
        isinstance(document, dict)
        and set(document.keys()) == _ENVELOPE_KEYS
        and isinstance(document.get("checksum"), str)
    )


def dump_artifact(payload: dict[str, Any], path: str | Path) -> Path:
    """Atomically persist ``payload`` inside a checksummed envelope.

    The checksum covers the canonical (sorted-keys, compact) serialization
    of the payload, so re-indenting the file by hand does not invalidate it
    but any change to the payload content does.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    envelope = {
        "envelope": ENVELOPE_VERSION,
        "checksum": checksum(canonical),
        "payload": payload,
    }
    return atomic_write_text(path, json.dumps(envelope, indent=2) + "\n")


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load a JSON artifact, verifying its envelope checksum when present.

    Returns the payload dict.  Legacy plain-JSON files (no envelope) are
    returned as-is without verification, keeping artifacts written before
    the envelope format loadable.

    Raises:
        CorruptArtifactError: the file is not parseable JSON (torn write),
            the envelope is malformed, or the checksum does not match.
        FileNotFoundError: the file does not exist (propagated untouched so
            the CLI's missing-file handling keeps working).
    """
    source = Path(path)
    text = source.read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(
            f"not parseable as JSON (torn or truncated write?): {exc}",
            path=source,
        ) from exc
    if not is_envelope(document):
        if isinstance(document, dict):
            return document  # legacy plain payload, no checksum to verify
        raise CorruptArtifactError(
            f"expected a JSON object, found {type(document).__name__}",
            path=source,
        )
    payload = document["payload"]
    if not isinstance(payload, dict):
        raise CorruptArtifactError(
            "envelope payload is not a JSON object", path=source
        )
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    expected = document["checksum"]
    actual = checksum(canonical)
    if actual != expected:
        raise CorruptArtifactError(
            f"checksum mismatch: recorded {expected}, content hashes to "
            f"{actual} — the artifact was modified or damaged after writing",
            path=source,
        )
    return payload
