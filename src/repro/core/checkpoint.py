"""Checkpointed, resumable shard execution over an append-only journal.

Long-horizon workloads (multi-hour sweeps, the Theorem 20 per-interval MM
fan-out) must survive preemption: a SIGKILL mid-run may lose in-flight
shards, never completed ones.  This module provides the two pieces:

* :class:`ShardJournal` — an append-only JSONL journal of per-shard
  ``done``/``failed`` records.  Every line embeds a SHA-256 checksum of its
  own content, so a torn tail (the crash happened mid-``write``) is
  *detected and truncated* on resume, never silently trusted; corruption
  anywhere before the tail raises
  :class:`~repro.core.errors.CorruptArtifactError`.  Appends are flushed
  and fdatasynced per record, so a completed shard is durable the moment its
  record returns.

* :class:`CheckpointedRun` — drives
  :func:`~repro.core.parallel.parallel_map` over a list of shards,
  journaling each shard *as it completes* (via the ``on_result`` hook).
  On resume, shards with a ``done`` record are restored from the journal
  and not re-executed; the remainder re-solves.  Because every shard
  function is pure (the same contract ``parallel_map`` already imposes),
  a resumed run's combined results are byte-identical to an uninterrupted
  run's.

Recovery policy: a shard whose *worker process dies*
(``concurrent.futures.BrokenExecutor``) is retried with exponential
backoff up to ``max_shard_retries`` times, then quarantined into the
journal as ``failed`` with structured error context — the sweep completes
without it instead of aborting.  A shard that fails with a budget expiry
(:class:`~repro.core.errors.LimitExceededError`) is left *pending*: the
journal keeps every shard completed before the deadline and a later
``--resume`` re-solves only the remainder.  Any other shard exception is
deterministic (the task itself is at fault) and quarantines immediately —
retrying a pure function cannot change its answer.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence, TypeVar

from concurrent.futures import BrokenExecutor

from .errors import CorruptArtifactError, InvalidArtifactError, LimitExceededError, ReproError
from .parallel import last_fallback_reason, parallel_map

__all__ = [
    "JOURNAL_VERSION",
    "CheckpointedRun",
    "JournalState",
    "ShardJournal",
    "ShardOutcome",
    "TornTailWarning",
    "append_journal_line",
    "append_journal_lines",
    "line_checksum",
    "journal_payload",
    "shard_error_context",
    "verify_journal_line",
]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

JOURNAL_VERSION = 1

#: Shard statuses that may appear in journal records.
_RECORD_STATUSES = ("done", "failed")


class TornTailWarning(UserWarning):
    """A journal ended in a torn (unparseable / checksum-failing) tail.

    The tail is truncated on resume: the shards it would have recorded
    simply re-solve.  This is the expected aftermath of a crash mid-append,
    not an error — but it is surfaced, never silent.
    """


def line_checksum(record: dict[str, Any]) -> str:
    """Checksum of a journal record's content (everything except ``sha``).

    Public: the online session journal (:mod:`repro.online.journal`) reuses
    the exact same per-line format so both journal families share one
    torn-tail / mid-file-corruption story.
    """
    body = {k: v for k, v in record.items() if k != "sha"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def verify_journal_line(line: str) -> dict[str, Any] | None:
    """Parse and checksum-verify one journal line; None when invalid."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) or not isinstance(record.get("sha"), str):
        return None
    if line_checksum(record) != record["sha"]:
        return None
    return record


def append_journal_line(
    path: Path, record: dict[str, Any], *, append: bool = True
) -> None:
    """Stamp ``record`` with its ``sha`` and durably append it to ``path``.

    The write is flushed and fdatasynced before returning, so the record is
    durable the moment this returns — the property every crash-recovery
    proof in both journal families rests on.
    """
    append_journal_lines(path, [record], append=append)


def append_journal_lines(
    path: Path,
    records: Sequence[dict[str, Any]],
    *,
    append: bool = True,
    sync: bool = True,
) -> None:
    """Stamp and durably append a batch of records with ONE fsync.

    Identical line format to :func:`append_journal_line`; the batch shares
    a single write + flush + fdatasync, so an N-record mutation pays one
    durability round-trip instead of N.  Crash-wise this is the same
    contract as N sequential appends: the kernel may persist any prefix of
    the batch, and a torn final line is truncated on replay — exactly the
    torn-tail story both journal families already recover from.

    ``sync=False`` skips the fdatasync: the batch is flushed to the kernel
    (so it survives the *process* dying, SIGKILL included) but a machine
    crash may lose it.  Callers choose per their failure model; replay
    consistency is unaffected either way because recovery trusts only the
    verifiable journal prefix.
    """
    if not records:
        return
    payload = journal_payload(records)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "ab" if append else "wb") as handle:
        handle.write(payload)
        handle.flush()
        if sync:
            # fdatasync: the appended bytes (and the size change needed to
            # read them) reach disk; skipping the remaining metadata sync
            # roughly halves the per-record durability cost.
            os.fdatasync(handle.fileno())


def journal_payload(records: Sequence[dict[str, Any]]) -> bytes:
    """Stamp each record with its ``sha`` and encode the JSONL batch.

    The checksum is spliced into the already-serialized canonical body
    rather than re-serializing the whole record: verification
    (:func:`verify_journal_line`) re-canonicalizes the *parsed* record, so
    on-disk key order is immaterial — and one ``json.dumps`` per record
    instead of two matters to the online session journal, whose
    per-mutation write cost sits directly on the serving latency path.
    """
    lines = []
    for record in records:
        body = {k: v for k, v in record.items() if k != "sha"}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        comma = "," if canonical != "{}" else ""
        lines.append(
            canonical[:-1] + comma + '"sha":"sha256:' + digest + '"}'
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


# Backwards-compatible private aliases (pre-existing internal callers).
_line_checksum = line_checksum
_valid_line = verify_journal_line


def shard_error_context(error: BaseException) -> dict[str, Any]:
    """Structured, JSON-able context for a quarantined shard's error."""
    context: dict[str, Any] = {
        "type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, ReproError):
        if error.stage is not None:
            context["stage"] = error.stage
        if error.backend is not None:
            context["backend"] = error.backend
        if error.elapsed is not None:
            context["elapsed"] = error.elapsed
    return context


@dataclass(frozen=True)
class JournalState:
    """A verified journal replay: the header plus every shard record."""

    fingerprint: str
    total_shards: int
    records: tuple[dict[str, Any], ...]

    def latest_by_key(self) -> dict[str, dict[str, Any]]:
        """Last record per shard key (a later ``done`` supersedes ``failed``)."""
        latest: dict[str, dict[str, Any]] = {}
        for record in self.records:
            latest[str(record["key"])] = record
        return latest

    def done_payloads(self) -> dict[str, Any]:
        """Payloads of shards whose latest record is ``done``."""
        return {
            key: record.get("payload")
            for key, record in self.latest_by_key().items()
            if record.get("status") == "done"
        }


class ShardJournal:
    """Append-only, per-line-checksummed JSONL journal for one run.

    Line 1 is a header record carrying the run fingerprint (so a resume
    with different cases/config is rejected rather than silently mixing
    incompatible shards) and the planned shard count.  Every subsequent
    line is one shard record::

        {"seq": 3, "kind": "shard", "key": "mixed/n20/m2/T10/s1",
         "status": "done", "payload": {...}, "error": null,
         "attempts": 1, "sha": "sha256:..."}

    ``sha`` covers the canonical serialization of the rest of the record.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._seq = 0

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def _write_line(self, record: dict[str, Any], *, append: bool) -> None:
        append_journal_line(self.path, record, append=append)

    def create(self, fingerprint: str, total_shards: int) -> None:
        """Start a fresh journal (truncating any existing file)."""
        self._seq = 0
        self._write_line(
            {
                "seq": 0,
                "kind": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
                "total_shards": total_shards,
            },
            append=False,
        )

    def append(
        self,
        key: str,
        status: str,
        *,
        payload: Any = None,
        error: dict[str, Any] | None = None,
        attempts: int = 1,
    ) -> None:
        """Durably append one shard record (flushed + fdatasynced)."""
        if status not in _RECORD_STATUSES:
            raise ValueError(
                f"unknown shard status {status!r}; expected one of {_RECORD_STATUSES}"
            )
        self._seq += 1
        self._write_line(
            {
                "seq": self._seq,
                "kind": "shard",
                "key": key,
                "status": status,
                "payload": payload,
                "error": error,
                "attempts": attempts,
            },
            append=True,
        )

    def load(self, *, truncate_torn_tail: bool = True) -> JournalState:
        """Replay the journal, verifying every line checksum.

        A run of invalid lines at the very end is a *torn tail* — the
        expected residue of a crash mid-append.  With
        ``truncate_torn_tail`` (the default) the tail is physically
        truncated away (with a :class:`TornTailWarning`) and replay
        continues from the valid prefix.  An invalid line *followed by a
        valid one* is mid-file corruption, which no recovery policy can
        license: :class:`~repro.core.errors.CorruptArtifactError`.
        """
        raw = self.path.read_bytes()
        text = raw.decode("utf-8", errors="replace")
        offsets: list[int] = []  # byte offset of each line start
        lines: list[str] = []
        cursor = 0
        for line in text.splitlines(keepends=True):
            offsets.append(cursor)
            cursor += len(line.encode("utf-8", errors="replace"))
            lines.append(line.rstrip("\n"))
        parsed = [_valid_line(line) for line in lines]
        first_bad = next(
            (i for i, record in enumerate(parsed) if record is None), None
        )
        if first_bad is not None:
            if any(record is not None for record in parsed[first_bad + 1 :]):
                raise CorruptArtifactError(
                    f"journal line {first_bad + 1} is corrupt but later lines "
                    "verify — mid-file damage, refusing to trust any of it",
                    path=self.path,
                )
            parsed = parsed[:first_bad]
            torn = len(lines) - first_bad
            warnings.warn(
                f"journal {self.path} ends in a torn tail "
                f"({torn} unverifiable line(s)); truncating — the shards it "
                "would have recorded will re-solve",
                TornTailWarning,
                stacklevel=2,
            )
            if truncate_torn_tail:
                with open(self.path, "r+b") as handle:
                    handle.truncate(offsets[first_bad])
                    handle.flush()
        records = [record for record in parsed if record is not None]
        if not records or records[0].get("kind") != "header":
            raise CorruptArtifactError(
                "journal has no verifiable header line", path=self.path
            )
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise InvalidArtifactError(
                f"unsupported journal version {header.get('version')!r}",
                path=self.path,
                field="version",
            )
        shards = []
        expected_seq = 1
        for record in records[1:]:
            if record.get("kind") != "shard" or record.get("seq") != expected_seq:
                raise CorruptArtifactError(
                    f"journal record out of sequence at seq={record.get('seq')!r} "
                    f"(expected {expected_seq})",
                    path=self.path,
                )
            expected_seq += 1
            shards.append(record)
        self._seq = expected_seq - 1
        return JournalState(
            fingerprint=str(header.get("fingerprint", "")),
            total_shards=int(header.get("total_shards", 0)),
            records=tuple(shards),
        )


@dataclass
class ShardOutcome:
    """What happened to one shard during a checkpointed run.

    ``status`` is one of ``"done"`` (solved this run), ``"restored"``
    (skipped — its result came from the journal), ``"failed"``
    (quarantined after the retry policy gave up), or ``"pending"``
    (budget expired before it ran; a resume will pick it up).
    """

    key: str
    status: str
    value: Any = None
    error: BaseException | None = None
    error_context: dict[str, Any] | None = None
    attempts: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("done", "restored")


@dataclass
class CheckpointedRun:
    """Drive ``parallel_map`` over shards with journaling and recovery.

    Attributes:
        journal: the shard journal (existing for resume, fresh otherwise).
        fingerprint: identity of the run (cases + config).  A resume whose
            fingerprint differs from the journal's is rejected: mixing
            shards from different configurations would corrupt results.
        resume: when True, an existing journal is replayed and its ``done``
            shards are skipped.  When False, an existing journal is an
            error — never silently clobber a crashed run's progress.
        max_shard_retries: extra attempts for a shard whose worker died
            (``BrokenExecutor``); 0 quarantines on the first death.
        retry_backoff: base seconds between death-retries of one shard,
            doubling per retry (0.0 sleeps not at all).
        sleep: injectable sleeper for deterministic tests.
    """

    journal: ShardJournal
    fingerprint: str
    resume: bool = False
    max_shard_retries: int = 2
    retry_backoff: float = 0.0
    sleep: Callable[[float], None] = time.sleep
    #: Filled by :meth:`map`: why the pool degraded to serial, if it did.
    parallel_fallback: str | None = field(default=None, init=False)

    def _restore(
        self, keys: Sequence[str], total: int
    ) -> dict[str, Any]:
        """Create or replay the journal; returns done payloads by key."""
        if self.journal.exists:
            if not self.resume:
                raise InvalidArtifactError(
                    "journal already exists; pass resume=True to continue it "
                    "or delete it to start over (refusing to clobber a "
                    "previous run's progress)",
                    path=self.journal.path,
                )
            state = self.journal.load()
            if state.fingerprint != self.fingerprint:
                raise InvalidArtifactError(
                    "journal fingerprint mismatch: it records a different "
                    "case list or configuration than this run "
                    f"({state.fingerprint!r} != {self.fingerprint!r})",
                    path=self.journal.path,
                    field="fingerprint",
                )
            done = state.done_payloads()
            return {key: done[key] for key in keys if key in done}
        if self.resume:
            # Resuming with no journal is a fresh run, not an error: the
            # crash may have happened before the header hit the disk.
            self.journal.create(self.fingerprint, total)
            return {}
        self.journal.create(self.fingerprint, total)
        return {}

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Sequence[ItemT],
        keys: Sequence[str],
        *,
        encode: Callable[[ResultT], Any],
        decode: Callable[[Any], ResultT],
        max_workers: int | None = None,
        mode: str = "auto",
    ) -> list[ShardOutcome]:
        """Run ``fn`` over ``items``, journaling each shard as it completes.

        ``keys[i]`` is the stable identity of shard ``i`` across runs;
        ``encode``/``decode`` convert a shard result to/from its JSON-able
        journal payload (a decode of an encode must reproduce the result
        exactly — that is what makes resume byte-identical).  Outcomes are
        returned in input order.
        """
        items = list(items)
        if len(items) != len(keys):
            raise ValueError(
                f"{len(items)} items but {len(keys)} shard keys"
            )
        if len(set(keys)) != len(keys):
            raise ValueError("shard keys must be unique")
        restored = self._restore(keys, len(items))

        outcomes: dict[str, ShardOutcome] = {}
        for key in keys:
            if key in restored:
                outcomes[key] = ShardOutcome(
                    key=key, status="restored", value=decode(restored[key])
                )
        pending: list[tuple[str, ItemT]] = [
            (key, item)
            for key, item in zip(keys, items)
            if key not in restored
        ]
        attempts: dict[str, int] = {key: 0 for key, _ in pending}

        round_index = 0
        while pending:
            if round_index > 0 and self.retry_backoff > 0.0:
                self.sleep(self.retry_backoff * (2 ** (round_index - 1)))
            round_index += 1
            round_keys = [key for key, _ in pending]
            round_items = [item for _, item in pending]
            retry_next: list[tuple[str, ItemT]] = []

            def on_result(index: int, value: "ResultT | BaseException") -> None:
                key = round_keys[index]
                attempts[key] += 1
                if not isinstance(value, BaseException):
                    self.journal.append(
                        key, "done", payload=encode(value), attempts=attempts[key]
                    )
                    outcomes[key] = ShardOutcome(
                        key=key, status="done", value=value, attempts=attempts[key]
                    )
                    return
                if isinstance(value, LimitExceededError):
                    # Budget expiry: the shard never really ran to a verdict.
                    # Leave it un-journaled so a resume re-solves it.
                    outcomes[key] = ShardOutcome(
                        key=key,
                        status="pending",
                        error=value,
                        error_context=shard_error_context(value),
                        attempts=attempts[key],
                    )
                    return
                if (
                    isinstance(value, BrokenExecutor)
                    and attempts[key] <= self.max_shard_retries
                ):
                    retry_next.append((key, round_items[index]))
                    return
                context = shard_error_context(value)
                self.journal.append(
                    key, "failed", error=context, attempts=attempts[key]
                )
                outcomes[key] = ShardOutcome(
                    key=key,
                    status="failed",
                    error=value,
                    error_context=context,
                    attempts=attempts[key],
                )

            parallel_map(
                fn,
                round_items,
                max_workers=max_workers,
                mode=mode,
                return_exceptions=True,
                on_result=on_result,
            )
            if self.parallel_fallback is None:
                self.parallel_fallback = last_fallback_reason()
            pending = retry_next

        return [outcomes[key] for key in keys]
