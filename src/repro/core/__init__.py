"""Core data model and validators for the ISE problem.

Submodules:

* :mod:`repro.core.job` — jobs and instances (Section 1 definitions).
* :mod:`repro.core.calibration` — calibrations and calibration schedules.
* :mod:`repro.core.schedule` — full schedules (calibrations + placements).
* :mod:`repro.core.validate` — independent ISE/TISE feasibility validators.
* :mod:`repro.core.partition` — Definition 1 long/short split.
* :mod:`repro.core.solver` — the combined Theorem 1 solver.
* :mod:`repro.core.tolerance` — float comparison policy.
* :mod:`repro.core.errors` — exception hierarchy.
* :mod:`repro.core.resilience` — solve budgets, fallback chains, reports.
* :mod:`repro.core.parallel` — deterministic worker-pool execution.
* :mod:`repro.core.atomicio` — atomic, checksummed artifact writes.
* :mod:`repro.core.checkpoint` — resumable shard journals + recovery.
* :mod:`repro.core.certify` — end-to-end solve certificates (verified mode).
"""

from .atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    checksum,
    dump_artifact,
    load_artifact,
)
from .calibration import Calibration, CalibrationSchedule, pack_round_robin
from .certify import (
    GUARANTEE_FACTOR,
    SolveCertificate,
    certify_result,
    instance_fingerprint,
)
from .checkpoint import (
    CheckpointedRun,
    JournalState,
    ShardJournal,
    ShardOutcome,
    TornTailWarning,
    shard_error_context,
)
from .errors import (
    ArtifactError,
    CertificationError,
    CorruptArtifactError,
    FallbacksExhaustedError,
    NumericalDriftError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    InvalidArtifactError,
    InvalidInstanceError,
    InvalidScheduleError,
    LimitExceededError,
    OverloadError,
    ReproError,
    ServiceShutdownError,
    SolverError,
    StageTimeoutError,
)
from .parallel import (
    ParallelFallbackWarning,
    effective_workers,
    last_fallback_reason,
    parallel_map,
)
from .resilience import (
    FallbackGate,
    ResiliencePolicy,
    ResilienceReport,
    RetryPolicy,
    SolveBudget,
    StageAttempt,
    budget_scope,
    check_budget,
    current_budget,
    run_with_fallbacks,
)
from .job import LONG_WINDOW_FACTOR, Instance, Job, make_jobs
from .partition import JobPartition, partition_jobs
from .schedule import Schedule, ScheduledJob, empty_schedule
from .tolerance import EPS
from .validate import (
    ValidationReport,
    Violation,
    ViolationKind,
    check_ise,
    check_tise,
    validate_ise,
    validate_tise,
)

__all__ = [
    "Calibration",
    "CalibrationSchedule",
    "pack_round_robin",
    "Instance",
    "Job",
    "make_jobs",
    "LONG_WINDOW_FACTOR",
    "JobPartition",
    "partition_jobs",
    "Schedule",
    "ScheduledJob",
    "empty_schedule",
    "EPS",
    "ValidationReport",
    "Violation",
    "ViolationKind",
    "validate_ise",
    "validate_tise",
    "check_ise",
    "check_tise",
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "InfeasibleScheduleError",
    "InfeasibleInstanceError",
    "SolverError",
    "NumericalDriftError",
    "CertificationError",
    "LimitExceededError",
    "StageTimeoutError",
    "FallbacksExhaustedError",
    "OverloadError",
    "ServiceShutdownError",
    "ArtifactError",
    "InvalidArtifactError",
    "CorruptArtifactError",
    "atomic_write_bytes",
    "atomic_write_text",
    "checksum",
    "dump_artifact",
    "load_artifact",
    "GUARANTEE_FACTOR",
    "SolveCertificate",
    "certify_result",
    "instance_fingerprint",
    "CheckpointedRun",
    "JournalState",
    "ShardJournal",
    "ShardOutcome",
    "TornTailWarning",
    "shard_error_context",
    "ParallelFallbackWarning",
    "last_fallback_reason",
    "SolveBudget",
    "RetryPolicy",
    "ResiliencePolicy",
    "FallbackGate",
    "ResilienceReport",
    "StageAttempt",
    "budget_scope",
    "current_budget",
    "check_budget",
    "run_with_fallbacks",
    "effective_workers",
    "parallel_map",
]
