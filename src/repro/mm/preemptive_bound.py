"""Preemptive machine-minimization lower bound via maximum flow.

Classic substrate (Horn's theorem): a job set is *preemptively* feasible on
``w`` identical speed-``s`` machines iff the following network has a maximum
flow equal to the total (speed-scaled) work.  Split time at the breakpoints
``{r_j} u {d_j}`` into elementary intervals ``I_k`` of length ``len_k``:

    source -> job j            capacity  p_j / s
    job j  -> interval I_k     capacity  len_k      (if I_k inside [r_j, d_j))
    I_k    -> sink             capacity  w * len_k

The job->interval capacity encodes "a job occupies at most one machine at a
time"; the interval->sink capacity encodes "w machines".

Since preemptive feasibility is implied by nonpreemptive feasibility, the
minimum preemptively-feasible ``w`` lower-bounds the nonpreemptive MM optimum
``w*``.  This is the certified denominator used when measuring the empirical
approximation factor ``alpha`` of the MM black boxes, and it feeds the
Lemma 18 calibration lower bound.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..core.job import Job
from ..core.tolerance import EPS, LOOSE_EPS, geq, leq

__all__ = [
    "elementary_intervals",
    "preemptive_feasible",
    "preemptive_machine_lower_bound",
]

_FLOW_TOL = LOOSE_EPS


def elementary_intervals(jobs: Sequence[Job]) -> list[tuple[float, float]]:
    """Elementary intervals between consecutive release/deadline breakpoints."""
    points = sorted({j.release for j in jobs} | {j.deadline for j in jobs})
    return [
        (a, b) for a, b in zip(points, points[1:]) if b - a > EPS
    ]


def preemptive_feasible(
    jobs: Sequence[Job], w: int, speed: float = 1.0
) -> bool:
    """True iff ``jobs`` fit preemptively on ``w`` speed-``speed`` machines."""
    if not jobs:
        return True
    if w <= 0:
        return False
    intervals = elementary_intervals(jobs)
    total_work = sum(j.processing for j in jobs) / speed

    graph = nx.DiGraph()
    source, sink = "s", "t"
    for j in jobs:
        graph.add_edge(source, ("job", j.job_id), capacity=j.processing / speed)
    for k, (a, b) in enumerate(intervals):
        length = b - a
        graph.add_edge(("ivl", k), sink, capacity=w * length)
        for j in jobs:
            if geq(a, j.release) and leq(b, j.deadline):
                graph.add_edge(("job", j.job_id), ("ivl", k), capacity=length)
    flow_value, _ = nx.maximum_flow(graph, source, sink)
    return flow_value >= total_work - _FLOW_TOL * max(1.0, total_work)


def preemptive_machine_lower_bound(
    jobs: Sequence[Job], speed: float = 1.0
) -> int:
    """The minimum ``w`` that is preemptively feasible (binary search).

    Preemptive feasibility is monotone in ``w``, so binary search on
    ``[1, n]`` is valid (``w = n`` is always feasible because each job fits
    in its own window).
    """
    if not jobs:
        return 0
    lo, hi = 1, len(jobs)
    while lo < hi:
        mid = (lo + hi) // 2
        if preemptive_feasible(jobs, mid, speed):
            hi = mid
        else:
            lo = mid + 1
    return lo
