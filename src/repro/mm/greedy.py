"""Greedy list-scheduling MM heuristics.

These supply cheap, always-terminating MM black boxes: for a fixed machine
count ``w``, jobs are placed one at a time by a priority order, each on the
machine where it can start earliest; ``w`` is grown from a certified lower
bound until the placement succeeds.  With ``w = n`` every job can run alone
at its release time (``d_j >= r_j + p_j``), so termination is unconditional.

Nonpreemptive list scheduling carries no worst-case approximation guarantee
for MM — that is exactly why the paper treats the MM algorithm as a black
box with abstract ratio ``alpha``.  The benches measure the empirical
``alpha`` of each heuristic against the preemptive flow lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.errors import SolverError
from ..core.job import Job
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS, leq
from .base import MMSchedule, check_mm

__all__ = [
    "GreedyMM",
    "BestOfGreedyMM",
    "ORDERINGS",
    "try_schedule_on_w_machines",
]


def _by_deadline(job: Job) -> tuple[float, float, int]:
    return (job.deadline, job.release, job.job_id)


def _by_release(job: Job) -> tuple[float, float, int]:
    return (job.release, job.deadline, job.job_id)


def _by_latest_start(job: Job) -> tuple[float, float, int]:
    return (job.latest_start, job.deadline, job.job_id)


def _by_processing_desc(job: Job) -> tuple[float, float, int]:
    return (-job.processing, job.deadline, job.job_id)


ORDERINGS: dict[str, Callable[[Job], tuple[float, float, int]]] = {
    "edf": _by_deadline,
    "release": _by_release,
    "latest_start": _by_latest_start,
    "lpt": _by_processing_desc,
}


def try_schedule_on_w_machines(
    jobs: Sequence[Job],
    w: int,
    speed: float,
    key: Callable[[Job], tuple[float, float, int]],
) -> MMSchedule | None:
    """List-schedule ``jobs`` in ``key`` order on ``w`` speed-``speed`` machines.

    Each job goes on the machine where it can start earliest
    (``max(r_j, machine_free)``); returns None if any job would miss its
    deadline.
    """
    if w <= 0:
        return None if jobs else MMSchedule(placements=(), num_machines=0, speed=speed)
    free = [0.0] * w
    # Initialize machine availability before the earliest release so that
    # max(r_j, free) is correct even for negative release times.
    if jobs:
        earliest = min(j.release for j in jobs)
        free = [earliest] * w
    placements: list[ScheduledJob] = []
    for job in sorted(jobs, key=key):
        best_machine = -1
        best_start = float("inf")
        for machine in range(w):
            start = max(job.release, free[machine])
            if start < best_start - EPS:
                best_start = start
                best_machine = machine
        duration = job.processing / speed
        if not leq(best_start + duration, job.deadline):
            return None
        placements.append(
            ScheduledJob(start=best_start, machine=best_machine, job_id=job.job_id)
        )
        free[best_machine] = best_start + duration
    return MMSchedule(
        placements=tuple(placements), num_machines=w, speed=speed
    )


@dataclass
class GreedyMM:
    """MM black box: grow ``w`` until one list-scheduling pass succeeds.

    Attributes:
        ordering: key into :data:`ORDERINGS` (default ``"edf"``).
        start_w: optional starting machine count (e.g. a lower bound); the
            scan is linear because greedy success is not monotone in ``w``.
    """

    ordering: str = "edf"
    start_w: int = 1

    @property
    def name(self) -> str:
        return f"greedy[{self.ordering}]"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Grow ``w`` from ``start_w`` until list scheduling succeeds."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        key = ORDERINGS[self.ordering]
        w = max(1, self.start_w)
        while True:
            schedule = try_schedule_on_w_machines(jobs, w, speed, key)
            if schedule is not None:
                check_mm(jobs, schedule, context=self.name)
                return schedule
            w += 1
            if w > len(jobs):
                # w = n always succeeds; reaching here means a bug.
                schedule = try_schedule_on_w_machines(jobs, len(jobs), speed, key)
                if schedule is None:
                    raise SolverError(
                        "greedy MM failed with one machine per job; "
                        "d_j >= r_j + p_j must have been violated",
                        stage="mm",
                        backend=self.name,
                    )
                check_mm(jobs, schedule, context=self.name)
                return schedule


@dataclass
class BestOfGreedyMM:
    """MM black box: the best (fewest-machine) result over all orderings."""

    orderings: tuple[str, ...] = tuple(ORDERINGS)

    name: str = "greedy[best]"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Run every ordering and keep the schedule using fewest machines."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        best: MMSchedule | None = None
        for ordering in self.orderings:
            candidate = GreedyMM(ordering=ordering).solve(jobs, speed)
            if best is None or candidate.num_machines < best.num_machines:
                best = candidate
        if best is None:
            raise SolverError(
                "best-of-greedy ran zero orderings",
                stage="mm",
                backend=self.name,
            )
        return best
