"""Exact MM fast path for rigid jobs.

A job with zero slack (``d_j = r_j + p_j``) has exactly one possible
execution interval, so machine minimization for an all-rigid job set is
*exactly* the interval-graph coloring problem: the optimum is the maximum
overlap of the fixed intervals, achieved by the greedy left-to-right
coloring.  This gives a polynomial *exact* MM black box on a natural special
case — and the short-window partition intervals of bursty workloads are
often rigid-dominated, which is why :class:`~repro.mm.registry.AutoMM`
checks for this case first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.job import Job
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS
from .base import MMSchedule, check_mm, color_intervals, max_overlap

__all__ = ["all_rigid", "RigidExactMM"]


def all_rigid(jobs: Sequence[Job], speed: float = 1.0, eps: float = EPS) -> bool:
    """True iff every job's window equals its (speed-scaled) duration.

    At speed ``s > 1`` a job with positive slack at speed 1 gains more slack,
    so rigidity is only meaningful at the speed the schedule will run at:
    the execution interval is forced iff ``window <= p_j / s + eps``.
    """
    return all(j.window <= j.processing / speed + eps for j in jobs)


@dataclass
class RigidExactMM:
    """Exact MM black box for all-rigid job sets (interval coloring).

    ``solve`` raises ``ValueError`` when some job has slack — callers must
    check :func:`all_rigid` first (AutoMM does).
    """

    name: str = "rigid_exact"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Color the fixed execution intervals (optimal for rigid jobs)."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        if not all_rigid(jobs, speed):
            raise ValueError(
                "RigidExactMM requires zero-slack jobs; use all_rigid() to "
                "route appropriately"
            )
        intervals = [
            (j.job_id, j.release, j.release + j.processing / speed)
            for j in jobs
        ]
        coloring = color_intervals(intervals)
        w = max_overlap([(s, e) for _, s, e in intervals])
        placements = tuple(
            ScheduledJob(start=j.release, machine=coloring[j.job_id], job_id=j.job_id)
            for j in jobs
        )
        schedule = MMSchedule(placements=placements, num_machines=w, speed=speed)
        check_mm(jobs, schedule, context=self.name)
        return schedule
