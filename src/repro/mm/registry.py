"""Registry of MM black-box algorithms.

The short-window pipeline (Section 4) and the combined solver take an MM
algorithm by name or instance; this module is the single lookup point.

The ``"auto"`` algorithm picks exact search for small job sets and falls
back to the best greedy heuristic when the exact search would be too
expensive — mirroring how one would deploy the paper's reduction with the
best MM solver affordable per interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.errors import LimitExceededError
from ..core.job import Job
from .base import MMAlgorithm, MMSchedule
from .backtrack import BacktrackGreedyMM
from .exact import ExactMM
from .greedy import BestOfGreedyMM, GreedyMM
from .lp_rounding import LPRoundingMM
from .rigid import RigidExactMM, all_rigid

__all__ = ["AutoMM", "get_mm_algorithm", "resolve_mm_chain", "MM_ALGORITHMS"]


@dataclass
class AutoMM:
    """Route to the cheapest exact method that applies, else best-greedy.

    * all-rigid job sets: exact interval coloring (polynomial, any size);
    * small job sets: exact branch-and-bound;
    * otherwise (or on node-budget exhaustion): best-of-greedy.
    """

    exact_threshold: int = 10
    node_budget: int = 100_000
    time_budget: float | None = None

    name: str = "auto"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Route to rigid/exact/greedy per the class docstring's policy."""
        fallback = BestOfGreedyMM()
        if all_rigid(jobs, speed):
            return RigidExactMM().solve(jobs, speed)
        if len(jobs) > self.exact_threshold:
            return fallback.solve(jobs, speed)
        try:
            exact = ExactMM(
                node_budget=self.node_budget, time_budget=self.time_budget
            ).solve(jobs, speed)
        except LimitExceededError:
            return fallback.solve(jobs, speed)
        greedy = fallback.solve(jobs, speed)
        return exact if exact.num_machines <= greedy.num_machines else greedy


def _make_algorithms() -> dict[str, MMAlgorithm]:
    algorithms: dict[str, MMAlgorithm] = {
        "greedy_edf": GreedyMM(ordering="edf"),
        "greedy_release": GreedyMM(ordering="release"),
        "greedy_latest_start": GreedyMM(ordering="latest_start"),
        "greedy_lpt": GreedyMM(ordering="lpt"),
        "best_greedy": BestOfGreedyMM(),
        "backtrack": BacktrackGreedyMM(),
        "lp_rounding": LPRoundingMM(),
        "exact": ExactMM(),
        "rigid_exact": RigidExactMM(),
        "auto": AutoMM(),
    }
    return algorithms


MM_ALGORITHMS: dict[str, MMAlgorithm] = _make_algorithms()


def get_mm_algorithm(spec: str | MMAlgorithm) -> MMAlgorithm:
    """Resolve an algorithm name or pass an instance through.

    Names are resolved at *call time* by the pipelines (not cached), so a
    registry entry swapped out — e.g. by the fault-injection harness in
    :mod:`repro.testing.faults` — is picked up by the very next solve.
    """
    if isinstance(spec, str):
        try:
            return MM_ALGORITHMS[spec]
        except KeyError:
            raise KeyError(
                f"unknown MM algorithm {spec!r}; available: "
                f"{sorted(MM_ALGORITHMS)}"
            ) from None
    return spec


def resolve_mm_chain(
    primary: str | MMAlgorithm, fallbacks: Sequence[str] = ()
) -> list[tuple[str, str | MMAlgorithm]]:
    """Build ``(display_name, spec)`` fallback candidates, primary first.

    Specs stay *unresolved* (names or instances); the pipeline resolves
    each via :func:`get_mm_algorithm` at attempt time so registry swaps
    (fault injection, hot reconfiguration) take effect per attempt.
    Fallback names equal to the primary's name are dropped.
    """
    if isinstance(primary, str):
        primary_name = primary
    else:
        primary_name = getattr(primary, "name", type(primary).__name__)
    chain: list[tuple[str, str | MMAlgorithm]] = [(primary_name, primary)]
    for name in fallbacks:
        if name != primary_name:
            chain.append((name, name))
    return chain
