"""Machine-minimization (MM) problem: interface and schedule type.

The MM problem (Section 1 of the paper, refs [8, 11, 14]): given jobs with
release times, deadlines, and processing times, find the minimum number of
machines on which all jobs can be scheduled nonpreemptively by their
deadlines.  The paper's main theorem consumes *any* MM algorithm as a black
box; this module defines that black-box interface
(:class:`MMAlgorithm`) and the schedule type it must return.

An ``s``-speed MM algorithm schedules jobs whose effective processing time is
``p_j / s``; the returned :class:`MMSchedule` records the speed it assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from ..core.errors import InfeasibleScheduleError
from ..core.job import Job
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS, geq, gt, leq

__all__ = ["MMSchedule", "MMAlgorithm", "validate_mm", "check_mm", "max_overlap"]


@dataclass(frozen=True)
class MMSchedule:
    """A nonpreemptive multi-machine schedule (no calibrations).

    Attributes:
        placements: start time + machine per job.
        num_machines: the objective value ``w``.
        speed: machine speed the schedule assumes (resource augmentation).
    """

    placements: tuple[ScheduledJob, ...]
    num_machines: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "placements", tuple(sorted(self.placements)))

    def __len__(self) -> int:
        return len(self.placements)

    def placement_of(self, job_id: int) -> ScheduledJob:
        for placement in self.placements:
            if placement.job_id == job_id:
                return placement
        raise KeyError(f"job {job_id} is not scheduled")

    def jobs_on_machine(self, machine: int) -> tuple[ScheduledJob, ...]:
        return tuple(p for p in self.placements if p.machine == machine)


@runtime_checkable
class MMAlgorithm(Protocol):
    """The black-box MM interface consumed by the short-window pipeline.

    Implementations must return a schedule that passes :func:`validate_mm`
    for the given jobs at the given speed, using as few machines as the
    algorithm can manage.  ``name`` identifies the algorithm in reports.
    """

    name: str

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Schedule ``jobs`` nonpreemptively on speed-``speed`` machines."""
        ...


def validate_mm(
    jobs: Sequence[Job], schedule: MMSchedule, eps: float = EPS
) -> list[str]:
    """Return a list of violation messages (empty list = feasible MM schedule).

    Checks the two MM feasibility properties named in Lemma 15's proof:
    every job runs nonpreemptively inside its window, and jobs on the same
    machine do not overlap.  Also checks completeness and machine indices.
    """
    problems: list[str] = []
    job_map = {j.job_id: j for j in jobs}
    placed: set[int] = set()
    for placement in schedule.placements:
        job = job_map.get(placement.job_id)
        if job is None:
            problems.append(f"unknown job id {placement.job_id}")
            continue
        if placement.job_id in placed:
            problems.append(f"job {placement.job_id} placed twice")
        placed.add(placement.job_id)
        if not (0 <= placement.machine < schedule.num_machines):
            problems.append(
                f"job {job.job_id} on machine {placement.machine} outside "
                f"pool of {schedule.num_machines}"
            )
        end = placement.end(job.processing, schedule.speed)
        if not geq(placement.start, job.release, eps):
            problems.append(
                f"job {job.job_id} starts {placement.start} before release "
                f"{job.release}"
            )
        if not leq(end, job.deadline, eps):
            problems.append(
                f"job {job.job_id} ends {end} after deadline {job.deadline}"
            )
    for job in jobs:
        if job.job_id not in placed:
            problems.append(f"job {job.job_id} not scheduled")
    by_machine: dict[int, list[ScheduledJob]] = {}
    for placement in schedule.placements:
        if placement.job_id in job_map:
            by_machine.setdefault(placement.machine, []).append(placement)
    for machine, plist in by_machine.items():
        plist.sort()
        for prev, cur in zip(plist, plist[1:]):
            prev_end = prev.end(job_map[prev.job_id].processing, schedule.speed)
            if gt(prev_end, cur.start, eps):
                problems.append(
                    f"jobs {prev.job_id}/{cur.job_id} overlap on machine {machine}"
                )
    return problems


def check_mm(jobs: Sequence[Job], schedule: MMSchedule, context: str = "") -> None:
    """Raise unless ``schedule`` is a feasible MM schedule for ``jobs``."""
    problems = validate_mm(jobs, schedule)
    if problems:
        prefix = f"{context}: " if context else ""
        raise InfeasibleScheduleError(
            prefix + "; ".join(problems[:5])
            + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
        )


def max_overlap(
    intervals: Sequence[tuple[float, float]], eps: float = EPS
) -> int:
    """Maximum number of half-open intervals covering any single instant.

    Tolerance-aware: an interval ending within ``eps`` of another's start
    does not overlap it.  This matches both :func:`color_intervals` (which
    reuses a machine once ``end <= start + EPS``) and the overlap predicate
    in :func:`validate_mm`, so a schedule colored with ``max_overlap``
    machines always validates.  Exact-arithmetic sweeping here used to
    overcount chains of floating-point-adjacent intervals whose recomputed
    endpoints differ by an ulp.
    """
    import heapq

    ends: list[float] = []
    best = 0
    for start, end in sorted(intervals):
        while ends and ends[0] <= start + eps:
            heapq.heappop(ends)
        heapq.heappush(ends, end)
        best = max(best, len(ends))
    return best


def color_intervals(
    intervals: Sequence[tuple[int, float, float]],
) -> dict[int, int]:
    """Greedy left-to-right interval-graph coloring (optimal for intervals).

    ``intervals`` holds ``(key, start, end)``; returns ``{key: machine}``
    using exactly ``max_overlap`` machines.  Used to turn a set of chosen
    execution intervals into a machine assignment.
    """
    order = sorted(intervals, key=lambda it: (it[1], it[2]))
    import heapq

    free: list[int] = []  # machine indices available for reuse
    busy: list[tuple[float, int]] = []  # (end, machine)
    assignment: dict[int, int] = {}
    next_machine = 0
    for key, start, end in order:
        while busy and busy[0][0] <= start + EPS:
            _, machine = heapq.heappop(busy)
            heapq.heappush(free, machine)
        if free:
            machine = heapq.heappop(free)
        else:
            machine = next_machine
            next_machine += 1
        assignment[key] = machine
        heapq.heappush(busy, (end, machine))
    return assignment
