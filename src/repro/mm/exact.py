"""Exact machine minimization via branch and bound (small instances).

Feasibility of nonpreemptive scheduling on ``w`` machines is NP-hard, so the
exact solver is a Bratley-style depth-first search, safe for the small
interval sub-instances of Section 4 and for certifying the empirical
``alpha`` of the heuristic black boxes on small workloads.

Soundness of the branching rule (active schedules): in any feasible
schedule, the job that *starts first* among the remaining jobs can be moved
(i) onto the machine with the minimum current finish time (swap machine
suffixes — all later jobs start no earlier, so they still fit) and (ii) to
the earliest start ``max(r_j, f_min)`` (shifting a job earlier within its
window on a free machine preserves feasibility).  Hence searching only
"next job on the least-loaded machine at its earliest start" is exhaustive.

Feasibility on ``w`` machines is monotone in ``w``, so the optimum is found
by binary search between the preemptive flow lower bound and a greedy upper
bound.
"""

from __future__ import annotations

import time

from dataclasses import dataclass, field
from typing import Sequence

from ..core.errors import LimitExceededError, SolverError, StageTimeoutError
from ..core.job import Job
from ..core.resilience import check_budget
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS, leq
from .base import MMSchedule, check_mm
from .greedy import BestOfGreedyMM
from .preemptive_bound import preemptive_machine_lower_bound

__all__ = ["ExactMM", "feasible_on_machines"]

_BUDGET_POLL_NODES = 256  # search nodes between wall-clock checks


def _round_state(value: float) -> float:
    return round(value, 9)


def feasible_on_machines(
    jobs: Sequence[Job],
    w: int,
    speed: float = 1.0,
    node_budget: int = 200_000,
    deadline: float | None = None,
) -> MMSchedule | None:
    """Search for a feasible nonpreemptive schedule on ``w`` machines.

    Returns a feasible :class:`MMSchedule` or None if none exists.  Raises
    :class:`LimitExceededError` when the node budget runs out before the
    question is decided, and :class:`StageTimeoutError` when the explicit
    ``deadline`` (monotonic seconds) or the ambient solve budget expires.
    """
    if not jobs:
        return MMSchedule(placements=(), num_machines=max(w, 0), speed=speed)
    if w <= 0:
        return None
    job_list = sorted(jobs, key=lambda j: (j.deadline, j.release, j.job_id))
    durations = [j.processing / speed for j in job_list]
    n = len(job_list)
    start_floor = min(j.release for j in job_list)

    failed: set[tuple[frozenset[int], tuple[float, ...]]] = set()
    nodes = 0

    placements: list[ScheduledJob | None] = [None] * n

    def dfs(remaining: frozenset[int], finishes: tuple[float, ...]) -> bool:
        nonlocal nodes
        if not remaining:
            return True
        nodes += 1
        if nodes > node_budget:
            raise LimitExceededError(
                f"exact MM search exceeded node budget {node_budget} "
                f"(n={n}, w={w})",
                stage="mm",
                backend="exact",
            )
        if nodes % _BUDGET_POLL_NODES == 0:
            check_budget("mm", "exact")
            if deadline is not None and time.monotonic() > deadline:
                raise StageTimeoutError(
                    f"exact MM search exceeded its time budget "
                    f"(n={n}, w={w}, {nodes} nodes)",
                    stage="mm",
                    backend="exact",
                )
        state = (remaining, finishes)
        if state in failed:
            return False
        f_min = finishes[0]
        # Dead-state prune: every remaining job can start no earlier than
        # max(r_j, f_min); if any must then miss its deadline, backtrack.
        for idx in remaining:
            job = job_list[idx]
            earliest = max(job.release, f_min)
            if not leq(earliest + durations[idx], job.deadline):
                failed.add(state)
                return False
        tried_starts: set[float] = set()
        # Branch in EDF order (indices are deadline-sorted) — finds feasible
        # schedules fast when they exist.
        for idx in sorted(remaining):
            job = job_list[idx]
            start = max(job.release, f_min)
            key = _round_state(start)
            # Symmetry prune: two branches with identical (start, duration,
            # window) are interchangeable; trying one suffices per start only
            # when jobs are identical, so key on the full signature.
            sig = (key, durations[idx], job.release, job.deadline)
            if sig in tried_starts:
                continue
            tried_starts.add(sig)
            end = start + durations[idx]
            new_finishes = tuple(sorted(finishes[1:] + (end,)))
            placements[idx] = ScheduledJob(start=start, machine=-1, job_id=job.job_id)
            if dfs(remaining - {idx}, new_finishes):
                return True
            placements[idx] = None
        failed.add(state)
        return False

    found = dfs(frozenset(range(n)), tuple([start_floor] * w))
    if not found:
        return None

    # Recover machine indices: placements carry start times; pack the chosen
    # execution intervals greedily (the DFS guarantees max overlap <= w).
    chosen = [
        (p.job_id, p.start, p.start + durations[i])
        for i, p in enumerate(placements)
        if p is not None
    ]
    if len(chosen) != n:
        raise SolverError(
            f"exact MM DFS placed {len(chosen)} of {n} jobs despite "
            "reporting success",
            stage="mm",
            backend="exact",
        )
    from .base import color_intervals

    coloring = color_intervals(chosen)
    final = tuple(
        ScheduledJob(start=s, machine=coloring[jid], job_id=jid)
        for jid, s, _ in chosen
    )
    schedule = MMSchedule(placements=final, num_machines=w, speed=speed)
    check_mm(jobs, schedule, context="exact-mm")
    return schedule


@dataclass
class ExactMM:
    """MM black box: exact optimum via B&B with binary search on ``w``.

    Raises :class:`LimitExceededError` when the instance is too large for
    the node budget and :class:`StageTimeoutError` when ``time_budget``
    seconds (shared across the whole binary search) run out; wrap with the
    registry's ``"auto"`` algorithm — or a resilience fallback chain — to
    fall back to heuristics in either case.
    """

    node_budget: int = 200_000
    time_budget: float | None = None

    name: str = "exact"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Binary-search the optimal ``w``, certifying each probe by B&B."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        deadline = (
            time.monotonic() + self.time_budget
            if self.time_budget is not None
            else None
        )
        lo = max(1, preemptive_machine_lower_bound(jobs, speed))
        upper_schedule = BestOfGreedyMM().solve(jobs, speed)
        hi = upper_schedule.num_machines
        best = upper_schedule
        while lo < hi:
            mid = (lo + hi) // 2
            schedule = feasible_on_machines(
                jobs, mid, speed, node_budget=self.node_budget,
                deadline=deadline,
            )
            if schedule is not None:
                best = schedule
                hi = mid
            else:
                lo = mid + 1
        if best.num_machines != lo:
            schedule = feasible_on_machines(
                jobs, lo, speed, node_budget=self.node_budget,
                deadline=deadline,
            )
            if schedule is None:
                raise SolverError(
                    "binary search invariant violated: final w probe "
                    "infeasible after feasibility was certified",
                    stage="mm",
                    backend=self.name,
                )
            best = schedule
        return best
