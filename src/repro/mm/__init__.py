"""Machine-minimization (MM) substrate — the black box of Theorem 1.

* :mod:`repro.mm.base` — interface, MM schedule type, validator.
* :mod:`repro.mm.greedy` — list-scheduling heuristics.
* :mod:`repro.mm.lp_rounding` — LP relaxation + randomized rounding.
* :mod:`repro.mm.exact` — exact branch-and-bound (small instances).
* :mod:`repro.mm.preemptive_bound` — max-flow preemptive lower bound.
* :mod:`repro.mm.registry` — name-based lookup, ``"auto"`` policy.
"""

from .backtrack import BacktrackGreedyMM
from .base import MMAlgorithm, MMSchedule, check_mm, max_overlap, validate_mm
from .exact import ExactMM, feasible_on_machines
from .greedy import BestOfGreedyMM, GreedyMM, try_schedule_on_w_machines
from .lp_rounding import LPRoundingMM, fractional_mm_value
from .preemptive_bound import (
    elementary_intervals,
    preemptive_feasible,
    preemptive_machine_lower_bound,
)
from .registry import MM_ALGORITHMS, AutoMM, get_mm_algorithm
from .rigid import RigidExactMM, all_rigid

__all__ = [
    "MMAlgorithm",
    "MMSchedule",
    "validate_mm",
    "check_mm",
    "max_overlap",
    "GreedyMM",
    "BestOfGreedyMM",
    "try_schedule_on_w_machines",
    "LPRoundingMM",
    "fractional_mm_value",
    "ExactMM",
    "feasible_on_machines",
    "preemptive_feasible",
    "preemptive_machine_lower_bound",
    "elementary_intervals",
    "AutoMM",
    "MM_ALGORITHMS",
    "get_mm_algorithm",
    "RigidExactMM",
    "all_rigid",
    "BacktrackGreedyMM",
]
