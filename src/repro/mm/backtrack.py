"""Backtracking greedy MM: list scheduling with one-level repair.

Plain EDF list scheduling commits each job to its earliest slot and fails
hard when a later job misses its deadline.  This box adds a bounded repair
move: when job ``j`` cannot fit on any machine, try *displacing* one
already-placed job ``k`` whose slot ``j`` could use, provided ``k`` itself
can be replayed afterwards.  One level of displacement closes most of the
gap to the exact optimum at a tiny cost, giving the ISE reduction a stronger
polynomial black box than plain greedy (the T20 bench shows the measured
alpha drop).

Still a heuristic — no worst-case guarantee, exactly the regime Theorem 1's
black-box abstraction is designed for.
"""

from __future__ import annotations

import time

from dataclasses import dataclass
from typing import Sequence

from ..core.errors import StageTimeoutError
from ..core.job import Job
from ..core.resilience import check_budget
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS, leq
from .base import MMSchedule, check_mm
from .greedy import ORDERINGS

__all__ = ["BacktrackGreedyMM"]


def _earliest_start(job: Job, free: list[float], speed: float) -> tuple[int, float]:
    """Machine and earliest feasible start for ``job`` given machine frees."""
    best_machine, best_start = -1, float("inf")
    for machine, available in enumerate(free):
        start = max(job.release, available)
        if start < best_start - EPS:
            best_machine, best_start = machine, start
    return best_machine, best_start


def _try_with_displacement(
    jobs_in_order: list[Job], w: int, speed: float
) -> list[ScheduledJob] | None:
    """List-schedule with one displacement repair per conflict."""
    free = [min(j.release for j in jobs_in_order)] * w
    placed: list[tuple[Job, int, float]] = []  # (job, machine, start)

    def fits(job: Job, start: float) -> bool:
        return leq(start + job.processing / speed, job.deadline)

    for job in jobs_in_order:
        machine, start = _earliest_start(job, free, speed)
        if fits(job, start):
            placed.append((job, machine, start))
            free[machine] = start + job.processing / speed
            continue
        # Repair: displace one earlier job k on some machine and replay.
        repaired = False
        for victim_idx in range(len(placed) - 1, -1, -1):
            victim, v_machine, v_start = placed[victim_idx]
            # j takes victim's slot if it fits the victim's start.
            j_start = max(job.release, v_start)
            j_end = j_start + job.processing / speed
            # The machine's timeline after the victim must accommodate the
            # shift; only attempt when the victim was the LAST job on its
            # machine (otherwise the replay cascades — out of scope for a
            # one-level repair).
            is_last = all(
                not (m == v_machine and s > v_start + EPS)
                for _, m, s in placed
            )
            if not is_last or not fits(job, j_start):
                continue
            # Replay the victim after j (on any machine).
            trial_free = free.copy()
            trial_free[v_machine] = j_end
            k_machine, k_start = _earliest_start(victim, trial_free, speed)
            if not fits(victim, k_start):
                continue
            placed[victim_idx] = (job, v_machine, j_start)
            placed.append((victim, k_machine, k_start))
            free[v_machine] = j_end
            free[k_machine] = max(
                free[k_machine] if k_machine != v_machine else j_end,
                k_start + victim.processing / speed,
            )
            repaired = True
            break
        if not repaired:
            return None
    return [
        ScheduledJob(start=start, machine=machine, job_id=job.job_id)
        for job, machine, start in placed
    ]


@dataclass
class BacktrackGreedyMM:
    """MM black box: EDF list scheduling with one-level displacement repair.

    Grows ``w`` from 1 until the repaired greedy succeeds (``w = n`` always
    does).  ``time_budget`` seconds (checked between ``w`` attempts, along
    with the ambient solve budget) raises :class:`StageTimeoutError` so the
    resilience layer can swap in a cheaper black box.
    """

    ordering: str = "edf"
    time_budget: float | None = None

    @property
    def name(self) -> str:
        return f"backtrack[{self.ordering}]"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """Grow ``w`` until displacement-repaired list scheduling succeeds."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        deadline = (
            time.monotonic() + self.time_budget
            if self.time_budget is not None
            else None
        )
        key = ORDERINGS[self.ordering]
        ordered = sorted(jobs, key=key)
        for w in range(1, len(jobs) + 1):
            check_budget("mm", self.name)
            if deadline is not None and time.monotonic() > deadline:
                raise StageTimeoutError(
                    f"{self.name} exceeded its time budget at w={w}",
                    stage="mm",
                    backend=self.name,
                )
            placements = _try_with_displacement(ordered, w, speed)
            if placements is not None:
                schedule = MMSchedule(
                    placements=tuple(placements), num_machines=w, speed=speed
                )
                check_mm(jobs, schedule, context=self.name)
                return schedule
        raise AssertionError("n machines must always suffice")  # pragma: no cover
