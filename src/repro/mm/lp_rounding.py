"""LP-relaxation + randomized-rounding MM black box.

This is the practical stand-in for the LP-based MM approximations the paper
cites (Raghavan-Thompson randomized rounding [14], Chuzhoy et al. [8]): a
time-indexed LP over discretized start points chooses a fractional start
distribution per job while minimizing the machine count ``w``; randomized
rounding then samples one start per job from its distribution, and the
sampled execution intervals are packed onto machines with an (optimal)
interval-graph coloring.

The discretization uses the event points ``{r_i, d_i, r_i + p_i/s,
d_i - p_i/s}`` clamped into each job's feasible start range, so every
candidate start is feasible for its job — rounding can therefore never
violate a window, only use more machines than the LP bound.  The empirical
ratio ``w_rounded / ceil(w_LP)`` is the measured ``alpha`` of this black box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.errors import SolverError
from ..core.job import Job
from ..core.schedule import ScheduledJob
from ..core.tolerance import EPS, geq, leq
from ..lp import LinearProgram, Sense, get_backend
from .base import MMSchedule, check_mm, color_intervals, max_overlap

__all__ = ["LPRoundingMM", "fractional_mm_value", "candidate_starts"]


def candidate_starts(jobs: Sequence[Job], speed: float) -> dict[int, list[float]]:
    """Feasible discretized start points per job.

    Always includes the job's earliest (``r_j``) and latest
    (``d_j - p_j/s``) starts, plus every global event point that falls in
    between.
    """
    events: set[float] = set()
    for j in jobs:
        dur = j.processing / speed
        events.update((j.release, j.deadline, j.release + dur, j.deadline - dur))
    ordered = sorted(events)
    out: dict[int, list[float]] = {}
    for j in jobs:
        dur = j.processing / speed
        latest = j.deadline - dur
        starts = {j.release, latest}
        for e in ordered:
            if geq(e, j.release) and leq(e, latest):
                starts.add(min(max(e, j.release), latest))
        out[j.job_id] = sorted(starts)
    return out


def _build_lp(
    jobs: Sequence[Job], speed: float
) -> tuple[LinearProgram, dict[tuple[int, float], int], int]:
    """Time-indexed LP: minimize w s.t. each job starts once, overlap <= w."""
    starts = candidate_starts(jobs, speed)
    lp = LinearProgram("mm-lp")
    w_var = lp.add_variable(objective=1.0, name="w")
    var_of: dict[tuple[int, float], int] = {}
    for j in jobs:
        terms = []
        for s in starts[j.job_id]:
            idx = lp.add_variable(objective=0.0, upper=1.0, name=f"z[{j.job_id}@{s}]")
            var_of[(j.job_id, s)] = idx
            terms.append((idx, 1.0))
        lp.add_constraint(terms, Sense.EQ, 1.0, name=f"assign[{j.job_id}]")
    durations = {j.job_id: j.processing / speed for j in jobs}
    checkpoints = sorted({s for (_, s) in var_of})
    for c in checkpoints:
        terms = [(w_var, -1.0)]
        for (job_id, s), idx in var_of.items():
            if leq(s, c) and c < s + durations[job_id] - EPS:
                terms.append((idx, 1.0))
        if len(terms) > 1:
            lp.add_constraint(terms, Sense.LE, 0.0, name=f"cap[{c}]")
    return lp, var_of, w_var


def fractional_mm_value(
    jobs: Sequence[Job], speed: float = 1.0, backend: str = "highs"
) -> float:
    """The LP optimum ``w_LP`` (a lower bound on the discretized MM optimum)."""
    if not jobs:
        return 0.0
    lp, _, _ = _build_lp(jobs, speed)
    solution = get_backend(backend)(lp)
    if not solution.ok:
        raise SolverError(
            f"MM LP unexpectedly {solution.status.value}: {solution.message}"
        )
    return float(solution.objective)


@dataclass
class LPRoundingMM:
    """MM black box: time-indexed LP + randomized rounding + interval coloring.

    Attributes:
        trials: number of randomized rounding trials (best kept).
        seed: RNG seed for reproducibility.
        backend: LP backend name.
    """

    trials: int = 25
    seed: int = 0
    backend: str = "highs"

    name: str = "lp_rounding"

    def solve(self, jobs: Sequence[Job], speed: float = 1.0) -> MMSchedule:
        """LP-relax, round ``trials`` times, and keep the best coloring."""
        if not jobs:
            return MMSchedule(placements=(), num_machines=0, speed=speed)
        lp, var_of, _ = _build_lp(jobs, speed)
        solution = get_backend(self.backend)(lp)
        if not solution.ok or solution.x is None:
            raise SolverError(
                f"MM LP unexpectedly {solution.status.value}: {solution.message}"
            )
        # Per-job start distributions from the LP solution.
        dist: dict[int, tuple[list[float], np.ndarray]] = {}
        for j in jobs:
            starts = [s for (jid, s) in var_of if jid == j.job_id]
            starts.sort()
            weights = np.array(
                [max(0.0, solution.value(var_of[(j.job_id, s)])) for s in starts]
            )
            total = weights.sum()
            if total <= 0:  # degenerate LP output; fall back to earliest start
                weights = np.zeros(len(starts))
                weights[0] = 1.0
                total = 1.0
            dist[j.job_id] = (starts, weights / total)

        durations = {j.job_id: j.processing / speed for j in jobs}
        rng = np.random.default_rng(self.seed)
        best: MMSchedule | None = None
        for trial in range(max(1, self.trials)):
            chosen: dict[int, float] = {}
            for j in jobs:
                starts, probs = dist[j.job_id]
                if trial == 0:
                    # Deterministic trial: most-weighted start per job.
                    chosen[j.job_id] = starts[int(np.argmax(probs))]
                else:
                    chosen[j.job_id] = float(rng.choice(starts, p=probs))
            intervals = [
                (jid, s, s + durations[jid]) for jid, s in chosen.items()
            ]
            w = max_overlap([(s, e) for _, s, e in intervals])
            if best is not None and w >= best.num_machines:
                continue
            coloring = color_intervals(intervals)
            placements = tuple(
                ScheduledJob(start=chosen[jid], machine=coloring[jid], job_id=jid)
                for jid in chosen
            )
            candidate = MMSchedule(
                placements=placements, num_machines=w, speed=speed
            )
            check_mm(jobs, candidate, context=self.name)
            best = candidate
        if best is None:
            raise SolverError(
                "LP rounding produced no candidate schedule across "
                f"{max(1, self.trials)} trial(s)",
                stage="mm",
                backend=self.name,
            )
        return best
