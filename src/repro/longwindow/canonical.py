"""Calibration canonicalization (the proof construction of Lemma 3).

Lemma 3: there is an optimal TISE solution in which every calibration either
starts at some job's release time or immediately follows the previous
calibration on its machine.  The proof transforms an arbitrary schedule by
scanning each machine's calibrations in time order and sliding each one
earlier (together with its jobs) until it hits a release time or the end of
the previous calibration.

:func:`canonicalize` implements that transformation for *any* feasible TISE
schedule.  It is used to machine-check Lemma 3 itself (tests verify that
canonicalization preserves TISE feasibility and the calibration count, and
that every resulting start lies in the potential-point set
``{r_j + k*T}``), and it doubles as a cosmetic normalizer: canonical
schedules are easier to compare and render.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import InvalidScheduleError
from ..core.job import Instance
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, geq

__all__ = ["CanonicalizationResult", "canonicalize"]


@dataclass(frozen=True)
class CanonicalizationResult:
    """Canonical schedule plus how far calibrations moved."""

    schedule: Schedule
    total_shift: float
    moved_calibrations: int


def canonicalize(instance: Instance, schedule: Schedule) -> CanonicalizationResult:
    """Slide every calibration as early as Lemma 3 allows.

    For each machine, calibrations are processed in increasing start order;
    calibration ``k`` moves to the latest of

    * the end of calibration ``k-1`` on the same machine, and
    * the largest *limit point* not exceeding its current start, where the
      limit points are the job release times (sliding past a release could
      strand a job scheduled at it).

    Jobs inside a calibration move with it (same offsets).  Requires a
    TISE-feasible input: a job whose window only partially contains its
    calibration could become release-violating when shifted, which the TISE
    restriction excludes — the shift never passes ``r_j`` for any job in the
    calibration because ``r_j`` is a limit point ``<=`` the calibration's
    start under the TISE constraint.
    """
    T = schedule.calibration_length
    job_map = instance.job_map()
    releases = sorted({j.release for j in instance.jobs})

    # Group placements by their enclosing calibration.
    jobs_in_cal: dict[tuple[float, int], list[ScheduledJob]] = {}
    for placement in schedule.placements:
        job = job_map.get(placement.job_id)
        if job is None:
            raise InvalidScheduleError(
                f"unknown job {placement.job_id} in schedule"
            )
        cal = schedule.enclosing_calibration(placement, job.processing)
        if cal is None:
            raise InvalidScheduleError(
                f"job {placement.job_id} lacks an enclosing calibration"
            )
        jobs_in_cal.setdefault((cal.start, cal.machine), []).append(placement)

    new_cals: list[Calibration] = []
    new_placements: list[ScheduledJob] = []
    total_shift = 0.0
    moved = 0

    for machine in range(schedule.calibrations.num_machines):
        prev_end = float("-inf")
        for cal in schedule.calibrations.on_machine(machine):
            # Largest release time <= current start (or -inf if none).
            idx = bisect.bisect_right(releases, cal.start + EPS) - 1
            release_floor = releases[idx] if idx >= 0 else float("-inf")
            new_start = max(prev_end, release_floor)
            if new_start == float("-inf"):
                # No limit point at all (no jobs anywhere earlier): Lemma 3's
                # optimal solutions contain no such empty leading
                # calibration, but an input may; leave it in place.
                new_start = cal.start
            new_start = min(new_start, cal.start)  # only ever move earlier
            shift = cal.start - new_start
            if shift > EPS:
                moved += 1
                total_shift += shift
            new_cals.append(Calibration(start=new_start, machine=machine))
            for placement in jobs_in_cal.get((cal.start, cal.machine), []):
                new_placements.append(
                    ScheduledJob(
                        start=placement.start - shift,
                        machine=machine,
                        job_id=placement.job_id,
                    )
                )
            prev_end = new_start + T

    canonical = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(new_cals),
            num_machines=schedule.calibrations.num_machines,
            calibration_length=T,
        ),
        placements=tuple(new_placements),
        speed=schedule.speed,
    )
    return CanonicalizationResult(
        schedule=canonical, total_shift=total_shift, moved_calibrations=moved
    )
