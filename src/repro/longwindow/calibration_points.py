"""Potential calibration points (Lemma 3).

Lemma 3: there is an optimal TISE solution in which every calibration either
starts at some job's release time or immediately follows the previous
calibration on its machine.  Hence only the ``O(n^2)`` points

    T_set = { r_j + k*T : j in J, k in {0, 1, ..., n} }

need to be considered, and the LP of Section 3 is indexed by them.

:func:`potential_calibration_points` also prunes points at which no job can
be TISE-feasibly assigned: the LP would keep ``C_t = 0`` there (such a
calibration adds cost and can serve no job), so dropping the variables is
optimum-preserving and shrinks the LP substantially.
"""

from __future__ import annotations

from typing import Sequence

from ..core.job import Job
from ..core.tolerance import EPS, geq, leq
from .tise import tise_feasible_for

__all__ = ["potential_calibration_points", "raw_calibration_points"]


def _dedupe_sorted(values: list[float], eps: float = EPS) -> list[float]:
    """Sort and merge values closer than ``eps`` (floating-point dedupe)."""
    values.sort()
    out: list[float] = []
    for v in values:
        if not out or v - out[-1] > eps:
            out.append(v)
    return out


def raw_calibration_points(
    jobs: Sequence[Job], calibration_length: float, max_packed: int | None = None
) -> list[float]:
    """The unpruned Lemma 3 set ``{r_j + k*T : 0 <= k <= n}``, deduplicated.

    ``max_packed`` overrides the number of packed repetitions per release
    (defaults to ``n``, the Lemma 3 bound).
    """
    n = len(jobs)
    kmax = n if max_packed is None else max_packed
    values = [
        job.release + k * calibration_length
        for job in jobs
        for k in range(kmax + 1)
    ]
    return _dedupe_sorted(values)


def potential_calibration_points(
    jobs: Sequence[Job], calibration_length: float, prune: bool = True
) -> list[float]:
    """Lemma 3 candidate calibration start times, optionally pruned.

    With ``prune=True`` (default) only points serving at least one job under
    the TISE constraint are kept; this never changes the LP optimum because
    a calibration no job can use contributes cost and nothing else.
    """
    points = raw_calibration_points(jobs, calibration_length)
    if not prune:
        return points
    return [
        t
        for t in points
        if any(tise_feasible_for(job, t, calibration_length) for job in jobs)
    ]
