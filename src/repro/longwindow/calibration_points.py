"""Potential calibration points (Lemma 3).

Lemma 3: there is an optimal TISE solution in which every calibration either
starts at some job's release time or immediately follows the previous
calibration on its machine.  Hence only the ``O(n^2)`` points

    T_set = { r_j + k*T : j in J, k in {0, 1, ..., n} }

need to be considered, and the LP of Section 3 is indexed by them.

:func:`potential_calibration_points` also prunes points at which no job can
be TISE-feasibly assigned: the LP would keep ``C_t = 0`` there (such a
calibration adds cost and can serve no job), so dropping the variables is
optimum-preserving and shrinks the LP substantially.  The prune is computed
from per-job feasible index ranges (:func:`~repro.longwindow.tise
.tise_feasible_range`) and a coverage sweep — ``O(n log P + P)`` instead of
the ``O(n * P)`` all-pairs scan — and candidate generation is capped at the
horizon ``max_j d_j - T`` past which no candidate can survive the prune.
Both changes are output-identical to the naive construction.

:func:`prune_dominated_points` implements a second, stronger reduction used
by the compressed LP formulation: a point whose calibration mass can be slid
forward to its successor without changing any constraint's reach is dropped
entirely (see the function docstring for the exact conditions and why the LP
optimum is preserved).
"""

from __future__ import annotations

import bisect
from typing import Sequence

from ..core.job import Job
from ..core.tolerance import EPS
from .tise import tise_feasible_range

__all__ = [
    "potential_calibration_points",
    "prune_dominated_points",
    "raw_calibration_points",
]


def _dedupe_sorted(values: list[float], eps: float = EPS) -> list[float]:
    """Sort and merge values closer than ``eps`` (floating-point dedupe)."""
    values.sort()
    out: list[float] = []
    for v in values:
        if not out or v - out[-1] > eps:
            out.append(v)
    return out


def raw_calibration_points(
    jobs: Sequence[Job], calibration_length: float, max_packed: int | None = None
) -> list[float]:
    """The unpruned Lemma 3 set ``{r_j + k*T : 0 <= k <= n}``, deduplicated.

    ``max_packed`` overrides the number of packed repetitions per release
    (defaults to ``n``, the Lemma 3 bound).
    """
    n = len(jobs)
    kmax = n if max_packed is None else max_packed
    values = [
        job.release + k * calibration_length
        for job in jobs
        for k in range(kmax + 1)
    ]
    return _dedupe_sorted(values)


def potential_calibration_points(
    jobs: Sequence[Job], calibration_length: float, prune: bool = True
) -> list[float]:
    """Lemma 3 candidate calibration start times, optionally pruned.

    With ``prune=True`` (default) only points serving at least one job under
    the TISE constraint are kept; this never changes the LP optimum because
    a calibration no job can use contributes cost and nothing else.
    """
    if not jobs:
        return []
    T = calibration_length
    n = len(jobs)
    if not prune:
        return raw_calibration_points(jobs, T)
    # A candidate strictly beyond max_j (d_j - T) is TISE-infeasible for
    # every job and would be pruned below; skip generating it.  The 2*eps
    # margin keeps tolerance-borderline candidates in play (the exact range
    # prune below settles them), so the output matches the uncapped path.
    horizon = max(job.deadline for job in jobs) - T + 2 * EPS
    values: list[float] = []
    for job in jobs:
        for k in range(n + 1):
            t = job.release + k * T
            if t > horizon:
                break
            values.append(t)
    points = _dedupe_sorted(values)
    # Coverage sweep: union of the per-job feasible index ranges.
    covered = [0] * (len(points) + 1)
    for job in jobs:
        lo, hi = tise_feasible_range(job, points, T)
        if lo < hi:
            covered[lo] += 1
            covered[hi] -= 1
    kept: list[float] = []
    depth = 0
    for i, t in enumerate(points):
        depth += covered[i]
        if depth > 0:
            kept.append(t)
    return kept


def prune_dominated_points(
    points: Sequence[float],
    jobs: Sequence[Job],
    calibration_length: float,
    eps: float = EPS,
) -> list[float]:
    """Drop points whose mass can always be slid forward to the next point.

    A point ``t_i`` (other than the last) is *forward-dominated* by its
    successor ``t_{i+1}`` when moving any calibration mass from ``t_i`` to
    ``t_{i+1}`` preserves feasibility and cost of every LP solution:

    (a) no job's feasibility upper boundary ``d_j - T`` lies in
        ``[t_i, t_{i+1})`` — every job that can use a calibration at ``t_i``
        can also use one at ``t_{i+1}`` (release constraints only ever
        *gain* jobs when moving right); and
    (b) no point lies in ``[t_i + T, t_{i+1} + T)`` — no sliding machine-
        budget window of constraint (1) contains ``t_{i+1}`` without also
        containing ``t_i``, so the move never increases any window's mass.

    Under (a)+(b) the shifted solution is feasible with the same objective,
    and conversely every solution over the kept points is already a solution
    over the full set, so the LP optimum is unchanged.  Domination chains
    compose (the conditions are checked against the *current* kept set, a
    superset of the final one, which is conservative), so the prune iterates
    to a fixpoint.

    Both checks are evaluated at the same ``eps``-shifted boundaries the
    rest of the pipeline uses (``tise_feasible_for`` accepts
    ``t <= d_j - T + eps``; a constraint-(1) window contains ``t_k`` iff
    ``t_k > t_i - T + eps``), i.e. at ``t - eps`` / ``succ - eps`` and
    ``t + T - eps`` / ``succ + T - eps``.  This matters beyond consistency:
    boundary values routinely coincide *exactly* with interval ends (the
    candidates live on ``r_j + kT`` grids, so ``t + T`` is typically itself
    a point), and a comparison at the natural boundary would decide such
    ties by float ulps — making the kept set unstable under, e.g., uniform
    time translation of the instance.  The shifted boundaries sit a full
    ``eps`` away from every natural coincidence, so ties cannot occur.
    """
    T = calibration_length
    upper_bounds = sorted(job.deadline - T for job in jobs)
    current = list(points)
    while True:
        kept: list[float] = []
        last = len(current) - 1
        for i, t in enumerate(current):
            if i == last:
                kept.append(t)
                continue
            succ = current[i + 1]
            # (a) a job boundary d_j - T in [t - eps, succ - eps)?
            if bisect.bisect_left(upper_bounds, t - eps) != bisect.bisect_left(
                upper_bounds, succ - eps
            ):
                kept.append(t)
                continue
            # (b) a point in [t + T - eps, succ + T - eps)?
            if bisect.bisect_left(current, t + T - eps) != bisect.bisect_left(
                current, succ + T - eps
            ):
                kept.append(t)
                continue
        if len(kept) == len(current):
            return kept
        current = kept
