"""The TISE restriction and the Lemma 2 ISE-to-TISE transformation.

The *trimmed ISE (TISE)* problem (Section 3) adds one restriction to ISE: a
job may be scheduled inside a calibration starting at ``t`` only if the whole
calibrated interval lies in the job's window, i.e. ``r_j <= t <= d_j - T``.
Jobs with windows shorter than ``T`` are infeasible under this restriction,
which is why it is only applied to long-window jobs.

Lemma 2 shows the restriction costs at most a factor 3: any feasible ISE
schedule of long-window jobs on ``m`` machines with ``C`` calibrations can be
transformed into a feasible TISE schedule on ``3m`` machines with ``3C``
calibrations.  :func:`ise_to_tise` implements that constructive proof exactly
(it is the content of Figure 1) and is used to

* regenerate Figure 1 (bench FIG1),
* turn the witness schedules of feasible-by-construction generators into
  TISE feasibility certificates for tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import InvalidScheduleError
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, geq, gt, leq, lt

__all__ = [
    "tise_feasible_for",
    "tise_feasible_range",
    "ise_to_tise",
    "TiseTransformTrace",
]


def tise_feasible_for(
    job: Job, calibration_start: float, calibration_length: float, eps: float = EPS
) -> bool:
    """The TISE constraint: ``r_j <= t <= d_j - T``."""
    return geq(calibration_start, job.release, eps) and leq(
        calibration_start + calibration_length, job.deadline, eps
    )


def tise_feasible_range(
    job: Job,
    points: Sequence[float],
    calibration_length: float,
    eps: float = EPS,
) -> tuple[int, int]:
    """The contiguous index range ``[lo, hi)`` of ``points`` feasible for ``job``.

    ``points`` must be sorted ascending.  Because both halves of the TISE
    test are monotone in ``t``, the feasible subset of a sorted point list
    is a contiguous slice; this locates it with two bisects plus an O(1)
    boundary correction (the bisect keys ``r_j - eps`` / ``d_j - T + eps``
    can drift from the tolerance comparisons by a rounding ulp, so the
    edges are re-checked against :func:`tise_feasible_for` itself).  The
    result is exactly ``{i : tise_feasible_for(job, points[i], T)}``
    without an O(len(points)) scan per job.
    """
    T = calibration_length
    size = len(points)
    lo = bisect.bisect_left(points, job.release - eps)
    hi = bisect.bisect_right(points, job.deadline - T + eps, lo=lo)
    while lo > 0 and tise_feasible_for(job, points[lo - 1], T, eps):
        lo -= 1
    while lo < size and not tise_feasible_for(job, points[lo], T, eps):
        lo += 1
    while hi < size and tise_feasible_for(job, points[hi], T, eps):
        hi += 1
    while hi > lo and not tise_feasible_for(job, points[hi - 1], T, eps):
        hi -= 1
    return lo, max(lo, hi)


@dataclass(frozen=True)
class TiseTransformTrace:
    """Per-job record of what Lemma 2's construction did (for Figure 1).

    ``action`` is ``"keep"`` (machine ``i'``), ``"delay"`` (machine ``i+``,
    shifted ``+T``), or ``"advance"`` (machine ``i-``, shifted ``-T``).
    """

    job_id: int
    action: str
    source_machine: int
    target_machine: int
    old_start: float
    new_start: float


def ise_to_tise(
    instance: Instance, schedule: Schedule
) -> tuple[Schedule, tuple[TiseTransformTrace, ...]]:
    """Lemma 2: transform a feasible long-window ISE schedule into TISE form.

    Machine ``i`` of the input becomes three machines in the output:

    * ``i' = 3i``     — calibrations copied at their original times,
    * ``i+ = 3i + 1`` — calibrations translated by ``+T`` (delayed jobs),
    * ``i- = 3i + 2`` — calibrations translated by ``-T`` (advanced jobs).

    A job already obeying the TISE restriction stays on ``i'``; a job whose
    release falls inside its calibration (``r_j > t_j``) is delayed by ``T``
    onto ``i+``; a job whose deadline falls inside its calibration
    (``d_j < t_j + T``) is advanced by ``T`` onto ``i-``.  Definition 1's
    ``window >= 2T`` guarantees the shifted calibration is inside the window.

    The input must schedule only long-window jobs; a short-window job makes
    the construction unsound and raises :class:`InvalidScheduleError`.
    """
    T = schedule.calibration_length
    job_map = instance.job_map()
    for placement in schedule.placements:
        job = job_map[placement.job_id]
        if not job.is_long(T):
            raise InvalidScheduleError(
                f"ise_to_tise requires long-window jobs; job {job.job_id} has "
                f"window {job.window} < 2T = {2 * T}"
            )

    new_cals: list[Calibration] = []
    for cal in schedule.calibrations:
        base = 3 * cal.machine
        new_cals.append(Calibration(start=cal.start, machine=base))
        new_cals.append(Calibration(start=cal.start + T, machine=base + 1))
        new_cals.append(Calibration(start=cal.start - T, machine=base + 2))

    new_placements: list[ScheduledJob] = []
    traces: list[TiseTransformTrace] = []
    for placement in schedule.placements:
        job = job_map[placement.job_id]
        cal = schedule.enclosing_calibration(placement, job.processing)
        if cal is None:
            raise InvalidScheduleError(
                f"input schedule is not ISE-feasible: job {job.job_id} has no "
                "enclosing calibration"
            )
        t_j = cal.start
        base = 3 * cal.machine
        if tise_feasible_for(job, t_j, T):
            action, target, new_start = "keep", base, placement.start
        elif gt(job.release, t_j):
            # Job released mid-calibration: delay by T onto i+.
            action, target, new_start = "delay", base + 1, placement.start + T
        elif lt(job.deadline, t_j + T):
            # Deadline falls mid-calibration: advance by T onto i-.
            action, target, new_start = "advance", base + 2, placement.start - T
        else:  # pragma: no cover - excluded by the three cases above
            raise InvalidScheduleError(
                f"job {job.job_id}: unreachable TISE case (t_j={t_j})"
            )
        new_placements.append(
            ScheduledJob(start=new_start, machine=target, job_id=job.job_id)
        )
        traces.append(
            TiseTransformTrace(
                job_id=job.job_id,
                action=action,
                source_machine=cal.machine,
                target_machine=target,
                old_start=placement.start,
                new_start=new_start,
            )
        )

    tise_schedule = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(new_cals),
            num_machines=3 * schedule.calibrations.num_machines,
            calibration_length=T,
        ),
        placements=tuple(new_placements),
        speed=schedule.speed,
    )
    return tise_schedule, tuple(traces)
