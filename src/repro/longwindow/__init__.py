"""Long-window ISE algorithms (Section 3 of the paper).

* :mod:`repro.longwindow.tise` — TISE restriction, Lemma 2 transformation.
* :mod:`repro.longwindow.calibration_points` — Lemma 3 candidate points.
* :mod:`repro.longwindow.lp_relaxation` — the Section 3 LP.
* :mod:`repro.longwindow.rounding` — Algorithm 1 greedy rounding.
* :mod:`repro.longwindow.augmented_rounding` — Algorithm 3 proof device.
* :mod:`repro.longwindow.edf` — Algorithm 2 and the Lemma 8/9 constructions.
* :mod:`repro.longwindow.speed_tradeoff` — Lemma 13 / Theorem 14.
* :mod:`repro.longwindow.pipeline` — the Theorem 12 solver.
"""

from .augmented_rounding import (
    AugmentedRoundingResult,
    FractionalAssignment,
    augmented_round,
)
from .calibration_points import (
    potential_calibration_points,
    prune_dominated_points,
    raw_calibration_points,
)
from .canonical import CanonicalizationResult, canonicalize
from .edf import (
    FractionalEDFResult,
    assign_jobs_edf,
    fractional_edf,
    fractional_to_integer,
    mirror_calibrations,
)
from .lp_relaxation import TiseLP, TiseLPSolution, build_tise_lp, solve_tise_lp
from .pipeline import LongWindowConfig, LongWindowResult, LongWindowSolver
from .rounding import (
    RoundingResult,
    naive_ceil_round,
    round_calibrations,
    round_calibrations_ceil,
    rounded_start_times,
)
from .speed_tradeoff import SpeedTradeoffResult, machines_to_speed
from .tise import TiseTransformTrace, ise_to_tise, tise_feasible_for, tise_feasible_range

__all__ = [
    "tise_feasible_for",
    "tise_feasible_range",
    "ise_to_tise",
    "TiseTransformTrace",
    "potential_calibration_points",
    "prune_dominated_points",
    "raw_calibration_points",
    "CanonicalizationResult",
    "canonicalize",
    "TiseLP",
    "TiseLPSolution",
    "build_tise_lp",
    "solve_tise_lp",
    "RoundingResult",
    "round_calibrations",
    "rounded_start_times",
    "naive_ceil_round",
    "round_calibrations_ceil",
    "AugmentedRoundingResult",
    "FractionalAssignment",
    "augmented_round",
    "assign_jobs_edf",
    "fractional_edf",
    "fractional_to_integer",
    "mirror_calibrations",
    "FractionalEDFResult",
    "machines_to_speed",
    "SpeedTradeoffResult",
    "LongWindowConfig",
    "LongWindowResult",
    "LongWindowSolver",
]
