"""Greedy calibration rounding (Algorithm 1, Figure 2).

The rounding scans the fractional calibrations ``C_t`` produced by the LP in
nondecreasing order of time, keeping a running total; whenever the total
reaches the next multiple of ``1/2``, one integer calibration is created at
the current point.  The integer calibrations are then assigned to ``3 m'``
machines round-robin, which Lemma 4 proves is overlap-free because at most
``3 m'`` integer calibrations can start within any length-``T`` window.

Lemma 7: the output has at most ``2 C*`` calibrations, where ``C*`` is the
LP optimum (each emitted calibration consumes exactly ``1/2`` of fractional
mass).

The emission threshold (``1/2`` in the paper) is a parameter so the ABL1
ablation bench can explore the trade-off: a smaller threshold emits more
calibrations (worse objective, more machines needed); a threshold above
``1/2`` can break the feasibility proof of Corollary 6 — the bench shows the
EDF step then actually fails on some instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.calibration import CalibrationSchedule, pack_round_robin
from ..core.tolerance import EPS, gt

__all__ = [
    "RoundingResult",
    "round_calibrations",
    "rounded_start_times",
    "naive_ceil_round",
]


@dataclass(frozen=True)
class RoundingResult:
    """Output of a rounding scheme plus the quantities the analysis bounds."""

    schedule: CalibrationSchedule
    start_times: tuple[float, ...]
    fractional_mass: float
    """Total LP calibration mass ``sum_t C_t`` (the LP objective)."""
    threshold: float
    scheme: str = "greedy"
    """``"greedy"`` (Algorithm 1) or ``"ceil"`` (per-point ceiling)."""
    support: int = 0
    """Number of points with positive fractional mass (bounds the ceiling)."""

    @property
    def num_calibrations(self) -> int:
        return len(self.start_times)

    @property
    def inflation(self) -> float:
        """Measured ratio (integer calibrations) / (fractional mass).

        Lemma 7 bounds this by ``1/threshold`` (= 2 at the paper's 1/2) for
        the greedy scheme; the ceiling scheme's bound is
        ``(mass + support) / mass`` instead.
        """
        if self.fractional_mass <= 0:
            return 0.0
        return self.num_calibrations / self.fractional_mass


def rounded_start_times(
    fractional: Mapping[float, float] | Sequence[tuple[float, float]],
    threshold: float = 0.5,
) -> list[float]:
    """Algorithm 1's scan: emit a calibration per ``threshold`` of mass.

    ``fractional`` maps calibration points to fractional mass ``C_t``.
    Returns the emitted start times in nondecreasing order (a point may be
    emitted several times, as in Figure 2's final double calibration).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    items = sorted(
        fractional.items() if isinstance(fractional, Mapping) else fractional
    )
    starts: list[float] = []
    running = 0.0
    emitted = 0
    for t, mass in items:
        if mass < 0:
            raise ValueError(f"negative calibration mass {mass} at t={t}")
        running += mass
        # Emit once per threshold crossing; EPS guards float accumulation so
        # a running total equal to a multiple "on paper" still triggers.
        while running >= threshold * (emitted + 1) - EPS:
            starts.append(t)
            emitted += 1
    return starts


def round_calibrations(
    fractional: Mapping[float, float],
    machine_budget: int,
    calibration_length: float,
    threshold: float = 0.5,
    machine_factor: int = 3,
) -> RoundingResult:
    """Algorithm 1 end-to-end: scan, emit, and round-robin onto machines.

    ``machine_budget`` is the LP's ``m'``; the output uses
    ``machine_factor * m'`` machines (3 per Lemma 4 at the default
    threshold).
    """
    starts = rounded_start_times(fractional, threshold)
    num_machines = max(1, machine_factor * machine_budget)
    schedule = pack_round_robin(starts, num_machines, calibration_length)
    return RoundingResult(
        schedule=schedule,
        start_times=tuple(sorted(starts)),
        fractional_mass=float(sum(fractional.values())),
        threshold=threshold,
        scheme="greedy",
        support=sum(1 for v in fractional.values() if gt(v, 0.0)),
    )


def round_calibrations_ceil(
    fractional: Mapping[float, float],
    calibration_length: float,
) -> RoundingResult:
    """Per-point ceiling rounding packed by optimal interval coloring.

    Pointwise dominance keeps the LP's own fractional assignment feasible,
    but the 3m'-round-robin argument of Lemma 4 does not apply (window
    density can exceed 3m'), so machines are assigned by interval-graph
    coloring — exactly as many machines as the calendar's max concurrency.
    """
    from ..mm.base import color_intervals  # local: avoids a module cycle

    starts = naive_ceil_round(fractional)
    T = calibration_length
    intervals = [(idx, t, t + T) for idx, t in enumerate(sorted(starts))]
    coloring = color_intervals(intervals)
    machines = max(coloring.values(), default=-1) + 1
    from ..core.calibration import Calibration

    schedule = CalibrationSchedule(
        calibrations=tuple(
            Calibration(start=t, machine=coloring[idx])
            for idx, t, _ in intervals
        ),
        num_machines=max(machines, 1),
        calibration_length=T,
    )
    return RoundingResult(
        schedule=schedule,
        start_times=tuple(sorted(starts)),
        fractional_mass=float(sum(fractional.values())),
        threshold=1.0,
        scheme="ceil",
        support=sum(1 for v in fractional.values() if gt(v, 0.0)),
    )


def naive_ceil_round(
    fractional: Mapping[float, float],
    zero_tol: float = 1e-9,
) -> list[float]:
    """The obvious alternative to Algorithm 1: ceil each point separately.

    Emits ``ceil(C_t)`` calibrations at every point with positive mass.
    Sound — it dominates the fractional solution *pointwise*, so the LP's
    own job assignment stays feasible verbatim (no Corollary 6 argument
    needed) — but its count is ``mass + O(support)``: when the LP spreads
    mass across many points it loses badly to the paper's carryover scan,
    while on mass concentrated near integers it can beat the scan's
    unconditional 2x (the ABL5 bench shows both regimes).  The paper's
    scheme is the one with a *worst-case* guarantee (Lemma 7).
    """
    import math

    starts: list[float] = []
    for t in sorted(fractional):
        mass = fractional[t]
        if mass < 0:
            raise ValueError(f"negative calibration mass {mass} at t={t}")
        if mass > zero_tol:
            starts.extend([t] * math.ceil(mass - zero_tol))
    return starts
