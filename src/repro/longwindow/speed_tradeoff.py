"""Machine-to-speed transformation (Lemma 13, Theorem 14).

Given a TISE schedule on ``c*m`` speed-1 machines, this transformation
produces an ISE schedule on ``m`` machines running at speed ``2c`` with no
more calibrations:

1. Group the source machines into ``m`` groups of ``c``.
2. Per group, build the target calibration calendar: starting from the
   earliest source calibration, calibrate the target whenever the current
   time is inside some source calibration, stepping by ``T``; otherwise jump
   to the next source calibration start.  Every calibrated source instant is
   then calibrated on the target.
3. Map every source calibration to a dedicated ``T/(2c)`` sub-slot of the
   target calibration whose first or second half it fully contains (one of
   the two always exists — Lemma 13), indexed by the source machine's
   position in the group; jobs keep their in-calibration order with
   processing times scaled by ``1/(2c)``.

Feasibility rests on the TISE property of the input: a job is free to run
*anywhere* inside its source calibration, and its sub-slot lies inside that
source calibration, hence inside the job's window.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import InvalidScheduleError, SolverError
from ..core.job import Instance
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, geq, leq

__all__ = ["SpeedTradeoffResult", "machines_to_speed"]


@dataclass(frozen=True)
class SpeedTradeoffResult:
    """Output of the Lemma 13 transformation plus accounting."""

    schedule: Schedule
    group_size: int
    source_calibrations: int
    target_calibrations: int

    @property
    def speed(self) -> float:
        return self.schedule.speed


def _target_calendar(starts: list[float], T: float) -> list[float]:
    """Step 2: the target machine's calibration start times for one group.

    ``starts`` are the sorted source calibration starts of the group.
    """
    if not starts:
        return []
    out: list[float] = []
    t = starts[0]
    last = starts[-1]
    while True:
        # Is t inside some source calibration [s, s+T)?  The candidate is the
        # latest source start <= t.
        pos = bisect.bisect_right(starts, t + EPS) - 1
        inside = pos >= 0 and starts[pos] + T > t + EPS
        if inside:
            out.append(t)
            t += T
        else:
            nxt = bisect.bisect_right(starts, t + EPS)
            if nxt >= len(starts):
                break
            t = starts[nxt]
        if t > last + T:
            break
    return out


def machines_to_speed(
    instance: Instance, tise_schedule: Schedule, group_size: int
) -> SpeedTradeoffResult:
    """Apply Lemma 13: trade ``group_size``-fold machines for ``2*group_size`` speed.

    Args:
        instance: the (long-window) instance the schedule solves.
        tise_schedule: a TISE-feasible speed-1 schedule (validated by the
            caller); its machine pool is grouped in index order.
        group_size: the ``c`` of Lemma 13 (Theorem 14 uses ``c = 18``).

    Returns a schedule on ``ceil(pool / c)`` machines at speed ``2c`` whose
    calibration count is at most the source's (asserted).
    """
    if group_size < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    if abs(tise_schedule.speed - 1.0) > EPS:
        raise InvalidScheduleError(
            "machines_to_speed expects a speed-1 TISE schedule, got speed "
            f"{tise_schedule.speed}"
        )
    T = tise_schedule.calibration_length
    c = group_size
    speed = 2.0 * c
    slot = T / (2.0 * c)
    job_map = instance.job_map()
    pool = tise_schedule.calibrations.num_machines
    num_groups = max(1, -(-pool // c))  # ceil

    # Jobs per source calibration, ordered by start time.
    jobs_in_cal: dict[tuple[float, int], list[ScheduledJob]] = {}
    for placement in tise_schedule.placements:
        job = job_map[placement.job_id]
        cal = tise_schedule.enclosing_calibration(placement, job.processing)
        if cal is None:
            raise InvalidScheduleError(
                f"job {placement.job_id} lacks an enclosing calibration"
            )
        jobs_in_cal.setdefault((cal.start, cal.machine), []).append(placement)
    for members in jobs_in_cal.values():
        members.sort()

    target_cals: list[Calibration] = []
    placements: list[ScheduledJob] = []
    total_source = tise_schedule.calibrations.num_calibrations

    for group in range(num_groups):
        machines = range(group * c, min((group + 1) * c, pool))
        group_cals = [
            cal
            for cal in tise_schedule.calibrations
            if cal.machine in machines
        ]
        starts_sorted = sorted({cal.start for cal in group_cals})
        calendar = _target_calendar(starts_sorted, T)
        for t in calendar:
            target_cals.append(Calibration(start=t, machine=group))

        # Step 3: map each source calibration to a sub-slot.
        # slot_key -> source machine occupancy guard (Lemma 13: at most one).
        taken: set[tuple[float, int, int]] = set()  # (target t, half, machine idx)
        for cal in sorted(group_cals):
            local_idx = cal.machine - group * c
            src_lo, src_hi = cal.start, cal.start + T
            home: tuple[float, int] | None = None
            for t in calendar:
                first_half = (t, t + T / 2.0)
                second_half = (t + T / 2.0, t + T)
                if geq(first_half[0], src_lo) and leq(first_half[1], src_hi):
                    home = (t, 0)
                    break
                if geq(second_half[0], src_lo) and leq(second_half[1], src_hi):
                    home = (t, 1)
                    break
            if home is None:
                raise SolverError(
                    f"Lemma 13 mapping failed: source calibration at "
                    f"{cal.start} on machine {cal.machine} contains no "
                    "target half — target calendar construction is buggy"
                )
            key = (home[0], home[1], local_idx)
            if key in taken:
                raise SolverError(
                    f"Lemma 13 slot conflict at target {home[0]} half "
                    f"{home[1]} machine index {local_idx}"
                )
            taken.add(key)
            sub_start = home[0] + home[1] * (T / 2.0) + local_idx * slot
            cursor = sub_start
            for placement in jobs_in_cal.get((cal.start, cal.machine), []):
                job = job_map[placement.job_id]
                placements.append(
                    ScheduledJob(
                        start=cursor, machine=group, job_id=placement.job_id
                    )
                )
                cursor += job.processing / speed

    schedule = Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(target_cals),
            num_machines=num_groups,
            calibration_length=T,
        ),
        placements=tuple(placements),
        speed=speed,
    )
    result = SpeedTradeoffResult(
        schedule=schedule,
        group_size=c,
        source_calibrations=total_source,
        target_calibrations=len(target_cals),
    )
    if result.target_calibrations > result.source_calibrations:
        raise SolverError(
            "Lemma 13 violated: target uses "
            f"{result.target_calibrations} > {result.source_calibrations} "
            "calibrations"
        )
    return result
