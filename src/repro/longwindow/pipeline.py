"""The long-window ISE pipeline (Section 3, Theorem 12).

Given a feasible long-window ISE instance on ``m`` machines, the pipeline

1. solves the TISE LP relaxation on ``m' = 3m`` machines (Lemma 2 licenses
   the restriction; LP infeasibility certifies ISE infeasibility on ``m``),
2. rounds the fractional calibrations with Algorithm 1 (``3m' = 9m``
   machines, at most ``2 x`` the LP mass in calibrations — Lemma 7),
3. assigns jobs with the mirrored EDF Algorithm 2 (``6m' = 18m`` machines,
   another ``2 x`` calibrations — Lemmas 8-10),

for Theorem 12's total of at most ``18 m`` machines and ``12 C*``
calibrations (3 from Lemma 2 x 2 from rounding x 2 from mirroring).

Optionally, step 4 applies the Lemma 13 machine-to-speed transformation to
reach Theorem 14: ``m`` machines at speed ``36`` with at most ``12 C*``
calibrations.

Resilience: the LP stage is the pipeline's only numeric-backend dependency,
so it runs through the resilience layer's fallback chain (default ``highs ->
simplex``) when a non-strict :class:`~repro.core.resilience.ResiliencePolicy`
is configured, under the ambient solve budget.  Lemma 2's guarantee is
backend-agnostic — any optimal LP solution yields the same bounds — so a
fallback here costs wall time, never correctness.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from ..core.errors import InvalidInstanceError, NumericalDriftError, SolverError
from ..core.job import Instance
from ..core.resilience import (
    ResiliencePolicy,
    ResilienceReport,
    budget_scope,
    current_budget,
    run_with_fallbacks,
)
from ..core.schedule import Schedule
from ..core.tolerance import LOOSE_EPS
from ..core.validate import check_ise, check_tise
from ..lp import BasisStash, content_key
from .calibration_points import potential_calibration_points
from .lp_relaxation import TiseLPSolution, solve_tise_lp
from .rounding import RoundingResult, round_calibrations, round_calibrations_ceil
from .edf import assign_jobs_edf
from .speed_tradeoff import SpeedTradeoffResult, machines_to_speed

__all__ = ["LongWindowConfig", "LongWindowResult", "LongWindowSolver"]

_COVERAGE_TOL = LOOSE_EPS


@dataclass(frozen=True)
class LongWindowConfig:
    """Tuning knobs for the long-window pipeline.

    Attributes:
        lp_backend: ``"highs"`` (default) or ``"simplex"``.
        lp_formulation: constraint-(1) encoding — ``"compressed"`` (default,
            telescoped window-mass variables + dominated-point pruning; same
            optimum, far fewer nonzeros) or ``"legacy"`` (the literal
            per-point window copies).
        lp_names: build the LP with debug variable/constraint names.  Off by
            default — name strings are pure overhead on the hot path.
        rounding_threshold: Algorithm 1 emission threshold (paper: 1/2).
        rounding_scheme: ``"greedy"`` (Algorithm 1, the paper's scheme with
            the Lemma 7 worst-case bound), ``"ceil"`` (per-point ceiling —
            often fewer calibrations on vertex LP solutions but may need
            more machines), or ``"best"`` (run both, keep the cheaper; the
            worst-case bound is preserved because greedy is a candidate).
        machine_multiplier: Lemma 2's TISE budget multiplier (paper: 3).
        prune_empty: drop job-less calibrations from the reported schedule
            (feasibility-preserving objective improvement; the raw count is
            still recorded for the Theorem 12 bound check).
        validate: run the independent TISE validator on the output.
        resilience: failure-handling policy; None means strict (failures
            propagate, no LP fallback chain).
        lp_warm_stash: a :class:`~repro.lp.BasisStash` to warm-start the
            LP stage from.  Keys are exact content fingerprints of
            (jobs, T, m', formulation), so a hit replays the identical LP
            with zero pivots and the result is bit-identical to a cold
            solve; a stale basis falls back to phase 1 inside the solver.
            None (default) disables warm starting.  Stashes hold a lock
            and are deliberately not picklable — per-process callers (the
            sweep workers) use :func:`~repro.lp.default_stash` via
            ``ISEConfig.lp_warm_start`` instead of carrying one here.
    """

    lp_backend: str = "highs"
    lp_formulation: str = "compressed"
    lp_names: bool = False
    rounding_threshold: float = 0.5
    rounding_scheme: str = "greedy"
    machine_multiplier: int = 3
    prune_empty: bool = True
    validate: bool = True
    resilience: ResiliencePolicy | None = None
    lp_warm_stash: BasisStash | None = None


@dataclass(frozen=True)
class LongWindowResult:
    """Everything the long-window pipeline produced.

    ``schedule`` is the deliverable (pruned if configured); the intermediate
    artifacts and counters support the Theorem 12 bound checks:

    * ``lp_value``        — LP optimum = lower bound on TISE OPT at ``m'``;
    * ``lp_value / 3``    — certified lower bound on ISE OPT at ``m``
      (Lemma 2: TISE OPT at 3m <= 3 ISE OPT at m, and LP <= TISE OPT);
    * ``rounded_calibrations``   — Algorithm 1 output size (Lemma 7 <= 2 LP);
    * ``unpruned_calibrations``  — after mirroring (Theorem 12 <= 12 LB).

    ``resilience`` records the LP attempts/fallbacks when a policy was
    configured (None under the default strict config).
    """

    schedule: Schedule
    lp: TiseLPSolution
    rounding: RoundingResult
    unpruned_calibrations: int
    machines_used: int
    machine_budget: int
    wall_times: dict[str, float] = field(default_factory=dict, compare=False)
    resilience: ResilienceReport | None = field(default=None, compare=False)

    @property
    def lp_value(self) -> float:
        return self.lp.objective

    @property
    def lp_stats(self) -> dict[str, int]:
        """Model-size counters of the solved LP (rows/cols/nnz/points)."""
        return dict(self.lp.stats)

    @property
    def rounded_calibrations(self) -> int:
        return self.rounding.num_calibrations

    @property
    def num_calibrations(self) -> int:
        """Objective value of the delivered schedule."""
        return self.schedule.num_calibrations

    @property
    def lower_bound(self) -> float:
        """Certified lower bound on ISE OPT(m): LP(3m) / 3 (see Lemma 2)."""
        return self.lp.objective / 3.0

    @property
    def approximation_ratio(self) -> float:
        """Measured calibrations / lower bound (an upper bound on the true ratio)."""
        lb = self.lower_bound
        if lb <= 0:
            return 1.0 if self.num_calibrations == 0 else float("inf")
        return self.num_calibrations / lb


def _check_lp_coverage(jobs, solution: TiseLPSolution) -> None:
    """Reject an LP "solution" that does not actually cover every job.

    Constraint (4) forces full coverage in any genuine optimum, so a
    violation here means the backend returned garbage (crash recovery,
    numerical breakdown, or an injected fault) — the resilience layer
    treats it as a failed attempt and moves down the chain.
    """
    for job in jobs:
        covered = solution.job_coverage(job.job_id)
        if abs(covered - 1.0) > _COVERAGE_TOL:
            raise SolverError(
                f"LP solution covers job {job.job_id} with mass "
                f"{covered:.6f} != 1",
                stage="lp",
            )


class LongWindowSolver:
    """Theorem 12 solver for instances whose jobs all have long windows."""

    def __init__(self, config: LongWindowConfig | None = None) -> None:
        self.config = config or LongWindowConfig()

    def solve(self, instance: Instance) -> LongWindowResult:
        """Run LP -> rounding -> EDF; returns schedule + bound telemetry.

        Raises:
            InvalidInstanceError: some job has a short window.
            InfeasibleInstanceError: the LP certifies infeasibility on
                ``m`` machines (via Lemma 2).
            StageTimeoutError: the solve budget expired mid-pipeline.
            FallbacksExhaustedError: every LP backend in the chain failed
                (non-strict mode with a configured policy).
        """
        T = instance.calibration_length
        for job in instance.jobs:
            if not job.is_long(T):
                raise InvalidInstanceError(
                    f"LongWindowSolver requires long-window jobs; job "
                    f"{job.job_id} has window {job.window} < 2T = {2 * T}"
                )
        cfg = self.config
        policy = cfg.resilience or ResiliencePolicy()
        report = ResilienceReport()
        times: dict[str, float] = {}
        m_prime = cfg.machine_multiplier * instance.machines

        with ExitStack() as stack:
            budget = current_budget()
            if budget is None and policy.budget is not None:
                budget = stack.enter_context(budget_scope(policy.fresh_budget()))

            tic = time.perf_counter()
            points = potential_calibration_points(instance.jobs, T)
            times["points"] = time.perf_counter() - tic

            # Warm-start lookup: the key fingerprints the exact LP content,
            # so a hit means this precise relaxation was solved before and
            # the stashed basis replays it with zero pivots (bit-identical
            # to a cold solve); near-identical instances miss the stash and
            # solve cold, never risking a wrong-but-plausible restart.
            stash = cfg.lp_warm_stash
            warm_key: str | None = None
            if stash is not None:
                jobs_sig = tuple(
                    (j.job_id, j.release, j.deadline, j.processing)
                    for j in instance.jobs
                )
                warm_key = content_key(
                    "tise-lp", jobs_sig, T, m_prime, cfg.lp_formulation
                )

            def lp_thunk(backend: str):
                def run() -> TiseLPSolution:
                    limit: float | None = None
                    if budget is not None:
                        remaining = budget.stage_limit("lp")
                        if remaining != float("inf"):
                            limit = max(remaining, 0.0)
                    warm = (
                        stash.get(warm_key)
                        if stash is not None and warm_key is not None
                        else None
                    )
                    try:
                        return solve_tise_lp(
                            instance.jobs,
                            T,
                            m_prime,
                            backend=backend,
                            points=points,
                            time_limit=limit,
                            formulation=cfg.lp_formulation,
                            names=cfg.lp_names,
                            warm_basis=warm,
                        )
                    except NumericalDriftError:
                        # The sentinel ladder gave up on this solve; the
                        # basis that seeded it has earned distrust, so it
                        # must never warm-start another attempt.
                        if stash is not None and warm_key is not None:
                            if stash.discard(warm_key):
                                report.record_note(
                                    "evicted drifting warm-start basis "
                                    f"{warm_key} from the stash"
                                )
                        raise

                return run

            tic = time.perf_counter()
            lp = run_with_fallbacks(
                "lp",
                [
                    (name, lp_thunk(name))
                    for name in policy.lp_candidates(cfg.lp_backend)
                ],
                report=report,
                retry=policy.retry,
                budget=budget,
                validate=lambda sol: _check_lp_coverage(instance.jobs, sol),
                gate=policy.gate,
                telemetry=lambda sol: sol.solver,
            )
            times["lp"] = time.perf_counter() - tic
            if stash is not None and warm_key is not None and lp.basis is not None:
                stash.put(warm_key, lp.basis)

        tic = time.perf_counter()
        if cfg.rounding_scheme not in ("greedy", "ceil", "best"):
            raise ValueError(
                f"unknown rounding scheme {cfg.rounding_scheme!r}"
            )
        rounding = None
        if cfg.rounding_scheme in ("greedy", "best"):
            rounding = round_calibrations(
                lp.calibrations,
                machine_budget=m_prime,
                calibration_length=T,
                threshold=cfg.rounding_threshold,
            )
        if cfg.rounding_scheme in ("ceil", "best"):
            ceil_rounding = round_calibrations_ceil(lp.calibrations, T)
            if (
                rounding is None
                or ceil_rounding.num_calibrations < rounding.num_calibrations
            ):
                rounding = ceil_rounding
        if rounding is None:
            raise SolverError(
                f"unknown rounding scheme {cfg.rounding_scheme!r}; "
                "expected 'greedy', 'ceil', or 'best'",
                stage="rounding",
            )
        times["rounding"] = time.perf_counter() - tic

        tic = time.perf_counter()
        schedule = assign_jobs_edf(instance.jobs, rounding.schedule, mirror=True)
        times["edf"] = time.perf_counter() - tic
        unpruned = schedule.num_calibrations

        if cfg.prune_empty:
            schedule = schedule.prune_empty_calibrations(
                {j.job_id: j.processing for j in instance.jobs}
            )
        machines_used = len(
            {c.machine for c in schedule.calibrations}
            | {p.machine for p in schedule.placements}
        )
        if cfg.validate:
            tic = time.perf_counter()
            check_tise(instance, schedule, context="long-window pipeline")
            times["validate"] = time.perf_counter() - tic

        report.record_times(times)
        return LongWindowResult(
            schedule=schedule,
            lp=lp,
            rounding=rounding,
            unpruned_calibrations=unpruned,
            machines_used=machines_used,
            machine_budget=2 * cfg.machine_multiplier * m_prime,
            wall_times=times,
            resilience=report,
        )

    def solve_with_speed(
        self, instance: Instance, group_size: int | None = None
    ) -> tuple[LongWindowResult, SpeedTradeoffResult]:
        """Theorem 14: run the pipeline, then trade machines for speed.

        ``group_size`` defaults to the full Theorem 12 machine budget per
        instance machine (18), producing ``m`` machines at speed 36.
        """
        result = self.solve(instance)
        c = group_size
        if c is None:
            c = 2 * self.config.machine_multiplier ** 2  # 18 for the paper's 3
        traded = machines_to_speed(instance, result.schedule, c)
        if self.config.validate:
            check_ise(instance, traded.schedule, context="speed tradeoff")
        return result, traded
