"""Augmented calibration rounding (Algorithm 3, Figure 3, Lemma 5, Cor. 6).

Algorithm 3 is the paper's *proof device*: it performs the same calibration
rounding as Algorithm 1 while simultaneously carrying the delayed fractional
job assignments ``y_j`` forward, writing ``2 y_j`` of each job into the newly
created calibration whenever that calibration is TISE-feasible for the job.
Its existence proves that the rounded calendar still admits a feasible
fractional assignment (Corollary 6), which is what licenses the EDF step.

We implement it faithfully — including the factor-2 overscheduling — and use
it to

* regenerate Figure 3 (bench FIG3),
* machine-check Lemma 5's invariants (``y_j <= carryover`` and
  ``sum_j y_j p_j <= carryover * T``) on every instance the tests run,
* provide a certified feasible fractional assignment for the EDF tests
  (after capping each job's total at 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.errors import SolverError
from ..core.job import Job
from ..core.tolerance import EPS, LOOSE_EPS
from .tise import tise_feasible_for

__all__ = [
    "FractionalAssignment",
    "AugmentedRoundingResult",
    "augmented_round",
]

_INVARIANT_TOL = LOOSE_EPS


@dataclass(frozen=True)
class FractionalAssignment:
    """Fractions of jobs assigned to the rounded calibrations.

    ``fractions[(job_id, cal_index)]`` is the fraction of the job written
    into the ``cal_index``-th created calibration (indices follow creation
    order, which is nondecreasing in time).
    """

    calibration_starts: tuple[float, ...]
    fractions: dict[tuple[int, int], float]

    def coverage(self, job_id: int) -> float:
        """Total fraction of ``job_id`` scheduled (Cor. 6: always >= 1)."""
        return sum(
            frac for (jid, _), frac in self.fractions.items() if jid == job_id
        )

    def calibration_load(
        self, cal_index: int, processing: Mapping[int, float]
    ) -> float:
        """Work written into one calibration (Cor. 6: always <= T)."""
        return sum(
            frac * processing[jid]
            for (jid, k), frac in self.fractions.items()
            if k == cal_index
        )

    def capped(self) -> "FractionalAssignment":
        """Cap each job's total at 1 by trimming its latest assignments.

        Algorithm 3 may overschedule (the ``2 y_j`` write-back); the capped
        form is a genuine fractional schedule used as the EDF feasibility
        witness.
        """
        by_job: dict[int, list[tuple[int, float]]] = {}
        for (jid, k), frac in sorted(self.fractions.items(), key=lambda kv: kv[0][1]):
            by_job.setdefault(jid, []).append((k, frac))
        capped: dict[tuple[int, int], float] = {}
        for jid, entries in by_job.items():
            remaining = 1.0
            for k, frac in entries:
                take = min(frac, remaining)
                if take > EPS:
                    capped[(jid, k)] = take
                remaining -= take
                if remaining <= EPS:
                    break
        return FractionalAssignment(
            calibration_starts=self.calibration_starts, fractions=capped
        )


@dataclass(frozen=True)
class AugmentedRoundingResult:
    """Everything Algorithm 3 produced, plus invariant-check telemetry."""

    assignment: FractionalAssignment
    max_y_minus_carryover: float
    """Max observed ``y_j - carryover`` (Lemma 5 says <= 0)."""
    max_carried_work_excess: float
    """Max observed ``sum_j y_j p_j - carryover*T`` (Lemma 5 says <= 0)."""
    discarded: dict[int, float]
    """Per job, fraction dropped because the final reset was TISE-infeasible
    (the Figure 3 'job 2' situation); Cor. 6 shows the 2x write-back already
    covered it."""


def augmented_round(
    jobs: Sequence[Job],
    calibrations: Mapping[float, float],
    assignments: Mapping[tuple[int, float], float],
    calibration_length: float,
    threshold: float = 0.5,
    check_invariants: bool = True,
) -> AugmentedRoundingResult:
    """Run Algorithm 3 on an LP solution.

    Args:
        jobs: the long-window jobs (for windows and processing times).
        calibrations: fractional ``C_t`` by calibration point.
        assignments: fractional ``X_jt`` by ``(job_id, point)``.
        calibration_length: ``T``.
        threshold: mass per emitted calibration (paper: 1/2).
        check_invariants: assert Lemma 5 at every step (raises
            :class:`SolverError` on violation — an implementation bug).
    """
    T = calibration_length
    job_map = {j.job_id: j for j in jobs}
    points = sorted(calibrations)
    c = {t: float(calibrations[t]) for t in points}
    x: dict[tuple[int, float], float] = {
        key: float(val) for key, val in assignments.items()
    }

    carryover = 0.0
    y: dict[int, float] = {j.job_id: 0.0 for j in jobs}
    starts: list[float] = []
    fractions: dict[tuple[int, int], float] = {}
    discarded: dict[int, float] = {}
    max_y_excess = float("-inf")
    max_work_excess = float("-inf")

    def observe_invariants() -> None:
        nonlocal max_y_excess, max_work_excess
        worst_y = max((y[jid] - carryover for jid in y), default=float("-inf"))
        carried_work = sum(y[jid] * job_map[jid].processing for jid in y)
        work_excess = carried_work - carryover * T
        max_y_excess = max(max_y_excess, worst_y)
        max_work_excess = max(max_work_excess, work_excess)
        if check_invariants and (
            worst_y > _INVARIANT_TOL or work_excess > _INVARIANT_TOL
        ):
            raise SolverError(
                "Lemma 5 invariant violated in augmented rounding: "
                f"max(y_j - carryover) = {worst_y}, "
                f"carried work excess = {work_excess}"
            )

    for t in points:
        while carryover + c[t] >= threshold - EPS:
            cal_index = len(starts)
            starts.append(t)
            degenerate = c[t] <= EPS
            if degenerate:
                # Carryover alone reached the threshold (can only happen
                # through float accumulation at the boundary).
                frac = 0.0
            else:
                frac = max(0.0, (threshold - carryover) / c[t])
            carryover += frac * c[t]
            for jid in y:
                moved = frac * x.get((jid, t), 0.0)
                y[jid] += moved
                if moved:
                    x[(jid, t)] = x[(jid, t)] - moved
                job = job_map[jid]
                if tise_feasible_for(job, t, T):
                    write = (1.0 / threshold) * y[jid]
                    if write > EPS:
                        fractions[(jid, cal_index)] = (
                            fractions.get((jid, cal_index), 0.0) + write
                        )
                    y[jid] = 0.0
                elif y[jid] > EPS and t > job.deadline - T + EPS:
                    # The job expired: this emission is past its TISE-latest
                    # point and all later ones are too (emissions only move
                    # forward), so the carried fraction can never be written.
                    # This is "the last time y_j is reset" in Corollary 6's
                    # proof — the 2x write-back at earlier emissions already
                    # covered it (Figure 3's job 2).
                    discarded[jid] = discarded.get(jid, 0.0) + y[jid]
                    y[jid] = 0.0
            carryover = 0.0
            c[t] -= frac * c[t]
            if degenerate:
                break  # avoid an infinite loop: no mass left to consume
        carryover += c[t]
        c[t] = 0.0
        for jid in y:
            moved = x.pop((jid, t), 0.0)
            y[jid] += moved
        observe_invariants()

    # Leftovers that never met another emission are discarded the same way.
    for jid, leftover in y.items():
        if leftover > EPS:
            discarded[jid] = discarded.get(jid, 0.0) + leftover

    assignment = FractionalAssignment(
        calibration_starts=tuple(starts), fractions=fractions
    )
    return AugmentedRoundingResult(
        assignment=assignment,
        max_y_minus_carryover=max_y_excess,
        max_carried_work_excess=max_work_excess,
        discarded=discarded,
    )
