"""The TISE linear-program relaxation (Section 3).

Variables (per potential calibration point ``t`` from Lemma 3):

* ``C_t``  — the (fractional) number of calibrations made at time ``t``;
* ``X_jt`` — the fraction of job ``j`` assigned to the calibrations at ``t``
  (only created for TISE-feasible pairs, which *is* constraint (5)).

Objective and constraints (numbered as in the paper):

    minimize   sum_t C_t
    (1)  sum_{t' in (t-T, t]} C_{t'} <= m'          for all t
    (2)  X_jt <= C_t                                 for all feasible (j, t)
    (3)  sum_j X_jt p_j <= C_t T                     for all t
    (4)  sum_t X_jt  = 1                             for all j
    (5)  X_jt = 0 unless r_j <= t <= d_j - T         (by variable omission)
    (6)  X_jt, C_t >= 0                              (variable bounds)

The LP ignores the calibration-to-machine mapping and groups same-time
calibrations — both relaxations are justified in the paper ("both of the
simplifications can only improve the value of the optimal solution").

LP infeasibility certifies (via Lemma 2) that the long-window instance is not
ISE-feasible on ``m = m'/3`` machines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.errors import InfeasibleInstanceError, SolverError
from ..core.job import Instance, Job
from ..core.tolerance import EPS
from ..lp import LinearProgram, LPStatus, Sense, get_backend
from .calibration_points import potential_calibration_points
from .tise import tise_feasible_for

__all__ = ["TiseLP", "TiseLPSolution", "build_tise_lp", "solve_tise_lp"]


@dataclass(frozen=True)
class TiseLP:
    """A built (unsolved) TISE LP with its variable index maps."""

    lp: LinearProgram
    points: tuple[float, ...]
    machine_budget: int
    calibration_length: float
    c_vars: Mapping[float, int]
    x_vars: Mapping[tuple[int, float], int]

    @property
    def num_points(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class TiseLPSolution:
    """A solved TISE LP: fractional calibrations and job assignments.

    ``calibrations[t]`` is the fractional calibration mass at point ``t``
    (zeros omitted); ``assignments[(job_id, t)]`` is the fraction of the job
    assigned there (zeros omitted).  ``objective`` is the LP optimum, a lower
    bound on the optimal number of TISE calibrations on ``machine_budget``
    machines.
    """

    objective: float
    calibrations: dict[float, float]
    assignments: dict[tuple[int, float], float]
    machine_budget: int
    calibration_length: float

    def total_calibration_mass(self) -> float:
        return sum(self.calibrations.values())

    def job_coverage(self, job_id: int) -> float:
        return sum(
            frac for (jid, _), frac in self.assignments.items() if jid == job_id
        )


def build_tise_lp(
    jobs: Sequence[Job],
    calibration_length: float,
    machine_budget: int,
    points: Sequence[float] | None = None,
) -> TiseLP:
    """Assemble the Section 3 LP for ``jobs`` with ``m' = machine_budget``."""
    T = calibration_length
    if points is None:
        points = potential_calibration_points(jobs, T)
    points = tuple(points)
    lp = LinearProgram("tise")

    c_vars: dict[float, int] = {
        t: lp.add_variable(objective=1.0, name=f"C[{t}]") for t in points
    }
    x_vars: dict[tuple[int, float], int] = {}
    x_by_job: dict[int, list[int]] = {job.job_id: [] for job in jobs}
    # Feasible (j, t) pairs found via bisect over the sorted point list:
    # t must lie in [r_j, d_j - T] (constraint (5) by omission).
    for job in jobs:
        lo = bisect.bisect_left(points, job.release - EPS)
        hi = bisect.bisect_right(points, job.deadline - T + EPS)
        for t in points[lo:hi]:
            if tise_feasible_for(job, t, T):
                idx = lp.add_variable(objective=0.0, name=f"X[{job.job_id}@{t}]")
                x_vars[(job.job_id, t)] = idx
                x_by_job[job.job_id].append(idx)

    # (1): sliding-window machine budget.  For each point t, sum C_{t'} over
    # t' in (t - T, t].
    for idx, t in enumerate(points):
        lo = bisect.bisect_right(points, t - T + EPS)
        terms = [(c_vars[points[k]], 1.0) for k in range(lo, idx + 1)]
        lp.add_constraint(terms, Sense.LE, float(machine_budget), name=f"mach[{t}]")

    # (2): X_jt <= C_t.
    for (job_id, t), x_idx in x_vars.items():
        lp.add_constraint(
            [(x_idx, 1.0), (c_vars[t], -1.0)], Sense.LE, 0.0,
            name=f"cap[{job_id}@{t}]",
        )

    # (3): work at a point fits in its calibrations.
    proc = {job.job_id: job.processing for job in jobs}
    terms_by_point: dict[float, list[tuple[int, float]]] = {t: [] for t in points}
    for (job_id, t), x_idx in x_vars.items():
        terms_by_point[t].append((x_idx, proc[job_id]))
    for t, terms in terms_by_point.items():
        if terms:
            lp.add_constraint(
                terms + [(c_vars[t], -T)], Sense.LE, 0.0, name=f"work[{t}]"
            )

    # (4): every job fully assigned.
    for job in jobs:
        terms = [(x_idx, 1.0) for x_idx in x_by_job[job.job_id]]
        if not terms:
            # No TISE-feasible point at all: the job's window cannot contain
            # any calibration, certifying infeasibility up front.
            raise InfeasibleInstanceError(
                f"job {job.job_id} admits no TISE-feasible calibration point "
                f"(window [{job.release}, {job.deadline}), T={T})"
            )
        lp.add_constraint(terms, Sense.EQ, 1.0, name=f"assign[{job.job_id}]")

    return TiseLP(
        lp=lp,
        points=points,
        machine_budget=machine_budget,
        calibration_length=T,
        c_vars=c_vars,
        x_vars=x_vars,
    )


def solve_tise_lp(
    jobs: Sequence[Job],
    calibration_length: float,
    machine_budget: int,
    backend: str = "highs",
    points: Sequence[float] | None = None,
    zero_tol: float = 1e-9,
    time_limit: float | None = None,
) -> TiseLPSolution:
    """Build and solve the TISE LP; raises on infeasibility.

    :class:`InfeasibleInstanceError` here means the long-window instance is
    not feasible on ``machine_budget / 3`` machines (Lemma 2 contrapositive).
    ``time_limit`` (seconds) is forwarded to the backend, which raises
    :class:`~repro.core.errors.StageTimeoutError` on expiry.
    """
    if not jobs:
        return TiseLPSolution(
            objective=0.0,
            calibrations={},
            assignments={},
            machine_budget=machine_budget,
            calibration_length=calibration_length,
        )
    model = build_tise_lp(jobs, calibration_length, machine_budget, points)
    solution = get_backend(backend)(model.lp, time_limit=time_limit)
    if solution.status is LPStatus.INFEASIBLE:
        raise InfeasibleInstanceError(
            f"TISE LP infeasible on m' = {machine_budget} machines: the "
            "long-window instance has no feasible TISE schedule there"
        )
    if not solution.ok or solution.x is None:
        raise SolverError(
            f"TISE LP solve failed: {solution.status.value} {solution.message}",
            stage="lp",
            backend=backend,
        )
    calibrations = {
        t: float(solution.x[idx])
        for t, idx in model.c_vars.items()
        if solution.x[idx] > zero_tol
    }
    assignments = {
        key: float(solution.x[idx])
        for key, idx in model.x_vars.items()
        if solution.x[idx] > zero_tol
    }
    return TiseLPSolution(
        objective=float(solution.objective),
        calibrations=calibrations,
        assignments=assignments,
        machine_budget=machine_budget,
        calibration_length=calibration_length,
    )
