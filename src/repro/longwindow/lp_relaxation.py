"""The TISE linear-program relaxation (Section 3).

Variables (per potential calibration point ``t`` from Lemma 3):

* ``C_t``  — the (fractional) number of calibrations made at time ``t``;
* ``X_jt`` — the fraction of job ``j`` assigned to the calibrations at ``t``
  (only created for TISE-feasible pairs, which *is* constraint (5)).

Objective and constraints (numbered as in the paper):

    minimize   sum_t C_t
    (1)  sum_{t' in (t-T, t]} C_{t'} <= m'          for all t
    (2)  X_jt <= C_t                                 for all feasible (j, t)
    (3)  sum_j X_jt p_j <= C_t T                     for all t
    (4)  sum_t X_jt  = 1                             for all j
    (5)  X_jt = 0 unless r_j <= t <= d_j - T         (by variable omission)
    (6)  X_jt, C_t >= 0                              (variable bounds)

The LP ignores the calibration-to-machine mapping and groups same-time
calibrations — both relaxations are justified in the paper ("both of the
simplifications can only improve the value of the optimal solution") — and
its infeasibility certifies (via Lemma 2) that the long-window instance is
not ISE-feasible on ``m = m'/3`` machines.

Two formulations of constraint (1) are available:

* ``legacy`` — the literal transcription: one ``<=`` row per point whose
  window copy carries every ``C_{t'}`` with ``t' in (t - T, t]``.  With the
  ``O(n^2)`` Lemma 3 points this is ``O(n^2)``–``O(n^3)`` nonzeros and
  dominates model-build and solve time.
* ``compressed`` (default) — a telescoping reformulation.  Per point ``t_i``
  a *window-mass* variable ``W_i in [0, m']`` (the machine budget becomes a
  variable bound, costing zero rows) is linked to its predecessor by

      W_i = W_{i-1} + C_{t_i} - sum_{k : t_k leaves the window} C_{t_k}

  where the dropped indices are ``lo_{i-1} <= k < lo_i`` for
  ``lo_i = min{k : t_k > t_i - T}``.  Every ``C`` enters exactly one linking
  row when it appears and leaves exactly one when it expires, so the
  machine-budget block carries ~4 nonzeros amortized per point instead of a
  fresh ``O(n)`` window copy.  The feasible sets coincide: eliminating the
  ``W_i`` by substitution recovers exactly the legacy rows.  The compressed
  build additionally prunes forward-dominated points (see
  :func:`~repro.longwindow.calibration_points.prune_dominated_points`),
  which preserves the optimum value.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from functools import cached_property
from typing import Mapping, Sequence

from ..core.errors import InfeasibleInstanceError, SolverError
from ..core.job import Job
from ..core.tolerance import EPS
from ..lp import Basis, LinearProgram, LPStatus, Sense, get_backend
from .calibration_points import potential_calibration_points, prune_dominated_points
from .tise import tise_feasible_range

__all__ = ["TiseLP", "TiseLPSolution", "build_tise_lp", "solve_tise_lp"]

FORMULATIONS = ("compressed", "legacy")


@dataclass(frozen=True)
class TiseLP:
    """A built (unsolved) TISE LP with its variable index maps.

    ``stats`` records model-size counters (``rows``, ``cols``, ``nnz``,
    ``machine_nnz`` — nonzeros of the constraint-(1) block including any
    auxiliary window variables — plus ``points`` kept and ``points_input``
    before the domination prune) so benches and ``wall_times`` hooks can
    report the compression factor without re-deriving it.
    """

    lp: LinearProgram
    points: tuple[float, ...]
    machine_budget: int
    calibration_length: float
    c_vars: Mapping[float, int]
    x_vars: Mapping[tuple[int, float], int]
    formulation: str = "legacy"
    stats: Mapping[str, int] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        return len(self.points)


@dataclass(frozen=True)
class TiseLPSolution:
    """A solved TISE LP: fractional calibrations and job assignments.

    ``calibrations[t]`` is the fractional calibration mass at point ``t``
    (zeros omitted); ``assignments[(job_id, t)]`` is the fraction of the job
    assigned there (zeros omitted).  ``objective`` is the LP optimum, a lower
    bound on the optimal number of TISE calibrations on ``machine_budget``
    machines.  ``stats`` carries the model-size counters of the
    :class:`TiseLP` this was solved from (empty for trivial instances).

    ``basis`` is the backend's reusable warm-start handle when it emits one
    (the revised simplex does; HiGHS does not), and ``solver`` the backend's
    numeric telemetry (``iterations``, ``refactorizations``, ``solve_ms``,
    ``warm_started``) — both ``compare=False``: two solves of the same
    instance are equal however they were reached.
    """

    objective: float
    calibrations: dict[float, float]
    assignments: dict[tuple[int, float], float]
    machine_budget: int
    calibration_length: float
    stats: Mapping[str, int] = field(default_factory=dict, compare=False)
    basis: Basis | None = field(default=None, compare=False)
    solver: Mapping[str, float] = field(default_factory=dict, compare=False)

    def total_calibration_mass(self) -> float:
        return sum(self.calibrations.values())

    @cached_property
    def _coverage_by_job(self) -> dict[int, float]:
        # Built once on first use (cached_property writes through __dict__,
        # which frozen dataclasses permit); turns job_coverage from an
        # O(|assignments|) scan per call into an O(1) lookup.
        totals: dict[int, float] = {}
        for (job_id, _), frac in self.assignments.items():
            totals[job_id] = totals.get(job_id, 0.0) + frac
        return totals

    def job_coverage(self, job_id: int) -> float:
        return self._coverage_by_job.get(job_id, 0.0)


def _add_machine_budget_legacy(
    lp: LinearProgram,
    points: tuple[float, ...],
    c_vars: Mapping[float, int],
    machine_budget: int,
    T: float,
    names: bool,
) -> None:
    """Constraint (1), literal form: per point, one row copying its window."""
    for idx, t in enumerate(points):
        lo = bisect.bisect_right(points, t - T + EPS)
        terms = [(c_vars[points[k]], 1.0) for k in range(lo, idx + 1)]
        lp.add_constraint(
            terms, Sense.LE, float(machine_budget),
            name=f"mach[{t}]" if names else "",
        )


def _add_machine_budget_compressed(
    lp: LinearProgram,
    points: tuple[float, ...],
    c_vars: Mapping[float, int],
    machine_budget: int,
    T: float,
    names: bool,
) -> None:
    """Constraint (1), telescoped: bounded window-mass variables ``W_i``.

    ``W_i`` carries ``sum_{t' in (t_i - T, t_i]} C_{t'}``; its upper bound
    ``m'`` *is* the machine budget, and consecutive masses differ by the
    entering point minus the points that slid out of the window, giving an
    equality row with O(1) amortized terms.
    """
    w_prev = -1
    lo_prev = 0
    for i, t in enumerate(points):
        lo = bisect.bisect_right(points, t - T + EPS)
        w_i = lp.add_variable(
            objective=0.0,
            lower=0.0,
            upper=float(machine_budget),
            name=f"W[{t}]" if names else "",
        )
        terms = [(w_i, 1.0), (c_vars[t], -1.0)]
        if w_prev >= 0:
            terms.append((w_prev, -1.0))
            terms.extend((c_vars[points[k]], 1.0) for k in range(lo_prev, lo))
        lp.add_constraint(terms, Sense.EQ, 0.0, name=f"mach[{t}]" if names else "")
        w_prev = w_i
        lo_prev = lo


def build_tise_lp(
    jobs: Sequence[Job],
    calibration_length: float,
    machine_budget: int,
    points: Sequence[float] | None = None,
    *,
    formulation: str = "legacy",
    names: bool = True,
) -> TiseLP:
    """Assemble the Section 3 LP for ``jobs`` with ``m' = machine_budget``.

    ``formulation`` selects the constraint-(1) encoding (see the module
    docstring).  The default here is ``"legacy"`` — the literal Section 3
    transcription, whose variables are exactly the ``C_t``/``X_jt`` that
    structural tools (witness encoders, the MILP bound) index — while
    :func:`solve_tise_lp`, which only exposes the solution, defaults to
    ``"compressed"``.  ``names=False`` skips all variable/constraint
    name-string construction, which the solver backends never need.
    """
    if formulation not in FORMULATIONS:
        raise ValueError(
            f"unknown TISE LP formulation {formulation!r}; expected one of "
            f"{FORMULATIONS}"
        )
    T = calibration_length
    if points is None:
        points = potential_calibration_points(jobs, T)
    points_input = len(points)
    if formulation == "compressed":
        points = prune_dominated_points(points, jobs, T)
    points = tuple(points)
    lp = LinearProgram("tise", track_names=names)

    c_vars: dict[float, int] = {
        t: lp.add_variable(objective=1.0, name=f"C[{t}]" if names else "")
        for t in points
    }
    x_vars: dict[tuple[int, float], int] = {}
    x_by_job: dict[int, list[int]] = {job.job_id: [] for job in jobs}
    # Feasible (j, t) pairs via the precomputed contiguous per-job range:
    # t must lie in [r_j, d_j - T] (constraint (5) by omission).
    for job in jobs:
        lo, hi = tise_feasible_range(job, points, T)
        for t in points[lo:hi]:
            idx = lp.add_variable(
                objective=0.0, name=f"X[{job.job_id}@{t}]" if names else ""
            )
            x_vars[(job.job_id, t)] = idx
            x_by_job[job.job_id].append(idx)

    # (1): sliding-window machine budget.
    nnz_before = lp.num_nonzeros
    if formulation == "legacy":
        _add_machine_budget_legacy(lp, points, c_vars, machine_budget, T, names)
    else:
        _add_machine_budget_compressed(lp, points, c_vars, machine_budget, T, names)
    machine_nnz = lp.num_nonzeros - nnz_before

    # (2): X_jt <= C_t.
    for (job_id, t), x_idx in x_vars.items():
        lp.add_constraint(
            [(x_idx, 1.0), (c_vars[t], -1.0)], Sense.LE, 0.0,
            name=f"cap[{job_id}@{t}]" if names else "",
        )

    # (3): work at a point fits in its calibrations.
    proc = {job.job_id: job.processing for job in jobs}
    terms_by_point: dict[float, list[tuple[int, float]]] = {t: [] for t in points}
    for (job_id, t), x_idx in x_vars.items():
        terms_by_point[t].append((x_idx, proc[job_id]))
    for t, terms in terms_by_point.items():
        if terms:
            lp.add_constraint(
                terms + [(c_vars[t], -T)], Sense.LE, 0.0,
                name=f"work[{t}]" if names else "",
            )

    # (4): every job fully assigned.
    for job in jobs:
        terms = [(x_idx, 1.0) for x_idx in x_by_job[job.job_id]]
        if not terms:
            # No TISE-feasible point at all: the job's window cannot contain
            # any calibration, certifying infeasibility up front.
            raise InfeasibleInstanceError(
                f"job {job.job_id} admits no TISE-feasible calibration point "
                f"(window [{job.release}, {job.deadline}), T={T})"
            )
        lp.add_constraint(
            terms, Sense.EQ, 1.0, name=f"assign[{job.job_id}]" if names else ""
        )

    stats = {
        "rows": lp.num_constraints,
        "cols": lp.num_variables,
        "nnz": lp.num_nonzeros,
        "machine_nnz": machine_nnz,
        "points": len(points),
        "points_input": points_input,
    }
    return TiseLP(
        lp=lp,
        points=points,
        machine_budget=machine_budget,
        calibration_length=T,
        c_vars=c_vars,
        x_vars=x_vars,
        formulation=formulation,
        stats=stats,
    )


def solve_tise_lp(
    jobs: Sequence[Job],
    calibration_length: float,
    machine_budget: int,
    backend: str = "highs",
    points: Sequence[float] | None = None,
    zero_tol: float = 1e-9,
    time_limit: float | None = None,
    *,
    formulation: str = "compressed",
    names: bool = False,
    warm_basis: Basis | None = None,
) -> TiseLPSolution:
    """Build and solve the TISE LP; raises on infeasibility.

    :class:`InfeasibleInstanceError` here means the long-window instance is
    not feasible on ``machine_budget / 3`` machines (Lemma 2 contrapositive).
    ``time_limit`` (seconds) is forwarded to the backend, which raises
    :class:`~repro.core.errors.StageTimeoutError` on expiry.  ``names``
    defaults to False here (the model is discarded after the solve, so
    name strings are pure overhead); :func:`build_tise_lp` keeps them on for
    interactive/debugging use.  ``warm_basis`` (a previous solution's
    ``basis``) is forwarded to the backend; backends that cannot use it
    ignore it, and a stale one falls back to a cold solve inside the
    revised simplex — the returned solution is the same either way.
    """
    if not jobs:
        return TiseLPSolution(
            objective=0.0,
            calibrations={},
            assignments={},
            machine_budget=machine_budget,
            calibration_length=calibration_length,
        )
    model = build_tise_lp(
        jobs, calibration_length, machine_budget, points,
        formulation=formulation, names=names,
    )
    solution = get_backend(backend)(
        model.lp, time_limit=time_limit, warm_basis=warm_basis
    )
    if solution.status is LPStatus.INFEASIBLE:
        raise InfeasibleInstanceError(
            f"TISE LP infeasible on m' = {machine_budget} machines: the "
            "long-window instance has no feasible TISE schedule there"
        )
    if not solution.ok or solution.x is None:
        raise SolverError(
            f"TISE LP solve failed: {solution.status.value} {solution.message}",
            stage="lp",
            backend=backend,
        )
    calibrations = {
        t: float(solution.x[idx])
        for t, idx in model.c_vars.items()
        if solution.x[idx] > zero_tol
    }
    assignments = {
        key: float(solution.x[idx])
        for key, idx in model.x_vars.items()
        if solution.x[idx] > zero_tol
    }
    return TiseLPSolution(
        objective=float(solution.objective),
        calibrations=calibrations,
        assignments=assignments,
        machine_budget=machine_budget,
        calibration_length=calibration_length,
        stats=dict(model.stats),
        basis=solution.basis,
        solver=solution.telemetry(),
    )
