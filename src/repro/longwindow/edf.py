"""EDF job assignment onto a rounded calibration schedule (Algorithm 2).

Given the integer calibration schedule produced by Algorithm 1, Algorithm 2

1. *mirrors* the calibration schedule onto a second, disjoint set of machines
   (doubling calibrations and machines), then
2. scans all calibrations in nondecreasing start order and fills each
   greedily with the earliest-deadline unscheduled job that is TISE-feasible
   for it, packing jobs back-to-back from the calibration's start, stopping
   as soon as the current earliest-deadline job does not fit.

Nonpreemptive EDF does not work for arbitrary instances; Lemmas 8-10 prove
it works here *because* of the TISE restriction: whenever the rounded
calendar admits any feasible fractional assignment (Corollary 6), the
fractional EDF strategy succeeds (Lemma 8), doubling machines converts it to
an integer assignment (Lemma 9), and Algorithm 2 is pointwise at least as
good (Lemma 10).

This module implements Algorithm 2 *and* the proof constructions
(:func:`fractional_edf`, :func:`fractional_to_integer`) so the tests can
machine-check the lemma chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import InfeasibleScheduleError
from ..core.job import Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, leq
from .tise import tise_feasible_for

__all__ = [
    "mirror_calibrations",
    "assign_jobs_edf",
    "FractionalEDFResult",
    "fractional_edf",
    "fractional_to_integer",
]


def mirror_calibrations(schedule: CalibrationSchedule) -> CalibrationSchedule:
    """Duplicate every calibration onto a second disjoint machine pool."""
    mirrored = tuple(
        Calibration(start=c.start, machine=c.machine + schedule.num_machines)
        for c in schedule.calibrations
    )
    return CalibrationSchedule(
        calibrations=schedule.calibrations + mirrored,
        num_machines=2 * schedule.num_machines,
        calibration_length=schedule.calibration_length,
    )


def assign_jobs_edf(
    jobs: Sequence[Job],
    rounded: CalibrationSchedule,
    mirror: bool = True,
) -> Schedule:
    """Algorithm 2: mirror the calendar, then fill calibrations EDF-first.

    Faithful detail: within one calibration the loop stops as soon as the
    *earliest-deadline* eligible job does not fit — it does not try smaller
    jobs further down the deadline order (that is what the paper's
    pseudocode does, and what Lemma 10's induction compares against).

    Raises :class:`InfeasibleScheduleError` if some job remains unscheduled;
    by Lemmas 7-10 this cannot happen when the calendar came from
    Algorithm 1 on a feasible LP solution, so it indicates either a foreign
    calendar or an implementation bug.
    """
    T = rounded.calibration_length
    calendar = mirror_calibrations(rounded) if mirror else rounded
    unscheduled: dict[int, Job] = {j.job_id: j for j in jobs}
    placements: list[ScheduledJob] = []

    for cal in calendar.calibrations:  # already sorted by (start, machine)
        used = 0.0
        while unscheduled:
            eligible = [
                j
                for j in unscheduled.values()
                if tise_feasible_for(j, cal.start, T)
            ]
            if not eligible:
                break
            job = min(eligible, key=lambda j: (j.deadline, j.job_id))
            if not leq(job.processing + used, T):
                break  # the EDF job does not fit: move to the next calibration
            placements.append(
                ScheduledJob(
                    start=cal.start + used, machine=cal.machine, job_id=job.job_id
                )
            )
            used += job.processing
            del unscheduled[job.job_id]

    if unscheduled:
        raise InfeasibleScheduleError(
            f"EDF assignment left {len(unscheduled)} job(s) unscheduled "
            f"(ids {sorted(unscheduled)[:8]}); the calibration calendar does "
            "not admit a feasible assignment"
        )
    return Schedule(
        calibrations=calendar, placements=tuple(placements), speed=1.0
    )


@dataclass(frozen=True)
class FractionalEDFResult:
    """Outcome of the fractional EDF strategy (proof of Lemma 8).

    ``fractions[(job_id, cal_pos)]`` is the fraction of the job assigned to
    the ``cal_pos``-th calibration of the calendar (in scan order).
    """

    fractions: dict[tuple[int, int], float]
    unassigned: dict[int, float]

    @property
    def complete(self) -> bool:
        return not self.unassigned


def fractional_edf(
    jobs: Sequence[Job], calendar: CalibrationSchedule
) -> FractionalEDFResult:
    """The fractional EDF strategy of Lemma 8.

    Scans calibrations in nondecreasing start order; for each, repeatedly
    assigns as much as possible of the earliest-deadline job (ties by id)
    with remaining fraction whose window TISE-contains the calibration.
    """
    T = calendar.calibration_length
    remaining = {j.job_id: 1.0 for j in jobs}
    job_map = {j.job_id: j for j in jobs}
    fractions: dict[tuple[int, int], float] = {}
    for pos, cal in enumerate(calendar.calibrations):
        capacity = T
        while capacity > EPS:
            eligible = [
                job_map[jid]
                for jid, frac in remaining.items()
                if frac > EPS and tise_feasible_for(job_map[jid], cal.start, T)
            ]
            if not eligible:
                break
            job = min(eligible, key=lambda j: (j.deadline, j.job_id))
            frac_capacity = capacity / job.processing
            take = min(remaining[job.job_id], frac_capacity)
            fractions[(job.job_id, pos)] = (
                fractions.get((job.job_id, pos), 0.0) + take
            )
            remaining[job.job_id] -= take
            capacity -= take * job.processing
    unassigned = {jid: frac for jid, frac in remaining.items() if frac > EPS}
    return FractionalEDFResult(fractions=fractions, unassigned=unassigned)


def fractional_to_integer(
    jobs: Sequence[Job],
    calendar: CalibrationSchedule,
    fractional: FractionalEDFResult,
) -> Schedule:
    """Lemma 9: double the machines to de-fractionalize the EDF assignment.

    For each calibration, the (at most one) job assigned fractionally *last*
    is moved entirely to the mirrored calibration; other fractional pieces
    of that job elsewhere are dropped.  Doubles machines and calibrations.
    """
    if not fractional.complete:
        raise InfeasibleScheduleError(
            "cannot de-fractionalize an incomplete fractional assignment"
        )
    T = calendar.calibration_length
    job_map = {j.job_id: j for j in jobs}
    doubled = mirror_calibrations(calendar)
    cals = calendar.calibrations

    # Reconstruct, per calibration, the EDF fill order (fractions were
    # produced in scan order, and within one calibration in EDF order).
    per_cal: dict[int, list[tuple[int, float]]] = {}
    for (jid, pos), frac in fractional.fractions.items():
        per_cal.setdefault(pos, []).append((jid, frac))
    for pos in per_cal:
        per_cal[pos].sort(key=lambda e: (job_map[e[0]].deadline, e[0]))

    placed: set[int] = set()
    placements: list[ScheduledJob] = []
    # A job split across calibrations keeps only its *first* fractional home,
    # promoted to a full (integer) assignment on the mirror machine.
    split_jobs = {
        jid
        for jid in job_map
        if sum(
            1 for (j, _p) in fractional.fractions if j == jid
        ) > 1
        or any(
            frac < 1.0 - EPS
            for (j, _p), frac in fractional.fractions.items()
            if j == jid
        )
    }
    for pos in sorted(per_cal):
        cal = cals[pos]
        used = 0.0
        mirror_used = 0.0
        mirror_machine = cal.machine + calendar.num_machines
        for jid, frac in per_cal[pos]:
            job = job_map[jid]
            if jid in placed:
                continue
            if jid in split_jobs:
                placements.append(
                    ScheduledJob(
                        start=cal.start + mirror_used,
                        machine=mirror_machine,
                        job_id=jid,
                    )
                )
                mirror_used += job.processing
            else:
                placements.append(
                    ScheduledJob(
                        start=cal.start + used, machine=cal.machine, job_id=jid
                    )
                )
                used += job.processing
            placed.add(jid)

    missing = set(job_map) - placed
    if missing:
        raise InfeasibleScheduleError(
            f"Lemma 9 transformation lost jobs {sorted(missing)[:8]}"
        )
    return Schedule(calibrations=doubled, placements=tuple(placements), speed=1.0)
