"""Lower bounds, metrics, and report formatting."""

from .lower_bounds import (
    LowerBoundBreakdown,
    combined_lower_bound,
    long_window_lower_bound,
    long_window_milp_lower_bound,
    short_window_lower_bound,
    work_lower_bound,
)
from .augmentation import (
    AugmentationPoint,
    augmentation_frontier,
    frontier_table,
    minimum_speed,
)
from .distributions import FamilyStats, aggregate_by_family, distribution_table
from .html_report import render_html_report, save_html_report
from .metrics import ScheduleMetrics, ratio, summarize_schedule
from .report import Table, format_value, write_report
from .sweep import (
    FAMILY_GENERATORS,
    SweepCase,
    SweepOutcome,
    SweepReport,
    case_key,
    load_sweep_outcomes,
    run_sweep,
    run_sweep_report,
    save_sweep_report,
    sweep_fingerprint,
    sweep_table,
)

__all__ = [
    "work_lower_bound",
    "long_window_lower_bound",
    "long_window_milp_lower_bound",
    "short_window_lower_bound",
    "combined_lower_bound",
    "LowerBoundBreakdown",
    "ratio",
    "ScheduleMetrics",
    "summarize_schedule",
    "Table",
    "format_value",
    "write_report",
    "SweepCase",
    "SweepOutcome",
    "SweepReport",
    "case_key",
    "load_sweep_outcomes",
    "run_sweep",
    "run_sweep_report",
    "save_sweep_report",
    "sweep_fingerprint",
    "sweep_table",
    "FAMILY_GENERATORS",
    "render_html_report",
    "save_html_report",
    "FamilyStats",
    "aggregate_by_family",
    "distribution_table",
    "AugmentationPoint",
    "augmentation_frontier",
    "frontier_table",
    "minimum_speed",
]
