"""Resource-augmentation explorer: how much speed does an instance need?

The paper works in the `w`-machine `s`-speed augmentation model (Phillips et
al.), motivated by ISE feasibility being NP-hard.  This module measures the
model's central quantity on concrete instances: the minimal machine speed at
which a job set becomes (nonpreemptively) schedulable on ``m`` machines —
and the full machines-versus-speed feasibility frontier.

Monotonicity makes both well-defined: raising the speed shrinks every
execution, so feasibility at speed ``s`` implies feasibility at ``s' > s``
(keep the same start times), and likewise for adding machines.

The frontier answers the practical procurement question behind Theorem 14's
trade: fewer, faster testers versus more, slower ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.errors import LimitExceededError
from ..core.job import Instance, Job
from ..mm.exact import feasible_on_machines
from ..mm.greedy import ORDERINGS, try_schedule_on_w_machines
from ..mm.preemptive_bound import preemptive_feasible
from .report import Table

__all__ = [
    "minimum_speed",
    "AugmentationPoint",
    "augmentation_frontier",
    "frontier_table",
]


def _feasible_at_speed(
    jobs: Sequence[Job],
    machines: int,
    speed: float,
    method: str,
    node_budget: int,
) -> bool:
    if method == "preemptive":
        return preemptive_feasible(jobs, machines, speed)
    if method == "greedy":
        return any(
            try_schedule_on_w_machines(jobs, machines, speed, key) is not None
            for key in ORDERINGS.values()
        )
    if method == "exact":
        try:
            return (
                feasible_on_machines(
                    jobs, machines, speed, node_budget=node_budget
                )
                is not None
            )
        except LimitExceededError:
            # Fall back to the heuristic: feasibility found heuristically is
            # sound; a heuristic "no" may overstate the needed speed, which
            # only makes the reported frontier conservative.
            return any(
                try_schedule_on_w_machines(jobs, machines, speed, key)
                is not None
                for key in ORDERINGS.values()
            )
    raise ValueError(f"unknown method {method!r}")


def minimum_speed(
    jobs: Sequence[Job],
    machines: int,
    method: str = "exact",
    precision: float = 1e-3,
    max_speed: float = 64.0,
    node_budget: int = 100_000,
) -> float:
    """Minimal speed making ``jobs`` schedulable on ``machines`` machines.

    Binary search over speed; ``method`` selects the feasibility oracle:
    ``"preemptive"`` (max-flow; a lower bound on the true requirement),
    ``"greedy"`` (list scheduling; an upper bound), or ``"exact"``
    (branch-and-bound, heuristic fallback on budget exhaustion).

    Returns ``max_speed`` if even that is insufficient per the oracle (for
    ``greedy`` this can happen on feasible instances; for ``exact`` it
    certifies a pathological input).
    """
    if not jobs:
        return 1.0
    lo, hi = 0.0, 1.0
    # Exponential search for a feasible upper end first.
    while not _feasible_at_speed(jobs, machines, hi, method, node_budget):
        lo = hi
        hi *= 2.0
        if hi > max_speed:
            return max_speed
    lo = max(lo, precision)
    while hi - lo > precision:
        mid = (lo + hi) / 2.0
        if _feasible_at_speed(jobs, machines, mid, method, node_budget):
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class AugmentationPoint:
    """One point of the machines-versus-speed feasibility frontier."""

    machines: int
    speed_preemptive: float
    """Lower bound on the required speed (preemptive relaxation)."""
    speed_achievable: float
    """Speed at which the chosen constructive oracle succeeds."""


def augmentation_frontier(
    instance: Instance,
    max_machines: int | None = None,
    method: str = "exact",
    precision: float = 1e-3,
) -> list[AugmentationPoint]:
    """The full frontier for ``m = 1 .. max_machines`` (default: instance m + 2)."""
    limit = max_machines if max_machines is not None else instance.machines + 2
    out: list[AugmentationPoint] = []
    for m in range(1, limit + 1):
        out.append(
            AugmentationPoint(
                machines=m,
                speed_preemptive=minimum_speed(
                    instance.jobs, m, method="preemptive", precision=precision
                ),
                speed_achievable=minimum_speed(
                    instance.jobs, m, method=method, precision=precision
                ),
            )
        )
    return out


def frontier_table(
    points: Sequence[AugmentationPoint], title: str = "augmentation frontier"
) -> Table:
    """Tabulate a frontier in the standard report format."""
    table = Table(
        title=title,
        columns=["machines", "speed LB (preemptive)", "speed achievable", "gap"],
    )
    for point in points:
        gap = (
            point.speed_achievable / point.speed_preemptive
            if point.speed_preemptive > 0
            else float("inf")
        )
        table.add_row(
            point.machines,
            point.speed_preemptive,
            point.speed_achievable,
            gap,
        )
    return table
