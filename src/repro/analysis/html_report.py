"""Self-contained HTML report for one solve run.

Bundles everything a reviewer needs into a single file with no external
assets: instance summary, lower-bound breakdown, solver telemetry, the
per-machine simulation statistics, and the SVG Gantt chart inline.  Exposed
on the command line as ``repro-ise report``.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

from typing import TYPE_CHECKING

from ..core.atomicio import atomic_write_text
from ..core.job import Instance
from ..sim import SimulationResult
from ..viz.svg import schedule_to_svg
from .metrics import summarize_schedule

if TYPE_CHECKING:  # annotation only: core.solver imports this package
    from ..core.solver import ISEResult

__all__ = ["render_html_report", "save_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 70rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.6rem 0; }
td, th { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: left;
         font-size: 0.9rem; }
th { background: #f2f5f9; }
.ok { color: #1a7f37; font-weight: 600; } .bad { color: #b42318; font-weight: 600; }
figure { margin: 1rem 0; overflow-x: auto; border: 1px solid #eee; }
"""


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


#: Violations shown inline before the report truncates with an honest count.
_VIOLATION_LIMIT = 20


def render_html_report(
    instance: Instance,
    result: "ISEResult",
    simulation: SimulationResult | None = None,
    title: str = "ISE solve report",
    stash: "dict[str, int] | None" = None,
) -> str:
    """Render the report as an HTML document string.

    ``stash`` is an optional LP basis-stash counter snapshot
    (:meth:`repro.lp.BasisStash.snapshot`) rendered as its own section, so
    warm-start behavior (hits, misses, sentinel-driven evictions) is
    visible alongside the solve it served.
    """
    schedule = result.schedule
    metrics = summarize_schedule(instance, schedule)
    lb = result.lower_bound

    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>instance <strong>{html.escape(instance.name or 'unnamed')}</strong>: "
        f"{instance.n} jobs, m = {instance.machines}, "
        f"T = {instance.calibration_length:g}</p>",
        "<h2>Solution</h2>",
        _table(
            ["metric", "value"],
            [
                ("calibrations", schedule.num_calibrations),
                ("machines used", metrics.machines_used),
                ("speed", schedule.speed),
                ("utilization", f"{metrics.utilization:.1%}"),
                ("long / short jobs", f"{result.partition.n_long} / {result.partition.n_short}"),
            ],
        ),
        "<h2>Certified lower bounds</h2>",
        _table(
            ["bound", "value"],
            [
                ("work (ceil of total work / T)", lb.work),
                ("long-window LP / 3 (Lemma 2)", f"{lb.long_lp:.3f}"),
                ("short interval / 2 (Lemma 18)", f"{lb.short_interval:.3f}"),
                ("best", f"{lb.best:.3f}"),
                (
                    "measured ratio (upper-bounds the true ratio)",
                    f"{result.approximation_ratio:.3f}",
                ),
            ],
        ),
    ]

    certificate = getattr(result, "certificate", None)
    if certificate is not None:
        verdict = (
            "<span class='ok'>VALID</span>"
            if certificate.valid
            else f"<span class='bad'>INVALID ({certificate.violations} violations)</span>"
        )
        parts.append("<h2>Solve certificate</h2>")
        parts.append(f"<p>verdict: {verdict}</p>")
        parts.append(
            _table(
                ["field", "value"],
                [
                    ("instance fingerprint", certificate.instance),
                    ("lower bound", f"{certificate.lower_bound:.3f}"),
                    ("approximation ratio", f"{certificate.approximation_ratio:.3f}"),
                    (
                        f"within {certificate.guarantee_factor:g}x guarantee",
                        certificate.within_guarantee,
                    ),
                    ("degraded", certificate.degraded),
                    ("checksum", certificate.checksum),
                ],
            )
        )

    if result.wall_times:
        parts.append("<h2>Stage timings</h2>")
        parts.append(
            _table(
                ["stage", "seconds"],
                [(k, f"{v:.4f}") for k, v in sorted(result.wall_times.items())],
            )
        )

    if stash is not None:
        parts.append("<h2>LP basis stash</h2>")
        parts.append(
            _table(
                ["counter", "value"],
                [(k, stash[k]) for k in sorted(stash)],
            )
        )

    if simulation is not None:
        status = (
            "<span class='ok'>clean</span>"
            if simulation.ok
            else f"<span class='bad'>{len(simulation.violations)} violations</span>"
        )
        parts.append("<h2>Execution (event simulator)</h2>")
        parts.append(f"<p>run status: {status}</p>")
        rows = []
        for machine in sorted(simulation.calibrated_time_per_machine):
            busy = simulation.busy_time_per_machine.get(machine, 0.0)
            cal = simulation.calibrated_time_per_machine[machine]
            rows.append(
                (machine, f"{busy:g}", f"{cal:g}",
                 f"{busy / cal:.0%}" if cal else "-")
            )
        parts.append(
            _table(["machine", "busy", "calibrated", "utilization"], rows)
        )
        for violation in simulation.violations[:_VIOLATION_LIMIT]:
            parts.append(f"<p class='bad'>{html.escape(violation)}</p>")
        hidden = len(simulation.violations) - _VIOLATION_LIMIT
        if hidden > 0:
            parts.append(f"<p class='bad'>... and {hidden} more</p>")

    parts.append("<h2>Schedule</h2><figure>")
    parts.append(schedule_to_svg(instance, schedule, width=1040))
    parts.append("</figure></body></html>")
    return "\n".join(parts)


def save_html_report(
    instance: Instance,
    result: "ISEResult",
    path: str | Path,
    simulation: SimulationResult | None = None,
    title: str = "ISE solve report",
    stash: "dict[str, int] | None" = None,
) -> Path:
    """Write the HTML report to ``path``; returns the path."""
    path = Path(path)
    atomic_write_text(
        path, render_html_report(instance, result, simulation, title, stash)
    )
    return path
