"""Solution-quality metrics shared by tests, benches, and examples."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import Instance
from ..core.schedule import Schedule

__all__ = ["ratio", "ScheduleMetrics", "summarize_schedule"]


def ratio(value: float, lower_bound: float) -> float:
    """``value / lower_bound`` with the 0/0 = 1 convention.

    A ratio against a lower bound upper-bounds the true approximation ratio.
    """
    if lower_bound <= 0:
        return 1.0 if value <= 0 else float("inf")
    return value / lower_bound


@dataclass(frozen=True)
class ScheduleMetrics:
    """Headline numbers for one schedule on one instance."""

    num_calibrations: int
    machines_used: int
    speed: float
    calibrated_time: float
    """Total calibrated machine-time (``num_calibrations * T``)."""
    busy_time: float
    """Total executed work at the schedule's speed."""
    utilization: float
    """``busy_time / calibrated_time`` — how much calibrated time is used."""
    horizon: tuple[float, float]

    def row(self) -> dict[str, float | int | str]:
        return {
            "calibrations": self.num_calibrations,
            "machines": self.machines_used,
            "speed": self.speed,
            "utilization": round(self.utilization, 4),
        }


def summarize_schedule(instance: Instance, schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a schedule of ``instance``."""
    T = schedule.calibration_length
    job_map = instance.job_map()
    busy = sum(
        job_map[p.job_id].processing / schedule.speed
        for p in schedule.placements
        if p.job_id in job_map
    )
    calibrated = schedule.num_calibrations * T
    machines_used = len(
        {c.machine for c in schedule.calibrations}
        | {p.machine for p in schedule.placements}
    )
    times = [c.start for c in schedule.calibrations]
    horizon = (
        (min(times), max(times) + T) if times else (0.0, 0.0)
    )
    return ScheduleMetrics(
        num_calibrations=schedule.num_calibrations,
        machines_used=machines_used,
        speed=schedule.speed,
        calibrated_time=calibrated,
        busy_time=busy,
        utilization=(busy / calibrated) if calibrated > 0 else 0.0,
        horizon=horizon,
    )
