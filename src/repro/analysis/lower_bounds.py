"""Certified lower bounds on the optimal number of calibrations.

The paper is a theory paper, so the reproduction's "ground truth" for
approximation ratios is a *certified lower bound* on OPT; every measured
ratio (ALG / LB) is then an upper bound on the true ratio (ALG / OPT), and
"the theorem's bound holds" conclusions are conservative.

Bounds (all proved valid in the referenced lemma or by the stated argument):

* :func:`work_lower_bound` — each calibration processes at most ``T`` work,
  so OPT >= ceil(total work / T).
* :func:`long_window_lower_bound` — TISE-LP(3m)/3: Lemma 2 gives
  TISE-OPT(3m) <= 3 ISE-OPT(m), and the LP relaxes TISE-OPT(3m).
* :func:`long_window_milp_lower_bound` — the same with integral calibration
  variables (tighter; small instances only).
* :func:`short_window_lower_bound` — Lemma 18: for each pass offset, jobs
  nested in its intervals force ``sum_i w_i* / 2`` calibrations, with
  ``w_i*`` itself bounded below by the preemptive max-flow bound (Lemma 17
  chains machine bounds to calibration bounds).
* :func:`combined_lower_bound` — the max of the applicable bounds, each
  applied to the sub-instance it covers (OPT of the whole instance is at
  least OPT of any job subset).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.job import Instance, Job
from ..core.partition import partition_jobs
from ..core.tolerance import EPS
from ..longwindow.lp_relaxation import solve_tise_lp
from ..mm.preemptive_bound import preemptive_machine_lower_bound
from ..shortwindow.intervals import partition_short_jobs

__all__ = [
    "work_lower_bound",
    "long_window_lower_bound",
    "long_window_milp_lower_bound",
    "short_window_lower_bound",
    "LowerBoundBreakdown",
    "combined_lower_bound",
]


def work_lower_bound(jobs: Sequence[Job], calibration_length: float) -> int:
    """``ceil(sum p_j / T)``: total-work counting bound."""
    total = sum(j.processing for j in jobs)
    if total <= EPS:
        return 0
    return max(1, math.ceil(total / calibration_length - EPS))


def long_window_lower_bound(
    jobs: Sequence[Job],
    calibration_length: float,
    machines: int,
    backend: str = "highs",
) -> float:
    """``TISE-LP(3m) / 3`` — a lower bound on ISE OPT(m) for long jobs.

    Chain: LP(3m) <= TISE-OPT(3m) <= 3 * ISE-OPT(m) (Lemma 2).
    """
    if not jobs:
        return 0.0
    solution = solve_tise_lp(jobs, calibration_length, 3 * machines, backend=backend)
    return solution.objective / 3.0


def long_window_milp_lower_bound(
    jobs: Sequence[Job], calibration_length: float, machines: int
) -> float:
    """Integral-calibration MILP variant of :func:`long_window_lower_bound`."""
    if not jobs:
        return 0.0
    from ..baselines.exact import tise_milp_bound  # local import: optional dep path

    return tise_milp_bound(jobs, calibration_length, 3 * machines) / 3.0


def short_window_lower_bound(
    jobs: Sequence[Job],
    calibration_length: float,
    gamma: float = 2.0,
    speed: float = 1.0,
    method: str = "flow",
    exact_node_budget: int = 50_000,
) -> float:
    """Lemma 18 interval bound over both pass offsets (max of the two).

    For offset ``tau``, only jobs nested in some ``tau``-interval contribute
    (a subset of the instance — still a valid lower bound).  Per interval,
    ``w_i*`` is replaced by

    * ``method="flow"`` (default): the preemptive max-flow bound — always
      cheap, possibly loose;
    * ``method="exact"``: the exact nonpreemptive MM optimum via
      branch-and-bound (tighter; falls back to the flow bound on intervals
      where the search exceeds ``exact_node_budget``).

    Both substitutes are ``<= w_i*`` or ``= w_i*``, so the result is a valid
    lower bound either way (Lemma 17 chains it to calibrations).
    """
    if method not in ("flow", "exact"):
        raise ValueError(f"unknown method {method!r}; use 'flow' or 'exact'")
    if not jobs:
        return 0.0
    partition = partition_short_jobs(jobs, calibration_length, gamma=gamma)
    sums = [0.0, 0.0]
    for bucket in partition.buckets:
        if method == "exact":
            from ..core.errors import LimitExceededError
            from ..mm.exact import ExactMM

            try:
                w = ExactMM(node_budget=exact_node_budget).solve(
                    bucket.jobs, speed
                ).num_machines
            except LimitExceededError:
                w = preemptive_machine_lower_bound(bucket.jobs, speed)
        else:
            w = preemptive_machine_lower_bound(bucket.jobs, speed)
        sums[bucket.pass_index] += w
    return max(sums) / 2.0


@dataclass(frozen=True)
class LowerBoundBreakdown:
    """All computed bounds plus their max (the bound to report against)."""

    work: int
    long_lp: float
    short_interval: float

    @property
    def best(self) -> float:
        return max(float(self.work), self.long_lp, self.short_interval)


def combined_lower_bound(
    instance: Instance,
    backend: str = "highs",
    gamma: float = 2.0,
) -> LowerBoundBreakdown:
    """Best certified lower bound for a mixed instance.

    Each component bound is evaluated on the job subset it covers; since
    removing jobs cannot increase OPT, every component lower-bounds the full
    instance's OPT, and so does their max.
    """
    T = instance.calibration_length
    split = partition_jobs(instance)
    return LowerBoundBreakdown(
        work=work_lower_bound(instance.jobs, T),
        long_lp=long_window_lower_bound(
            split.long_jobs, T, instance.machines, backend=backend
        ),
        short_interval=short_window_lower_bound(split.short_jobs, T, gamma=gamma),
    )
