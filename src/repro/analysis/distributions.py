"""Aggregate statistics over sweep outcomes.

Turns a list of :class:`~repro.analysis.sweep.SweepOutcome` records into the
distributional summary a paper's evaluation section would report: per-family
mean/median/p95 of the quality ratio, mean post-optimization recovery, and
solve-time statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .report import Table
from .sweep import SweepOutcome

__all__ = ["FamilyStats", "aggregate_by_family", "distribution_table"]


@dataclass(frozen=True)
class FamilyStats:
    """Distributional summary of one family's sweep outcomes."""

    family: str
    cases: int
    ratio_mean: float
    ratio_median: float
    ratio_p95: float
    ratio_max: float
    postopt_recovery_mean: float
    """Mean fraction of calibrations removed by post-optimization."""
    wall_ms_mean: float
    all_valid: bool


def aggregate_by_family(outcomes: Sequence[SweepOutcome]) -> list[FamilyStats]:
    """Group outcomes by family and summarize; sorted by family name."""
    by_family: dict[str, list[SweepOutcome]] = {}
    for outcome in outcomes:
        by_family.setdefault(outcome.case.family, []).append(outcome)
    stats: list[FamilyStats] = []
    for family in sorted(by_family):
        group = by_family[family]
        ratios = np.array([o.quality_ratio for o in group], dtype=float)
        recovery = np.array(
            [
                (o.calibrations - o.calibrations_postopt) / o.calibrations
                if o.calibrations
                else 0.0
                for o in group
            ],
            dtype=float,
        )
        walls = np.array([o.wall_seconds for o in group], dtype=float)
        stats.append(
            FamilyStats(
                family=family,
                cases=len(group),
                ratio_mean=float(ratios.mean()),
                ratio_median=float(np.median(ratios)),
                ratio_p95=float(np.percentile(ratios, 95)),
                ratio_max=float(ratios.max()),
                postopt_recovery_mean=float(recovery.mean()),
                wall_ms_mean=float(walls.mean() * 1e3),
                all_valid=all(o.valid for o in group),
            )
        )
    return stats


def distribution_table(
    outcomes: Sequence[SweepOutcome], title: str = "quality distribution"
) -> Table:
    """Tabulate :func:`aggregate_by_family` in the standard report format."""
    table = Table(
        title=title,
        columns=[
            "family", "cases", "ratio mean", "median", "p95", "max",
            "postopt recovery", "mean ms", "all valid",
        ],
    )
    for s in aggregate_by_family(outcomes):
        table.add_row(
            s.family, s.cases, s.ratio_mean, s.ratio_median, s.ratio_p95,
            s.ratio_max, f"{s.postopt_recovery_mean:.0%}", s.wall_ms_mean,
            s.all_valid,
        )
    return table
