"""Parameter-sweep experiment runner.

A light harness for "solve this family across these parameters and tabulate
quality" studies — the programmatic form of what the benchmark files do,
exposed so users can run their own sweeps (and via ``repro-ise sweep`` on
the command line).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from typing import TYPE_CHECKING

from ..core.job import Instance
from ..core.validate import validate_ise

if TYPE_CHECKING:  # import at runtime inside run_sweep: core.solver imports
    from ..core.solver import ISEConfig  # this package (cycle otherwise)
from ..instances.generators import (
    GeneratedInstance,
    clustered_instance,
    heavy_tail_instance,
    long_window_instance,
    mixed_instance,
    rigid_instance,
    short_window_instance,
    staircase_instance,
    unit_instance,
)
from ..postopt import consolidate
from .metrics import ratio
from .report import Table

__all__ = ["SweepCase", "SweepOutcome", "run_sweep", "sweep_table", "FAMILY_GENERATORS"]

FAMILY_GENERATORS: dict[str, Callable[..., GeneratedInstance]] = {
    "long": long_window_instance,
    "short": short_window_instance,
    "mixed": mixed_instance,
    "clustered": clustered_instance,
    "rigid": rigid_instance,
    "staircase": staircase_instance,
    "heavy_tail": heavy_tail_instance,
    "unit": unit_instance,
}


@dataclass(frozen=True)
class SweepCase:
    """One point of a sweep: a family plus its generator parameters."""

    family: str
    n: int
    machines: int
    calibration_length: float
    seed: int

    def generate(self) -> GeneratedInstance:
        generator = FAMILY_GENERATORS[self.family]
        T = self.calibration_length
        if self.family == "unit":
            T = int(T)
        return generator(self.n, self.machines, T, self.seed)


@dataclass(frozen=True)
class SweepOutcome:
    """Quality record for one solved case."""

    case: SweepCase
    calibrations: int
    calibrations_postopt: int
    lower_bound: float
    machines_used: int
    valid: bool
    wall_seconds: float

    @property
    def quality_ratio(self) -> float:
        return ratio(self.calibrations_postopt, self.lower_bound)


@dataclass(frozen=True)
class _CaseTask:
    """Picklable unit of sweep work (case + solve options)."""

    case: SweepCase
    config: "ISEConfig | None"
    postopt: bool


def _solve_case(task: _CaseTask) -> SweepOutcome:
    """Solve one sweep case; module-level so process pools can ship it."""
    from ..core.solver import solve_ise  # deferred: avoids an import cycle

    case = task.case
    generated = case.generate()
    instance = generated.instance
    tic = time.perf_counter()
    result = solve_ise(instance, task.config)
    schedule = result.schedule
    after = result.num_calibrations
    if task.postopt:
        improved = consolidate(instance, schedule)
        schedule = improved.schedule
        after = improved.final_calibrations
    wall = time.perf_counter() - tic
    return SweepOutcome(
        case=case,
        calibrations=result.num_calibrations,
        calibrations_postopt=after,
        lower_bound=result.lower_bound.best,
        machines_used=result.machines_used,
        valid=validate_ise(instance, schedule).ok,
        wall_seconds=wall,
    )


def run_sweep(
    cases: Iterable[SweepCase],
    config: "ISEConfig | None" = None,
    postopt: bool = True,
    *,
    workers: int | None = None,
    mode: str = "auto",
) -> list[SweepOutcome]:
    """Solve every case; returns outcomes in input order.

    Each case is validated independently; an infeasible output surfaces as
    ``valid=False`` rather than an exception so sweeps complete.

    With ``workers > 1`` the independent cases fan out over a worker pool
    (see :func:`repro.core.parallel.parallel_map`); outcomes are identical
    to the serial run apart from ``wall_seconds``, which is a per-case
    measurement either way.
    """
    from ..core.parallel import parallel_map  # deferred: mirrors solve_ise

    tasks = [_CaseTask(case=case, config=config, postopt=postopt) for case in cases]
    results = parallel_map(_solve_case, tasks, max_workers=workers, mode=mode)
    return [outcome for outcome in results if isinstance(outcome, SweepOutcome)]


def sweep_table(outcomes: Sequence[SweepOutcome], title: str = "sweep") -> Table:
    """Tabulate sweep outcomes in the standard report format."""
    table = Table(
        title=title,
        columns=[
            "family", "n", "m", "T", "seed", "cals", "postopt", "LB",
            "ratio", "machines", "valid", "ms",
        ],
    )
    for outcome in outcomes:
        case = outcome.case
        table.add_row(
            case.family, case.n, case.machines, case.calibration_length,
            case.seed, outcome.calibrations, outcome.calibrations_postopt,
            outcome.lower_bound, outcome.quality_ratio,
            outcome.machines_used, outcome.valid,
            outcome.wall_seconds * 1e3,
        )
    return table
