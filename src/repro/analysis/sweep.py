"""Parameter-sweep experiment runner.

A light harness for "solve this family across these parameters and tabulate
quality" studies — the programmatic form of what the benchmark files do,
exposed so users can run their own sweeps (and via ``repro-ise sweep`` on
the command line).

Crash safety: pass ``checkpoint_dir`` to :func:`run_sweep_report` and every
completed case is journaled as it finishes (see
:mod:`repro.core.checkpoint`); after a crash, ``resume=True`` (the CLI's
``--resume``) replays the journal, skips the ``done`` shards, and re-solves
only the remainder — the final report is byte-identical to an uninterrupted
run.  A case whose worker process dies is retried with backoff and then
*quarantined* (recorded ``failed`` and surfaced on the
:class:`SweepReport`) instead of aborting the whole sweep.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from typing import TYPE_CHECKING

from ..core.atomicio import checksum, dump_artifact, load_artifact
from ..core.checkpoint import (
    CheckpointedRun,
    ShardJournal,
    ShardOutcome,
    shard_error_context,
)
from ..core.errors import InvalidArtifactError, LimitExceededError
from ..core.job import Instance
from ..core.resilience import ResilienceReport, SolveBudget, budget_scope
from ..core.validate import validate_ise

if TYPE_CHECKING:  # import at runtime inside run_sweep: core.solver imports
    from ..core.solver import ISEConfig  # this package (cycle otherwise)
from ..instances.generators import (
    GeneratedInstance,
    clustered_instance,
    heavy_tail_instance,
    long_window_instance,
    mixed_instance,
    rigid_instance,
    short_window_instance,
    staircase_instance,
    unit_instance,
)
from ..postopt import consolidate
from .metrics import ratio
from .report import Table

__all__ = [
    "SweepCase",
    "SweepOutcome",
    "SweepReport",
    "case_key",
    "load_sweep_outcomes",
    "outcome_from_dict",
    "outcome_to_dict",
    "sweep_fingerprint",
    "run_sweep",
    "run_sweep_report",
    "save_sweep_report",
    "sweep_table",
    "FAMILY_GENERATORS",
]

FAMILY_GENERATORS: dict[str, Callable[..., GeneratedInstance]] = {
    "long": long_window_instance,
    "short": short_window_instance,
    "mixed": mixed_instance,
    "clustered": clustered_instance,
    "rigid": rigid_instance,
    "staircase": staircase_instance,
    "heavy_tail": heavy_tail_instance,
    "unit": unit_instance,
}


@dataclass(frozen=True)
class SweepCase:
    """One point of a sweep: a family plus its generator parameters."""

    family: str
    n: int
    machines: int
    calibration_length: float
    seed: int

    def generate(self) -> GeneratedInstance:
        generator = FAMILY_GENERATORS[self.family]
        T = self.calibration_length
        if self.family == "unit":
            T = int(T)
        return generator(self.n, self.machines, T, self.seed)


@dataclass(frozen=True)
class SweepOutcome:
    """Quality record for one solved case."""

    case: SweepCase
    calibrations: int
    calibrations_postopt: int
    lower_bound: float
    machines_used: int
    valid: bool
    wall_seconds: float

    @property
    def quality_ratio(self) -> float:
        return ratio(self.calibrations_postopt, self.lower_bound)


def case_key(case: SweepCase) -> str:
    """Stable shard identity of one case across runs (checkpoint journals)."""
    return (
        f"{case.family}/n{case.n}/m{case.machines}"
        f"/T{case.calibration_length:g}/s{case.seed}"
    )


def _case_to_dict(case: SweepCase) -> dict[str, Any]:
    return {
        "family": case.family,
        "n": case.n,
        "machines": case.machines,
        "calibration_length": case.calibration_length,
        "seed": case.seed,
    }


def _case_from_dict(payload: dict[str, Any]) -> SweepCase:
    return SweepCase(
        family=str(payload["family"]),
        n=int(payload["n"]),
        machines=int(payload["machines"]),
        calibration_length=float(payload["calibration_length"]),
        seed=int(payload["seed"]),
    )


def outcome_to_dict(outcome: SweepOutcome) -> dict[str, Any]:
    """JSON-able form of one outcome (journal payloads, sweep artifacts)."""
    return {
        "case": _case_to_dict(outcome.case),
        "calibrations": outcome.calibrations,
        "calibrations_postopt": outcome.calibrations_postopt,
        "lower_bound": outcome.lower_bound,
        "machines_used": outcome.machines_used,
        "valid": outcome.valid,
        "wall_seconds": outcome.wall_seconds,
    }


def outcome_from_dict(payload: dict[str, Any]) -> SweepOutcome:
    """Inverse of :func:`outcome_to_dict` — lossless round trip."""
    try:
        return SweepOutcome(
            case=_case_from_dict(payload["case"]),
            calibrations=int(payload["calibrations"]),
            calibrations_postopt=int(payload["calibrations_postopt"]),
            lower_bound=float(payload["lower_bound"]),
            machines_used=int(payload["machines_used"]),
            valid=bool(payload["valid"]),
            wall_seconds=float(payload["wall_seconds"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidArtifactError(
            f"malformed sweep outcome payload: {exc}"
        ) from exc


@dataclass(frozen=True)
class _CaseTask:
    """Picklable unit of sweep work (case + solve options)."""

    case: SweepCase
    config: "ISEConfig | None"
    postopt: bool


def _solve_case(task: _CaseTask) -> SweepOutcome:
    """Solve one sweep case; module-level so process pools can ship it."""
    from ..core.solver import solve_ise  # deferred: avoids an import cycle

    case = task.case
    generated = case.generate()
    instance = generated.instance
    tic = time.perf_counter()
    result = solve_ise(instance, task.config)
    schedule = result.schedule
    after = result.num_calibrations
    if task.postopt:
        improved = consolidate(instance, schedule)
        schedule = improved.schedule
        after = improved.final_calibrations
    wall = time.perf_counter() - tic
    return SweepOutcome(
        case=case,
        calibrations=result.num_calibrations,
        calibrations_postopt=after,
        lower_bound=result.lower_bound.best,
        machines_used=result.machines_used,
        valid=validate_ise(instance, schedule).ok,
        wall_seconds=wall,
    )


def run_sweep(
    cases: Iterable[SweepCase],
    config: "ISEConfig | None" = None,
    postopt: bool = True,
    *,
    workers: int | None = None,
    mode: str = "auto",
) -> list[SweepOutcome]:
    """Solve every case; returns outcomes in input order.

    Each case is validated independently; an infeasible output surfaces as
    ``valid=False`` rather than an exception so sweeps complete.

    With ``workers > 1`` the independent cases fan out over a worker pool
    (see :func:`repro.core.parallel.parallel_map`); outcomes are identical
    to the serial run apart from ``wall_seconds``, which is a per-case
    measurement either way.
    """
    from ..core.parallel import parallel_map  # deferred: mirrors solve_ise

    tasks = [_CaseTask(case=case, config=config, postopt=postopt) for case in cases]
    results = parallel_map(_solve_case, tasks, max_workers=workers, mode=mode)
    return [outcome for outcome in results if isinstance(outcome, SweepOutcome)]


SWEEP_ARTIFACT_KIND = "ise-sweep-report"
SWEEP_ARTIFACT_VERSION = 1


@dataclass
class SweepReport:
    """Everything a (possibly checkpointed) sweep run produced.

    ``outcomes`` holds solved (or journal-restored) cases in input order.
    Shards that were quarantined after the retry policy gave up land in
    ``failed`` (key + structured error context + attempts); shards a budget
    expiry left unsolved land in ``pending`` — both are *surfaced* here
    instead of aborting the sweep, and ``pending`` shards re-solve on a
    later ``resume=True`` run.
    """

    outcomes: list[SweepOutcome] = field(default_factory=list)
    failed: list[dict[str, Any]] = field(default_factory=list)
    pending: list[str] = field(default_factory=list)
    restored: int = 0
    solved: int = 0
    journal_path: str | None = None
    parallel_fallback: str | None = None
    resilience: ResilienceReport = field(default_factory=ResilienceReport)
    #: LP basis-stash counters (hits/misses/evictions) for warm-started
    #: sweeps; None when warm starting was off.  Covers solves run in the
    #: driver process (serial and thread modes) — process-pool workers'
    #: stashes die with the pool and are not aggregated here.
    lp_stash: dict[str, int] | None = None

    @property
    def ok(self) -> bool:
        """True when every shard produced an outcome this run."""
        return not self.failed and not self.pending

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": SWEEP_ARTIFACT_KIND,
            "version": SWEEP_ARTIFACT_VERSION,
            "outcomes": [outcome_to_dict(o) for o in self.outcomes],
            "failed": [dict(record) for record in self.failed],
            "pending": list(self.pending),
            "restored": self.restored,
            "solved": self.solved,
            "journal_path": self.journal_path,
            "parallel_fallback": self.parallel_fallback,
            "resilience": self.resilience.to_dict(),
            "lp_stash": dict(self.lp_stash) if self.lp_stash is not None else None,
        }


def sweep_fingerprint(
    cases: Sequence[SweepCase], config: "ISEConfig | None", postopt: bool
) -> str:
    """Run identity for checkpoint journals: cases + solve configuration."""
    identity = json.dumps(
        {
            "keys": [case_key(case) for case in cases],
            "config": repr(config),
            "postopt": postopt,
        },
        sort_keys=True,
    )
    return checksum(identity)


def _report_from_shards(
    shards: Sequence[ShardOutcome], keys: Sequence[str]
) -> SweepReport:
    """Fold per-shard outcomes into a :class:`SweepReport`."""
    report = SweepReport()
    for shard in shards:
        if shard.status == "restored":
            report.restored += 1
            report.outcomes.append(shard.value)
        elif shard.status == "done":
            report.solved += 1
            report.outcomes.append(shard.value)
        elif shard.status == "pending":
            report.pending.append(shard.key)
        else:
            report.failed.append(
                {
                    "key": shard.key,
                    "error": shard.error_context or {},
                    "attempts": shard.attempts,
                }
            )
            report.resilience.record_note(
                f"sweep shard {shard.key} quarantined after "
                f"{shard.attempts} attempt(s): "
                f"{(shard.error_context or {}).get('type', 'Exception')}"
            )
            report.resilience.degraded = True
    if report.pending:
        report.resilience.record_note(
            f"{len(report.pending)} of {len(keys)} shard(s) left pending by "
            "budget expiry; resume to complete them"
        )
    if report.restored:
        report.resilience.record_note(
            f"{report.restored} shard(s) restored from checkpoint journal"
        )
    return report


def run_sweep_report(
    cases: Iterable[SweepCase],
    config: "ISEConfig | None" = None,
    postopt: bool = True,
    *,
    workers: int | None = None,
    mode: str = "auto",
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    max_shard_retries: int = 2,
    budget: "SolveBudget | None" = None,
) -> SweepReport:
    """Solve every case, surfacing failures on the report instead of raising.

    With ``checkpoint_dir`` each completed case is durably journaled as it
    finishes (``<checkpoint_dir>/sweep.journal.jsonl``) and ``resume=True``
    skips the journal's ``done`` shards — see the module docstring for the
    crash-safety contract.  ``budget`` installs a sweep-level ambient
    :class:`~repro.core.resilience.SolveBudget` around the whole fan-out;
    cases that run after it expires are left pending (and journaled state
    stays resumable).  Without ``checkpoint_dir`` the same classification
    applies but nothing is journaled.
    """
    from ..core.parallel import last_fallback_reason, parallel_map

    tasks = [_CaseTask(case=case, config=config, postopt=postopt) for case in cases]
    keys = [case_key(task.case) for task in tasks]

    with budget_scope(budget.start() if budget is not None else None):
        if checkpoint_dir is not None:
            journal = ShardJournal(Path(checkpoint_dir) / "sweep.journal.jsonl")
            run = CheckpointedRun(
                journal=journal,
                fingerprint=sweep_fingerprint(
                    [task.case for task in tasks], config, postopt
                ),
                resume=resume,
                max_shard_retries=max_shard_retries,
            )
            shards = run.map(
                _solve_case,
                tasks,
                keys,
                encode=outcome_to_dict,
                decode=outcome_from_dict,
                max_workers=workers,
                mode=mode,
            )
            report = _report_from_shards(shards, keys)
            report.journal_path = str(journal.path)
            report.parallel_fallback = run.parallel_fallback
        else:
            results = parallel_map(
                _solve_case,
                tasks,
                max_workers=workers,
                mode=mode,
                return_exceptions=True,
            )
            shards = []
            for key, value in zip(keys, results):
                if isinstance(value, SweepOutcome):
                    shards.append(ShardOutcome(key=key, status="done", value=value, attempts=1))
                elif isinstance(value, LimitExceededError):
                    shards.append(
                        ShardOutcome(
                            key=key,
                            status="pending",
                            error=value,
                            error_context=shard_error_context(value),
                            attempts=1,
                        )
                    )
                else:
                    shards.append(
                        ShardOutcome(
                            key=key,
                            status="failed",
                            error=value if isinstance(value, BaseException) else None,
                            error_context=shard_error_context(value)
                            if isinstance(value, BaseException)
                            else {"type": "UnknownResult", "message": repr(value)},
                            attempts=1,
                        )
                    )
            report = _report_from_shards(shards, keys)
            report.parallel_fallback = last_fallback_reason()

    if report.parallel_fallback:
        report.resilience.record_note(
            f"parallel pool degraded to serial: {report.parallel_fallback}"
        )
    if config is not None and getattr(config, "lp_warm_start", False):
        from ..lp import default_stash

        stash = getattr(config, "lp_warm_stash", None) or default_stash()
        report.lp_stash = stash.snapshot()
    return report


def save_sweep_report(report: SweepReport, path: str | Path) -> None:
    """Atomically write a sweep report artifact (checksummed envelope)."""
    dump_artifact(report.to_dict(), path)


def load_sweep_outcomes(path: str | Path) -> list[SweepOutcome]:
    """Read the outcomes of a saved sweep report artifact.

    Raises :class:`~repro.core.errors.InvalidArtifactError` (with the path)
    for payloads that are not sweep reports or have malformed outcomes.
    """
    payload = load_artifact(path)
    try:
        if payload.get("kind") != SWEEP_ARTIFACT_KIND:
            raise InvalidArtifactError(
                f"not a sweep report artifact: kind={payload.get('kind')!r}",
                field="kind",
            )
        if payload.get("version") != SWEEP_ARTIFACT_VERSION:
            raise InvalidArtifactError(
                f"unsupported sweep report version {payload.get('version')!r}",
                field="version",
            )
        rows = payload.get("outcomes", [])
        return [outcome_from_dict(row) for row in rows]
    except InvalidArtifactError as exc:
        if exc.path is None:
            exc.path = str(path)
        raise


def sweep_table(outcomes: Sequence[SweepOutcome], title: str = "sweep") -> Table:
    """Tabulate sweep outcomes in the standard report format."""
    table = Table(
        title=title,
        columns=[
            "family", "n", "m", "T", "seed", "cals", "postopt", "LB",
            "ratio", "machines", "valid", "ms",
        ],
    )
    for outcome in outcomes:
        case = outcome.case
        table.add_row(
            case.family, case.n, case.machines, case.calibration_length,
            case.seed, outcome.calibrations, outcome.calibrations_postopt,
            outcome.lower_bound, outcome.quality_ratio,
            outcome.machines_used, outcome.valid,
            outcome.wall_seconds * 1e3,
        )
    return table
