"""Fixed-width table rendering for the benchmark harness.

The benches print paper-style result tables to stdout and mirror them into
``benchmarks/results/``; this module is the single formatter so every
experiment reports in the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..core.atomicio import atomic_write_text
from ..core.tolerance import close

__all__ = ["Table", "format_value", "write_report"]


def format_value(value: Any) -> str:
    """Consistent scalar formatting: floats to 3 decimals, pass-through else."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if close(value, round(value)) and abs(value) < 1e12:
            return str(int(round(value)))
        return f"{value:.3f}"
    return str(value)


@dataclass
class Table:
    """A fixed-width text table with a title and aligned columns."""

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row; positional values map to columns in order.

        Keyword form ``add_row(col=value, ...)`` is also supported (all
        columns must be provided).
        """
        if values and named:
            raise ValueError("use either positional or named values, not both")
        if named:
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([format_value(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [f"== {self.title} ==", header, sep]
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def write_report(table: Table, directory: str | Path, name: str) -> Path:
    """Mirror a rendered table into ``directory/name.txt``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    atomic_write_text(path, table.render() + "\n")
    return path
