"""Incremental ISE sessions: streaming arrivals with never-retract commits.

The offline solver answers one frozen instance; a *session* lives in time.
Jobs stream in (:meth:`ISESession.submit_job`), the session clock moves
forward (:meth:`ISESession.advance`), and each calibration crosses — once,
irreversibly — from *tentative* to *committed* when its start time passes
the session's commit horizon: a calibration starting at ``s`` commits as
soon as ``s < now + commit_horizon`` (tolerance-strict), because at that
point the machine is warming up and no software rollback can un-spend it.

The two state pools obey one invariant, validated on every mutation:

* **committed** — append-only map ``(start, machine) -> locked
  placements``.  Nothing here is ever dropped, moved, or re-machined;
  a candidate state that would do so raises
  :class:`~repro.core.errors.CommitRetractionError` and is not installed.
* **tentative** — an ordinary offline schedule over the still-open jobs,
  freely re-solved on every arrival.  Tentative calibrations are placed on
  a fresh machine block *above* every committed machine (machine
  augmentation, after Im–Moseley–Pruhs–Stein's online machine
  minimization), so a re-plan can never collide with committed work.

Arrival handling tries a cheap **local repair** first — slotting the new
job into spare capacity of an already-committed calibration (the
calibration is paid for; filling it is free) — and only falls back to a
full offline re-solve of the open jobs when no committed gap fits.

Durability: every accepted job and clock advance is appended to a
per-session :class:`~repro.online.journal.SessionJournal` *before* the
in-memory state is installed, and every commit is appended as a witness
record right after.  Recovery re-executes the operation log (the offline
solver is deterministic), cross-checks the re-derived committed set
against the journaled witnesses — a witnessed commit absent from the
recovered state would be a retraction and raises
:class:`CommitRetractionError`, which the chaos suite proves unreachable —
and heals witness records lost to a crash between the operation append
and the commit append.  Client-supplied job ids make submission
idempotent under replay: re-submitting an identical job is a no-op.

Sessions are single-writer: the serve layer's
:class:`~repro.serve.sessions.SessionManager` wraps each session in a
lock and a fencing epoch; the session object itself is not thread-safe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import (
    CommitRetractionError,
    InvalidInstanceError,
    SessionConflictError,
)
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob, empty_schedule
from ..core.solver import ISEConfig, solve_ise
from ..core.tolerance import leq, lt
from .journal import SessionJournal

__all__ = ["AdvanceResult", "ISESession", "SubmitReceipt"]

_CalKey = tuple[float, int]


@dataclass(frozen=True, slots=True)
class SubmitReceipt:
    """What happened to one submitted job.

    Attributes:
        job_id: The client-supplied job id.
        replayed: True when the submission duplicated an identical earlier
            one and was a no-op (the idempotency contract).
        repaired: True when the job was slotted into spare capacity of a
            committed calibration instead of triggering a re-plan.
        start: The job's current scheduled start time.
        machine: The job's current machine.
        locked: True when the placement is already immutable (inside a
            committed calibration).
        newly_committed: Calibrations the submission pushed past the
            commit horizon, as ``(start, machine)`` pairs.
    """

    job_id: int
    replayed: bool
    repaired: bool
    start: float
    machine: int
    locked: bool
    newly_committed: tuple[_CalKey, ...] = ()


@dataclass(frozen=True, slots=True)
class AdvanceResult:
    """What a clock advance committed.

    Attributes:
        now: The session clock after the advance.
        newly_committed: Calibrations that crossed the commit horizon, as
            ``(start, machine)`` pairs.
    """

    now: float
    newly_committed: tuple[_CalKey, ...]


def _offset_schedule(schedule: Schedule, base: int) -> Schedule:
    """Shift every machine index in ``schedule`` up by ``base``."""
    if base == 0:
        return schedule
    cals = tuple(
        Calibration(start=c.start, machine=c.machine + base)
        for c in schedule.calibrations
    )
    placements = tuple(
        ScheduledJob(start=p.start, machine=p.machine + base, job_id=p.job_id)
        for p in schedule.placements
    )
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=cals,
            num_machines=schedule.num_machines + base,
            calibration_length=schedule.calibration_length,
        ),
        placements=placements,
        speed=schedule.speed,
    )


class ISESession:
    """One streaming ISE solving session.  See the module docstring.

    Construct via :meth:`create` (fresh, optionally journaled) or
    :meth:`open` (recover from an existing journal); the bare constructor
    is internal.
    """

    def __init__(
        self,
        session_id: str,
        *,
        machines: int,
        calibration_length: float,
        commit_horizon: float,
        config: ISEConfig,
        journal: SessionJournal | None,
    ) -> None:
        if machines < 1:
            raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
        if calibration_length <= 0:
            raise InvalidInstanceError(
                f"calibration length must be positive, got {calibration_length}"
            )
        if commit_horizon < 0:
            raise SessionConflictError(
                f"commit horizon must be >= 0, got {commit_horizon}"
            )
        self.session_id = session_id
        self.machines = machines
        self.calibration_length = calibration_length
        self.commit_horizon = commit_horizon
        self.config = config
        self._journal = journal
        self._replaying = False
        self._now = 0.0
        self._fence = 0
        # job_id -> (Job, arrival time), insertion-ordered.
        self._jobs: dict[int, tuple[Job, float]] = {}
        # (start, machine) -> locked placements, absolute machine indices.
        self._committed: dict[_CalKey, tuple[ScheduledJob, ...]] = {}
        self._locked: set[int] = set()
        self._tentative: Schedule = empty_schedule(calibration_length)
        self._replans = 0
        self._repairs = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Construction and recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path | None,
        session_id: str,
        *,
        machines: int,
        calibration_length: float,
        commit_horizon: float = 0.0,
        config: ISEConfig | None = None,
        sync: str = "full",
    ) -> "ISESession":
        """Start a fresh session.

        ``directory`` names where the durable journal lives; pass None for
        an ephemeral in-memory session (used by the overhead benches — the
        serve layer always journals).  ``sync`` picks the journal's
        durability policy (:data:`SessionJournal.SYNC_POLICIES`): ``"full"``
        fdatasyncs every mutation, ``"os"`` flushes to the kernel only —
        still SIGKILL-proof, but a machine crash may lose the newest
        operations (clients replay them idempotently).
        """
        config = config or ISEConfig()
        journal = None
        if directory is not None:
            journal = SessionJournal(
                cls.journal_path(directory, session_id), sync=sync
            )
            journal.create(
                session_id,
                machines=machines,
                calibration_length=calibration_length,
                commit_horizon=commit_horizon,
                mm_algorithm=config.mm_algorithm,
                lp_backend=config.lp_backend,
            )
        session = cls(
            session_id,
            machines=machines,
            calibration_length=calibration_length,
            commit_horizon=commit_horizon,
            config=config,
            journal=journal,
        )
        session._bump_fence()
        return session

    @classmethod
    def open(
        cls,
        directory: str | Path,
        session_id: str,
        *,
        config: ISEConfig | None = None,
        sync: str = "full",
    ) -> "ISESession":
        """Recover a session from its journal (see the module docstring).

        Re-executes the operation log, cross-checks every journaled commit
        witness against the re-derived committed set (raising
        :class:`CommitRetractionError` on any retraction — unreachable
        unless the journal itself was tampered with), heals witness
        records lost to a crash, and bumps the fencing epoch.
        """
        journal = SessionJournal(
            cls.journal_path(directory, session_id), sync=sync
        )
        state = journal.load()
        header = state.header
        # Solver knobs are pinned in the header so replay re-derives the
        # exact same schedules the original process computed.
        config = replace(
            config or ISEConfig(),
            mm_algorithm=str(header["mm_algorithm"]),
            lp_backend=str(header["lp_backend"]),
        )
        session = cls(
            str(header["session"]),
            machines=int(header["machines"]),
            calibration_length=float(header["calibration_length"]),
            commit_horizon=float(header["commit_horizon"]),
            config=config,
            journal=journal,
        )
        session._replaying = True
        try:
            witnesses: dict[_CalKey, tuple[tuple[int, float], ...]] = {}
            for record in state.records:
                kind = record["kind"]
                if kind == "fence":
                    session._fence = max(session._fence, int(record["epoch"]))
                elif kind == "job":
                    session.submit_job(
                        int(record["job"]),
                        release=float(record["release"]),
                        deadline=float(record["deadline"]),
                        processing=float(record["processing"]),
                        at=float(record["at"]),
                    )
                elif kind == "advance":
                    session.advance(float(record["to"]))
                elif kind == "commit":
                    key = (float(record["start"]), int(record["machine"]))
                    witnesses[key] = tuple(
                        (int(job_id), float(start))
                        for job_id, start in record["jobs"]
                    )
        finally:
            session._replaying = False
        session._cross_check(witnesses)
        session._heal(witnesses)
        session._bump_fence()
        return session

    @staticmethod
    def journal_path(directory: str | Path, session_id: str) -> Path:
        """Where a session's journal lives under ``directory``."""
        return Path(directory) / f"{session_id}.journal.jsonl"

    def _cross_check(
        self, witnesses: Mapping[_CalKey, tuple[tuple[int, float], ...]]
    ) -> None:
        """Every journaled commit must survive replay, jobs included."""
        retracted: list[_CalKey] = []
        for key, jobs in witnesses.items():
            placed = {
                (p.job_id, p.start) for p in self._committed.get(key, ())
            }
            if key not in self._committed or not set(jobs) <= placed:
                retracted.append(key)
        if retracted:
            raise CommitRetractionError(
                f"recovery of session {self.session_id!r} lost "
                f"{len(retracted)} journaled commit(s) — the replay "
                "re-derived a state that retracts durable calibrations",
                retracted=tuple(sorted(retracted)),
            )

    def _heal(
        self, witnesses: Mapping[_CalKey, tuple[tuple[int, float], ...]]
    ) -> None:
        """Re-append witness records a crash cut off mid-commit."""
        for key in sorted(self._committed):
            placed = tuple(
                sorted((p.job_id, p.start) for p in self._committed[key])
            )
            if tuple(sorted(witnesses.get(key, ()))) != placed:
                self._append_commit_record(key)

    def _bump_fence(self) -> None:
        self._fence += 1
        if self._journal is not None:
            self._journal.append_record({"kind": "fence", "epoch": self._fence})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The session clock (largest advance / arrival time seen)."""
        return self._now

    @property
    def fence(self) -> int:
        """The current fencing epoch (bumped on every create/open)."""
        return self._fence

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def job_count(self) -> int:
        return len(self._jobs)

    @property
    def replans(self) -> int:
        """Full offline re-solves performed so far."""
        return self._replans

    @property
    def repairs(self) -> int:
        """Arrivals absorbed by local repair into committed capacity."""
        return self._repairs

    @property
    def journal_write_seconds(self) -> float:
        """Cumulative wall time spent in durable journal writes (0 if none).

        The exact price this session has paid for durability — measured at
        the write, so overhead accounting never races a separate
        unjournaled control run.
        """
        return 0.0 if self._journal is None else self._journal.write_seconds

    @property
    def committed_calibrations(self) -> tuple[Calibration, ...]:
        """The immutable calibrations, sorted."""
        return tuple(
            sorted(Calibration(start=s, machine=q) for s, q in self._committed)
        )

    @property
    def schedule(self) -> Schedule:
        """The full current schedule: committed plus tentative."""
        cals = list(self.committed_calibrations) + list(
            self._tentative.calibrations
        )
        placements = [p for group in self._committed.values() for p in group]
        placements += list(self._tentative.placements)
        machines = max(
            [self.machines]
            + [c.machine + 1 for c in cals]
            + [p.machine + 1 for p in placements]
        )
        return Schedule(
            calibrations=CalibrationSchedule(
                calibrations=tuple(sorted(cals)),
                num_machines=machines,
                calibration_length=self.calibration_length,
            ),
            placements=tuple(placements),
        )

    def state_digest(self) -> str:
        """SHA-256 over the canonical scheduling state.

        Recovery must reproduce this byte-identically; the fencing epoch is
        deliberately excluded because a recovery legitimately bumps it.
        """
        payload: dict[str, Any] = {
            "session": self.session_id,
            "machines": self.machines,
            "calibration_length": self.calibration_length,
            "commit_horizon": self.commit_horizon,
            "now": self._now,
            "jobs": [
                [job_id, job.release, job.deadline, job.processing, at]
                for job_id, (job, at) in sorted(self._jobs.items())
            ],
            "committed": [
                [start, machine, sorted((p.job_id, p.start) for p in group)]
                for (start, machine), group in sorted(self._committed.items())
            ],
            "tentative": {
                "calibrations": [
                    [c.start, c.machine] for c in self._tentative.calibrations
                ],
                "placements": [
                    [p.job_id, p.start, p.machine]
                    for p in self._tentative.placements
                ],
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def submit_job(
        self,
        job_id: int,
        *,
        release: float,
        deadline: float,
        processing: float,
        at: float | None = None,
    ) -> SubmitReceipt:
        """Accept one streamed job arriving at time ``at`` (default: now).

        Re-submitting an identical job is a no-op (``replayed=True`` on the
        receipt); the same id with different fields raises
        :class:`SessionConflictError`.  A rejected submission (conflict or
        infeasibility) leaves both state and journal untouched.
        """
        self._require_open()
        at = self._now if at is None else float(at)
        if lt(at, self._now):
            raise SessionConflictError(
                f"job {job_id} arrives at {at} but the session clock is "
                f"already at {self._now}; arrivals cannot be backdated"
            )
        job = Job(
            job_id=int(job_id),
            release=float(release),
            deadline=float(deadline),
            processing=float(processing),
        )
        existing = self._jobs.get(job.job_id)
        if existing is not None:
            prior = existing[0]
            if prior == job:
                placement = self._placement_of(job.job_id)
                return SubmitReceipt(
                    job_id=job.job_id,
                    replayed=True,
                    repaired=False,
                    start=placement.start,
                    machine=placement.machine,
                    locked=job.job_id in self._locked,
                )
            raise SessionConflictError(
                f"job {job.job_id} was already submitted with different "
                f"fields; idempotent replay covers identical payloads only"
            )
        if job.processing <= 0:
            raise InvalidInstanceError(
                f"job {job.job_id} has non-positive processing "
                f"{job.processing}"
            )
        if not leq(job.processing, self.calibration_length):
            raise InvalidInstanceError(
                f"job {job.job_id} has processing {job.processing} > "
                f"calibration length {self.calibration_length}"
            )
        effective = max(job.release, at)
        if not leq(effective + job.processing, job.deadline):
            raise SessionConflictError(
                f"job {job.job_id} cannot meet deadline {job.deadline}: "
                f"earliest completion is {effective + job.processing}"
            )

        # -- candidate state (copies; nothing installed until journaled) --
        new_now = max(self._now, at)
        committed = dict(self._committed)
        locked = set(self._locked)
        jobs = dict(self._jobs)
        tentative, due_before = self._commit_due(
            self._tentative, committed, locked, new_now, jobs
        )
        jobs[job.job_id] = (job, at)
        placement = self._repair_into_committed(committed, job, new_now)
        repaired = placement is not None
        due_after: list[_CalKey] = []
        if placement is not None:
            locked.add(job.job_id)
        else:
            open_jobs = [
                (j, arrival)
                for jid, (j, arrival) in jobs.items()
                if jid not in locked
            ]
            tentative = self._replan(open_jobs, new_now, committed)
            tentative, due_after = self._commit_due(
                tentative, committed, locked, new_now, jobs
            )
        self._check_never_retract(committed, locked)

        # -- durability (one batched fsync), then installation --
        newly = tuple(due_before + due_after)
        records = [
            {
                "kind": "job",
                "job": job.job_id,
                "release": job.release,
                "deadline": job.deadline,
                "processing": job.processing,
                "at": at,
            }
        ]
        records.extend(self._commit_record(key, committed) for key in newly)
        if placement is not None:
            repair_key = next(
                key
                for key, group in committed.items()
                if key[1] == placement.machine and placement in group
            )
            records.append(self._commit_record(repair_key, committed))
        self._append_records(records)
        self._install(new_now, jobs, committed, locked, tentative)
        if placement is not None:
            self._repairs += 1
        else:
            self._replans += 1
        final = self._placement_of(job.job_id)
        return SubmitReceipt(
            job_id=job.job_id,
            replayed=False,
            repaired=repaired,
            start=final.start,
            machine=final.machine,
            locked=job.job_id in self._locked,
            newly_committed=newly,
        )

    def advance(self, to: float) -> AdvanceResult:
        """Move the session clock to ``to``, committing due calibrations."""
        self._require_open()
        to = float(to)
        if lt(to, self._now):
            raise SessionConflictError(
                f"cannot advance the session clock backwards: now is "
                f"{self._now}, requested {to}"
            )
        to = max(to, self._now)
        committed = dict(self._committed)
        locked = set(self._locked)
        tentative, due = self._commit_due(
            self._tentative, committed, locked, to, self._jobs
        )
        self._check_never_retract(committed, locked)
        records = [{"kind": "advance", "to": to}]
        records.extend(self._commit_record(key, committed) for key in due)
        self._append_records(records)
        self._install(to, dict(self._jobs), committed, locked, tentative)
        return AdvanceResult(now=to, newly_committed=tuple(due))

    def close(self) -> None:
        """Mark the session closed; further mutations are rejected."""
        self._closed = True
        if self._journal is not None:
            self._journal.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise SessionConflictError(
                f"session {self.session_id!r} is closed"
            )

    def _commit_due(
        self,
        tentative: Schedule,
        committed: dict[_CalKey, tuple[ScheduledJob, ...]],
        locked: set[int],
        now: float,
        jobs: Mapping[int, tuple[Job, float]],
    ) -> tuple[Schedule, list[_CalKey]]:
        """Move tentative calibrations past the horizon into ``committed``.

        A calibration starting at ``s`` is due once ``s < now + horizon``
        (tolerance-strict), so with horizon 0 nothing commits at the
        instant of its own start — which is what makes a session fed all
        jobs at t=0 reproduce the offline solve exactly.
        """
        horizon = now + self.commit_horizon
        due = [c for c in tentative.calibrations if lt(c.start, horizon)]
        if not due:
            return tentative, []
        processing = {
            job_id: job.processing for job_id, (job, _) in jobs.items()
        }
        due_keys: list[_CalKey] = []
        claimed: dict[_CalKey, list[ScheduledJob]] = {}
        remaining_placements = []
        due_set = {(c.start, c.machine) for c in due}
        for placement in tentative.placements:
            cal = tentative.enclosing_calibration(
                placement, processing[placement.job_id]
            )
            if cal is not None and (cal.start, cal.machine) in due_set:
                claimed.setdefault((cal.start, cal.machine), []).append(
                    placement
                )
            else:
                remaining_placements.append(placement)
        for cal in sorted(due):
            key = (cal.start, cal.machine)
            group = tuple(sorted(claimed.get(key, [])))
            committed[key] = group
            locked.update(p.job_id for p in group)
            due_keys.append(key)
        remaining_cals = tuple(
            c
            for c in tentative.calibrations
            if (c.start, c.machine) not in due_set
        )
        new_tentative = Schedule(
            calibrations=CalibrationSchedule(
                calibrations=remaining_cals,
                num_machines=tentative.num_machines,
                calibration_length=self.calibration_length,
            ),
            placements=tuple(remaining_placements),
        )
        return new_tentative, due_keys

    def _repair_into_committed(
        self,
        committed: dict[_CalKey, tuple[ScheduledJob, ...]],
        job: Job,
        now: float,
    ) -> ScheduledJob | None:
        """First-fit the job into spare capacity of a committed calibration.

        The calibration is already paid for, so filling a gap costs zero
        extra calibrations and no re-solve; the placement locks
        immediately.  Returns None when no committed gap fits.
        """
        T = self.calibration_length
        for key in sorted(committed):
            start, machine = key
            lo = max(job.release, now, start)
            hi = min(job.deadline, start + T)
            if not leq(lo + job.processing, hi):
                continue
            candidate = lo
            feasible = True
            for placed in committed[key]:
                placed_end = placed.end(self._processing_of(placed.job_id))
                if leq(candidate + job.processing, placed.start):
                    break
                if lt(candidate, placed_end):
                    candidate = placed_end
            if not leq(candidate + job.processing, hi):
                feasible = False
            if feasible:
                placement = ScheduledJob(
                    start=candidate, machine=machine, job_id=job.job_id
                )
                committed[key] = tuple(sorted(committed[key] + (placement,)))
                return placement
        return None

    def _replan(
        self,
        open_jobs: Iterable[tuple[Job, float]],
        now: float,
        committed: Mapping[_CalKey, tuple[ScheduledJob, ...]],
    ) -> Schedule:
        """Offline-solve the open jobs on a fresh machine block.

        Open jobs get effective release ``max(r_j, now)`` — nothing can
        start in the past — and the block starts above every committed
        machine, so the re-plan cannot overlap committed calibrations no
        matter what the offline solver does.
        """
        clamped = tuple(
            Job(
                job_id=job.job_id,
                release=max(job.release, now),
                deadline=job.deadline,
                processing=job.processing,
            )
            for job, _ in open_jobs
        )
        base = max((machine + 1 for _, machine in committed), default=0)
        if not clamped:
            return empty_schedule(self.calibration_length)
        instance = Instance(
            jobs=clamped,
            machines=self.machines,
            calibration_length=self.calibration_length,
            name=f"session:{self.session_id}@{now}",
        )
        result = solve_ise(instance, self.config)
        return _offset_schedule(result.schedule.compact_machines(), base)

    def _check_never_retract(
        self,
        committed: Mapping[_CalKey, tuple[ScheduledJob, ...]],
        locked: set[int],
    ) -> None:
        """The machine-checked invariant: commits only ever grow.

        Compares the candidate committed pool against the installed one;
        any calibration or locked placement that would disappear aborts
        the mutation with :class:`CommitRetractionError`.
        """
        retracted: list[_CalKey] = []
        for key, group in self._committed.items():
            before = {(p.job_id, p.start, p.machine) for p in group}
            after = {
                (p.job_id, p.start, p.machine)
                for p in committed.get(key, ())
            }
            if key not in committed or not before <= after:
                retracted.append(key)
        if retracted:
            raise CommitRetractionError(
                f"mutation of session {self.session_id!r} would retract "
                f"{len(retracted)} committed calibration(s); the committed "
                "pool is append-only",
                retracted=tuple(sorted(retracted)),
            )
        if not self._locked <= locked:
            raise CommitRetractionError(
                f"mutation of session {self.session_id!r} would unlock "
                f"jobs {sorted(self._locked - locked)}; locked placements "
                "are immutable",
                retracted=(),
            )

    def _install(
        self,
        now: float,
        jobs: dict[int, tuple[Job, float]],
        committed: dict[_CalKey, tuple[ScheduledJob, ...]],
        locked: set[int],
        tentative: Schedule,
    ) -> None:
        self._now = now
        self._jobs = jobs
        self._committed = committed
        self._locked = locked
        self._tentative = tentative

    def _append_record(self, record: dict[str, Any]) -> None:
        self._append_records([record])

    def _append_records(self, records: list[dict[str, Any]]) -> None:
        """One durable batch per mutation: op record + its commit witnesses.

        Batching everything a mutation produces into a single fsync'd write
        keeps the journal's end-to-end overhead a rounding error next to the
        solves; recovery semantics are unchanged because replay re-derives
        state from the operation records and any torn suffix of the batch
        truncates and re-heals exactly like separately-appended lines.
        """
        if self._journal is not None and not self._replaying:
            self._journal.append_records(records)

    def _commit_record(
        self,
        key: _CalKey,
        committed: dict[_CalKey, tuple[ScheduledJob, ...]],
    ) -> dict[str, Any]:
        start, machine = key
        return {
            "kind": "commit",
            "start": start,
            "machine": machine,
            "jobs": sorted(
                [p.job_id, p.start] for p in committed[key]
            ),
        }

    def _append_commit_record(self, key: _CalKey) -> None:
        self._append_record(self._commit_record(key, self._committed))

    def _processing_of(self, job_id: int) -> float:
        return self._jobs[job_id][0].processing

    def _placement_of(self, job_id: int) -> ScheduledJob:
        for group in self._committed.values():
            for placement in group:
                if placement.job_id == job_id:
                    return placement
        return self._tentative.placement_of(job_id)

    def _cal_of(self, placement: ScheduledJob) -> float:
        """Start of the committed calibration holding ``placement``."""
        for (start, machine), group in self._committed.items():
            if machine == placement.machine and placement in group:
                return start
        raise KeyError(
            f"placement of job {placement.job_id} is not in a committed "
            "calibration"
        )
