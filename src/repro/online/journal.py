"""Durable per-session journals for the online ISE solver.

A long-lived session must survive a SIGKILL at any instant with nothing
retracted: every accepted job, every committed calibration, and every
ownership (fence) change is appended to one per-session JSONL journal
before the in-memory state that reflects it is installed.  The line format
is *exactly* the checkpoint layer's (:func:`repro.core.checkpoint.
line_checksum` / :func:`~repro.core.checkpoint.append_journal_line`):
every line embeds a SHA-256 of its own content and is flushed +
fdatasynced before the append returns, so both journal families share one
torn-tail / mid-file-corruption recovery story.

Record kinds (all carry a strictly increasing ``seq``; line 1 is the
header)::

    {"seq": 0, "kind": "header", "version": 1, "session": "s1",
     "machines": 2, "calibration_length": 10.0, "commit_horizon": 0.0,
     "mm_algorithm": "best_greedy", "lp_backend": "highs", "sha": ...}
    {"seq": 1, "kind": "fence", "epoch": 1, ...}
    {"seq": 2, "kind": "job", "job": 7, "release": 0.0, "deadline": 12.0,
     "processing": 3.0, "at": 0.0, ...}
    {"seq": 3, "kind": "advance", "to": 5.0, ...}
    {"seq": 4, "kind": "commit", "start": 2.0, "machine": 0,
     "jobs": [[7, 2.0]], ...}

``job`` and ``advance`` records are *operations*: recovery re-executes
them deterministically.  ``commit`` records are *witnesses*: recovery
cross-checks the re-derived committed set against them — a journaled
commit missing from the recovered state is a retraction, which recovery
must make unreachable.  ``fence`` records carry the monotone ownership
epoch; every (re)open appends a higher one.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.checkpoint import (
    TornTailWarning,
    append_journal_line,
    journal_payload,
    verify_journal_line,
)
from ..core.errors import CorruptArtifactError, InvalidArtifactError

__all__ = ["SESSION_JOURNAL_VERSION", "SessionJournal", "SessionJournalState"]

SESSION_JOURNAL_VERSION = 1

#: Record kinds that may follow the header.
_RECORD_KINDS = ("fence", "job", "advance", "commit")


@dataclass(frozen=True)
class SessionJournalState:
    """A verified journal replay: the header plus every session record."""

    header: dict[str, Any]
    records: tuple[dict[str, Any], ...]

    @property
    def session_id(self) -> str:
        return str(self.header.get("session", ""))

    def last_epoch(self) -> int:
        """The highest fence epoch recorded (0 when none — corrupt-ish)."""
        epoch = 0
        for record in self.records:
            if record.get("kind") == "fence":
                epoch = max(epoch, int(record.get("epoch", 0)))
        return epoch

    def committed_witnesses(self) -> tuple[dict[str, Any], ...]:
        """Every ``commit`` record, in append order."""
        return tuple(r for r in self.records if r.get("kind") == "commit")


class SessionJournal:
    """Append-only, per-line-checksummed JSONL journal for one session.

    Mirrors :class:`~repro.core.checkpoint.ShardJournal` byte-format-wise;
    the difference is the record vocabulary (operations + commit witnesses
    + fence epochs instead of shard outcomes).  ``append_records`` is the
    single choke point every durable mutation goes through — which is also
    what the chaos suite's session crash injector wraps.
    """

    #: Durability policies: ``"full"`` fdatasyncs every batch (survives a
    #: machine crash); ``"os"`` flushes to the kernel only (survives any
    #: process death — SIGKILL included — but a power loss may lose the
    #: most recent operations).  Replay consistency is identical.
    SYNC_POLICIES = ("full", "os")

    def __init__(self, path: str | Path, *, sync: str = "full") -> None:
        if sync not in self.SYNC_POLICIES:
            raise ValueError(
                f"unknown sync policy {sync!r}; use one of {self.SYNC_POLICIES}"
            )
        self.path = Path(path)
        self.sync = sync
        self._seq = 0
        self._fd: int | None = None
        #: Cumulative wall time spent in durable writes, in seconds — the
        #: exact price of durability, for overhead accounting (benches,
        #: ops dashboards) without racing a separate unjournaled run.
        self.write_seconds = 0.0

    @property
    def exists(self) -> bool:
        return self.path.exists()

    def create(
        self,
        session_id: str,
        *,
        machines: int,
        calibration_length: float,
        commit_horizon: float,
        mm_algorithm: str,
        lp_backend: str,
    ) -> None:
        """Start a fresh journal; refuses to clobber an existing one."""
        if self.path.exists():
            raise InvalidArtifactError(
                f"session journal already exists for {session_id!r}; open it "
                "instead of re-creating (refusing to clobber a session's "
                "durable history)",
                path=self.path,
            )
        self._seq = 0
        append_journal_line(
            self.path,
            {
                "seq": 0,
                "kind": "header",
                "version": SESSION_JOURNAL_VERSION,
                "session": session_id,
                "machines": machines,
                "calibration_length": calibration_length,
                "commit_horizon": commit_horizon,
                "mm_algorithm": mm_algorithm,
                "lp_backend": lp_backend,
            },
            append=False,
        )
        self._writer()  # pay the open() here, not on the first mutation

    def append_record(self, record: dict[str, Any]) -> None:
        """Durably append one record (seq assigned here, flushed + synced)."""
        self.append_records([record])

    def append_records(self, records: list[dict[str, Any]]) -> None:
        """Durably append a batch of records under ONE flush + fdatasync.

        This is the single choke point every durable mutation goes through
        (``append_record`` delegates here), so one ``submit_job`` or
        ``advance`` — its operation record plus every commit witness it
        produced — costs one durability round-trip instead of one per
        record.  Crash-wise nothing changes: the kernel may persist any
        prefix, a torn final line truncates on replay, and recovery's
        heal pass re-appends witnesses the crash cut off.
        """
        if not records:
            return
        stamped = []
        for record in records:
            kind = record.get("kind")
            if kind not in _RECORD_KINDS:
                raise ValueError(
                    f"unknown session record kind {kind!r}; expected one of "
                    f"{_RECORD_KINDS}"
                )
            self._seq += 1
            stamped.append({**record, "seq": self._seq})
        tic = time.perf_counter()
        fd = self._writer()
        os.write(fd, journal_payload(stamped))
        if self.sync == "full":
            os.fdatasync(fd)
        self.write_seconds += time.perf_counter() - tic

    def _writer(self) -> int:
        """The persistent ``O_APPEND`` descriptor; opened lazily, reused.

        ``O_APPEND`` positions every write at end-of-file *at write time*,
        so the descriptor stays correct even if :meth:`load` truncated a
        torn tail through a separate handle after this one was opened.
        A raw unbuffered ``os.write`` means the batch reaches the kernel
        (SIGKILL-durable) the moment it returns — there is no user-space
        buffer to lose — and costs one syscall, which is what keeps the
        journal's share of serving latency a rounding error.
        """
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        return self._fd

    def close(self) -> None:
        """Release the persistent descriptor (reopened lazily if needed)."""
        if self._fd is not None:
            os.close(self._fd)
        self._fd = None

    def load(self, *, truncate_torn_tail: bool = True) -> SessionJournalState:
        """Replay the journal, verifying every line checksum.

        Same policy as the shard journal: a run of invalid lines at the
        very end is the expected residue of a crash mid-append — truncated
        (with a :class:`~repro.core.checkpoint.TornTailWarning`) so the
        valid prefix replays; an invalid line *followed by* a valid one is
        mid-file damage and raises
        :class:`~repro.core.errors.CorruptArtifactError`.
        """
        raw = self.path.read_bytes()
        text = raw.decode("utf-8", errors="replace")
        offsets: list[int] = []
        lines: list[str] = []
        cursor = 0
        for line in text.splitlines(keepends=True):
            offsets.append(cursor)
            cursor += len(line.encode("utf-8", errors="replace"))
            lines.append(line.rstrip("\n"))
        parsed = [verify_journal_line(line) for line in lines]
        first_bad = next(
            (i for i, record in enumerate(parsed) if record is None), None
        )
        if first_bad is not None:
            if any(record is not None for record in parsed[first_bad + 1 :]):
                raise CorruptArtifactError(
                    f"session journal line {first_bad + 1} is corrupt but "
                    "later lines verify — mid-file damage, refusing to "
                    "trust any of it",
                    path=self.path,
                )
            torn = len(lines) - first_bad
            warnings.warn(
                f"session journal {self.path} ends in a torn tail "
                f"({torn} unverifiable line(s)); truncating — the operation "
                "it would have recorded never became durable",
                TornTailWarning,
                stacklevel=2,
            )
            parsed = parsed[:first_bad]
            if truncate_torn_tail:
                with open(self.path, "r+b") as handle:
                    handle.truncate(offsets[first_bad])
                    handle.flush()
        self._writer()  # warm the append handle before replay appends
        records = [record for record in parsed if record is not None]
        if not records or records[0].get("kind") != "header":
            raise CorruptArtifactError(
                "session journal has no verifiable header line", path=self.path
            )
        header = records[0]
        if header.get("version") != SESSION_JOURNAL_VERSION:
            raise InvalidArtifactError(
                f"unsupported session journal version {header.get('version')!r}",
                path=self.path,
                field="version",
            )
        body = []
        expected_seq = 1
        for record in records[1:]:
            if record.get("kind") not in _RECORD_KINDS or record.get("seq") != expected_seq:
                raise CorruptArtifactError(
                    "session journal record out of sequence at "
                    f"seq={record.get('seq')!r} (expected {expected_seq})",
                    path=self.path,
                )
            expected_seq += 1
            body.append(record)
        self._seq = expected_seq - 1
        return SessionJournalState(header=dict(header), records=tuple(body))
