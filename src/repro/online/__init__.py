"""Online / streaming ISE: durable incremental sessions.

The offline pipelines solve one frozen instance; this package makes the
reproduction *temporal*.  An :class:`~repro.online.session.ISESession`
accepts jobs as they arrive, extends or locally repairs the schedule per
arrival, and — the robustness core — never retracts a calibration once
its start time passes the commit horizon.  Every mutation is journaled
(:class:`~repro.online.journal.SessionJournal`, the checkpoint layer's
checksummed JSONL) before it is installed, so a SIGKILL at any instant
rehydrates the session byte-identically; the serve layer wraps sessions
in fencing epochs so a recovered server rejects stale writers.
"""

from .journal import SESSION_JOURNAL_VERSION, SessionJournal, SessionJournalState
from .session import AdvanceResult, ISESession, SubmitReceipt

__all__ = [
    "SESSION_JOURNAL_VERSION",
    "SessionJournal",
    "SessionJournalState",
    "ISESession",
    "SubmitReceipt",
    "AdvanceResult",
]
