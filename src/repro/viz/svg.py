"""Standalone SVG rendering of ISE schedules (no dependencies).

Produces a self-contained SVG file with one horizontal lane per machine:
calibrated intervals as outlined rectangles, job executions as filled
blocks labeled with their ids, and an optional second panel with the job
windows.  Useful for inspecting schedules larger than the ASCII renderer
can express, and for documentation.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

from ..core.atomicio import atomic_write_text
from ..core.job import Instance, Job
from ..core.schedule import Schedule
from ..core.tolerance import EPS

__all__ = ["schedule_to_svg", "save_schedule_svg"]

_LANE_HEIGHT = 26
_LANE_GAP = 8
_MARGIN = 46
_WINDOW_LANE = 12

# A small color cycle for job blocks (works on white background).
_PALETTE = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]


def _color(job_id: int) -> str:
    return _PALETTE[job_id % len(_PALETTE)]


def schedule_to_svg(
    instance: Instance,
    schedule: Schedule,
    width: int = 1000,
    include_windows: bool = True,
) -> str:
    """Render ``schedule`` as an SVG document string."""
    T = schedule.calibration_length
    job_map = instance.job_map()
    times: list[float] = [c.start for c in schedule.calibrations]
    times += [p.start for p in schedule.placements]
    times += [j.release for j in instance.jobs]
    if not times:
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40">'
            '<text x="10" y="25" font-family="monospace">(empty schedule)'
            "</text></svg>"
        )
    t0 = min(times)
    t1 = max(
        [c.start + T for c in schedule.calibrations]
        + [j.deadline for j in instance.jobs]
        + [
            p.end(job_map[p.job_id].processing, schedule.speed)
            for p in schedule.placements
            if p.job_id in job_map
        ]
    )
    span = max(t1 - t0, EPS)
    plot_width = width - 2 * _MARGIN

    def x(t: float) -> float:
        return _MARGIN + (t - t0) / span * plot_width

    machines = schedule.calibrations.num_machines
    lanes = machines
    window_rows = len(instance.jobs) if include_windows else 0
    height = (
        _MARGIN
        + lanes * (_LANE_HEIGHT + _LANE_GAP)
        + (window_rows * (_WINDOW_LANE + 3) + 30 if include_windows else 0)
        + _MARGIN
    )

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<text x="{_MARGIN}" y="18">'
        f"{html.escape(instance.name or 'ISE schedule')} — "
        f"{schedule.num_calibrations} calibrations, T={T:g}, "
        f"speed={schedule.speed:g}</text>",
    ]

    # Machine lanes.
    for machine in range(machines):
        y = _MARGIN + machine * (_LANE_HEIGHT + _LANE_GAP)
        parts.append(
            f'<text x="4" y="{y + _LANE_HEIGHT * 0.7:.1f}">m{machine}</text>'
        )
        parts.append(
            f'<line x1="{_MARGIN}" y1="{y + _LANE_HEIGHT}" '
            f'x2="{width - _MARGIN}" y2="{y + _LANE_HEIGHT}" '
            'stroke="#ddd" stroke-width="1"/>'
        )
        for cal in schedule.calibrations.on_machine(machine):
            parts.append(
                f'<rect x="{x(cal.start):.1f}" y="{y:.1f}" '
                f'width="{max(x(cal.start + T) - x(cal.start), 1):.1f}" '
                f'height="{_LANE_HEIGHT}" fill="#eef3fa" stroke="#8aa5c8" '
                'stroke-width="1"/>'
            )
        for placement in schedule.jobs_on_machine(machine):
            job = job_map.get(placement.job_id)
            if job is None:
                continue
            end = placement.end(job.processing, schedule.speed)
            block_width = max(x(end) - x(placement.start), 2.0)
            parts.append(
                f'<rect x="{x(placement.start):.1f}" y="{y + 3:.1f}" '
                f'width="{block_width:.1f}" height="{_LANE_HEIGHT - 6}" '
                f'fill="{_color(job.job_id)}" stroke="#333" stroke-width="0.5">'
                f"<title>job {job.job_id}: [{placement.start:g}, {end:g}) "
                f"window [{job.release:g}, {job.deadline:g})</title></rect>"
            )
            if block_width > 14:
                parts.append(
                    f'<text x="{x(placement.start) + 3:.1f}" '
                    f'y="{y + _LANE_HEIGHT * 0.68:.1f}" fill="#fff">'
                    f"{job.job_id}</text>"
                )

    # Window panel.
    if include_windows:
        base_y = _MARGIN + machines * (_LANE_HEIGHT + _LANE_GAP) + 20
        parts.append(f'<text x="{_MARGIN}" y="{base_y - 6}">job windows</text>')
        for row, job in enumerate(sorted(instance.jobs, key=lambda j: j.job_id)):
            y = base_y + row * (_WINDOW_LANE + 3)
            parts.append(
                f'<line x1="{x(job.release):.1f}" y1="{y + 6:.1f}" '
                f'x2="{x(job.deadline):.1f}" y2="{y + 6:.1f}" '
                f'stroke="{_color(job.job_id)}" stroke-width="3"/>'
            )
            parts.append(
                f'<text x="{x(job.deadline) + 4:.1f}" y="{y + 10:.1f}">'
                f"{job.job_id}</text>"
            )

    # Time axis ticks (5 evenly spaced).
    axis_y = height - _MARGIN + 14
    for k in range(6):
        t = t0 + span * k / 5
        parts.append(
            f'<text x="{x(t):.1f}" y="{axis_y}" text-anchor="middle" '
            f'fill="#666">{t:.4g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_schedule_svg(
    instance: Instance,
    schedule: Schedule,
    path: str | Path,
    width: int = 1000,
    include_windows: bool = True,
) -> Path:
    """Write the SVG rendering to ``path``; returns the path."""
    path = Path(path)
    atomic_write_text(
        path, schedule_to_svg(instance, schedule, width, include_windows)
    )
    return path
