"""ASCII visualization of instances, schedules, and rounding traces."""

from .ascii_art import (
    render_fractional_calibrations,
    render_schedule,
    render_windows,
)
from .svg import save_schedule_svg, schedule_to_svg

__all__ = [
    "render_windows",
    "render_schedule",
    "render_fractional_calibrations",
    "schedule_to_svg",
    "save_schedule_svg",
]
