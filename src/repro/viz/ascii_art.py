"""ASCII rendering of instances and schedules.

Regenerates the paper's figure panels as text: job windows (Figure 1 panel
A), machine timelines with calibration buckets and job blocks (panels B/C),
and fractional calibration bars (Figures 2-3).  Used by the FIG benches and
the examples; it has no third-party dependencies beyond the core model.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.job import Instance, Job
from ..core.schedule import Schedule
from ..core.tolerance import EPS

__all__ = ["render_windows", "render_schedule", "render_fractional_calibrations"]


def _scaler(t0: float, t1: float, width: int):
    span = max(t1 - t0, EPS)

    def to_col(t: float) -> int:
        col = int(round((t - t0) / span * (width - 1)))
        return min(max(col, 0), width - 1)

    return to_col


def _job_glyph(job_id: int) -> str:
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"
    return digits[job_id % len(digits)]


def render_windows(jobs: Sequence[Job], width: int = 72) -> str:
    """Panel-A style view: one line per job showing ``[r_j, d_j)`` and ``p_j``.

    The window is drawn with dashes; the processing requirement is printed
    at the right.
    """
    if not jobs:
        return "(no jobs)"
    t0 = min(j.release for j in jobs)
    t1 = max(j.deadline for j in jobs)
    to_col = _scaler(t0, t1, width)
    lines = [f"time span [{t0:g}, {t1:g}]"]
    for job in sorted(jobs, key=lambda j: j.job_id):
        row = [" "] * width
        lo, hi = to_col(job.release), to_col(job.deadline)
        for c in range(lo, hi + 1):
            row[c] = "-"
        row[lo] = "|"
        row[hi] = "|"
        lines.append(
            f"job {job.job_id:>3} {''.join(row)}  p={job.processing:g}"
        )
    return "\n".join(lines)


def render_schedule(
    instance: Instance, schedule: Schedule, width: int = 72
) -> str:
    """Panel-B/C style view: one line per machine.

    Calibrated intervals are drawn with ``=`` between ``[`` and ``)``; job
    executions overwrite them with the job's glyph.
    """
    T = schedule.calibration_length
    job_map = instance.job_map()
    times = [c.start for c in schedule.calibrations] + [
        p.start for p in schedule.placements
    ]
    if not times:
        return "(empty schedule)"
    t0 = min(times)
    t1 = max(
        [c.start + T for c in schedule.calibrations]
        + [
            p.end(job_map[p.job_id].processing, schedule.speed)
            for p in schedule.placements
            if p.job_id in job_map
        ]
    )
    to_col = _scaler(t0, t1, width)
    lines = [
        f"time span [{t0:g}, {t1:g}]  T={T:g}  speed={schedule.speed:g}"
    ]
    for machine in range(schedule.calibrations.num_machines):
        row = [" "] * width
        for cal in schedule.calibrations.on_machine(machine):
            lo, hi = to_col(cal.start), to_col(cal.start + T)
            for c in range(lo, hi):
                row[c] = "="
            row[lo] = "["
            if hi < width:
                row[hi] = ")"
        for placement in schedule.jobs_on_machine(machine):
            job = job_map.get(placement.job_id)
            if job is None:
                continue
            lo = to_col(placement.start)
            hi = to_col(placement.end(job.processing, schedule.speed))
            glyph = _job_glyph(placement.job_id)
            for c in range(lo, max(hi, lo + 1)):
                row[c] = glyph
        lines.append(f"m{machine:<3} {''.join(row)}")
    return "\n".join(lines)


def render_fractional_calibrations(
    fractional: Mapping[float, float],
    emitted: Sequence[float] = (),
    width: int = 60,
    bar_height: int = 8,
) -> str:
    """Figure 2 style view: fractional calibration bars plus emitted marks.

    Each calibration point gets a vertical bar whose height is proportional
    to its fractional mass (``bar_height`` rows = mass 1.0); emitted integer
    calibrations are marked with ``*`` beneath their point.
    """
    if not fractional:
        return "(no fractional calibrations)"
    points = sorted(fractional)
    emit_counts: dict[float, int] = {}
    for t in emitted:
        emit_counts[t] = emit_counts.get(t, 0) + 1
    col_width = max(6, width // max(len(points), 1))
    max_mass = max(fractional.values())
    rows_needed = max(1, int(round(max_mass * bar_height)))
    lines: list[str] = []
    for level in range(rows_needed, 0, -1):
        cells = []
        for t in points:
            filled = fractional[t] * bar_height >= level - 0.5
            cells.append(("#" * 3 if filled else "   ").center(col_width))
        lines.append("".join(cells))
    lines.append("".join(("-" * 3).center(col_width) for _ in points))
    lines.append("".join(f"t={t:g}".center(col_width) for t in points))
    lines.append(
        "".join(
            (f"C={fractional[t]:.2f}").center(col_width) for t in points
        )
    )
    lines.append(
        "".join(
            ("*" * emit_counts.get(t, 0) or " ").center(col_width)
            for t in points
        )
    )
    return "\n".join(lines)
