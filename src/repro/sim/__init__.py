"""Discrete-event execution of schedules (independent runtime checker)."""

from .engine import EventKind, SimEvent, SimulationResult, simulate
from .export import events_to_csv, machine_stats_to_csv, save_simulation_csv
from .timeline import Segment, all_timelines, machine_timeline

__all__ = [
    "EventKind",
    "SimEvent",
    "SimulationResult",
    "simulate",
    "events_to_csv",
    "machine_stats_to_csv",
    "save_simulation_csv",
    "Segment",
    "machine_timeline",
    "all_timelines",
]
