"""Per-machine timeline reconstruction from a schedule.

Turns a schedule into the segment view operators and plotting tools want:
for every machine, an ordered list of ``(start, end, state, job_id)``
segments with states ``"busy"``, ``"calibrated-idle"`` and ``"off"`` (gaps
between calibrated intervals are omitted — they are the "off" time by
definition, so only positive-cost states are materialized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..core.job import Instance
from ..core.schedule import Schedule
from ..core.tolerance import EPS

__all__ = ["Segment", "machine_timeline", "all_timelines"]


@dataclass(frozen=True, slots=True)
class Segment:
    """One homogeneous stretch on one machine."""

    start: float
    end: float
    state: str
    """``"busy"`` or ``"calibrated-idle"``."""
    job_id: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


def machine_timeline(
    instance: Instance, schedule: Schedule, machine: int
) -> list[Segment]:
    """Busy / calibrated-idle segments of one machine, in time order.

    Busy segments carry the running job's id; calibrated-idle segments fill
    the rest of each calibrated interval.  Overlapping calibrated intervals
    (footnote-3 variant) are merged before idle gaps are computed.
    """
    T = schedule.calibration_length
    job_map = instance.job_map()

    # Merge the machine's calibrated intervals.
    spans: list[list[float]] = []
    for cal in schedule.calibrations.on_machine(machine):
        lo, hi = cal.start, cal.start + T
        if spans and lo <= spans[-1][1] + EPS:
            spans[-1][1] = max(spans[-1][1], hi)
        else:
            spans.append([lo, hi])

    busy: list[Segment] = []
    for placement in schedule.jobs_on_machine(machine):
        job = job_map.get(placement.job_id)
        if job is None:
            continue
        busy.append(
            Segment(
                start=placement.start,
                end=placement.end(job.processing, schedule.speed),
                state="busy",
                job_id=placement.job_id,
            )
        )
    busy.sort(key=lambda s: s.start)

    out: list[Segment] = []
    for lo, hi in spans:
        cursor = lo
        for segment in busy:
            if segment.start >= hi - EPS or segment.end <= lo + EPS:
                continue
            if segment.start > cursor + EPS:
                out.append(Segment(cursor, segment.start, "calibrated-idle"))
            out.append(segment)
            cursor = max(cursor, segment.end)
        if hi > cursor + EPS:
            out.append(Segment(cursor, hi, "calibrated-idle"))
    return out


def all_timelines(
    instance: Instance, schedule: Schedule
) -> dict[int, list[Segment]]:
    """Timelines for every machine in the pool (machines with no
    calibrations map to empty lists)."""
    return {
        machine: machine_timeline(instance, schedule, machine)
        for machine in range(schedule.calibrations.num_machines)
    }
