"""Export simulation event logs and statistics to CSV.

Plain ``csv``-module output so runs can be inspected in a spreadsheet or
joined against external telemetry; used by operations-style workflows on top
of :func:`repro.sim.simulate`.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..core.atomicio import atomic_write_text
from .engine import SimulationResult

__all__ = ["events_to_csv", "machine_stats_to_csv", "save_simulation_csv"]


def events_to_csv(result: SimulationResult) -> str:
    """The event log as CSV text (time, kind, machine, job)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["time", "kind", "machine", "job_id"])
    for event in result.events:
        writer.writerow(
            [
                f"{event.time:.9g}",
                event.kind.value,
                event.machine,
                "" if event.job_id is None else event.job_id,
            ]
        )
    return buffer.getvalue()


def machine_stats_to_csv(result: SimulationResult) -> str:
    """Per-machine busy/calibrated/utilization rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["machine", "busy_time", "calibrated_time", "utilization"])
    for machine in sorted(result.calibrated_time_per_machine):
        busy = result.busy_time_per_machine.get(machine, 0.0)
        calibrated = result.calibrated_time_per_machine[machine]
        utilization = busy / calibrated if calibrated > 0 else 0.0
        writer.writerow(
            [machine, f"{busy:.9g}", f"{calibrated:.9g}", f"{utilization:.4f}"]
        )
    return buffer.getvalue()


def save_simulation_csv(
    result: SimulationResult, directory: str | Path, prefix: str = "sim"
) -> tuple[Path, Path]:
    """Write ``<prefix>_events.csv`` and ``<prefix>_machines.csv``.

    Returns the two paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    events_path = directory / f"{prefix}_events.csv"
    machines_path = directory / f"{prefix}_machines.csv"
    atomic_write_text(events_path, events_to_csv(result))
    atomic_write_text(machines_path, machine_stats_to_csv(result))
    return events_path, machines_path
