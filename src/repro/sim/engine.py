"""Discrete-event execution of ISE schedules.

The static validators in :mod:`repro.core.validate` check a schedule's
*intervals*; this module *executes* one: machines are state machines
(uncalibrated → calibrated(until) → busy(job)), events fire in time order,
and every runtime rule of the problem statement is enforced at the moment it
applies.  It exists as an independent second opinion on feasibility (its
code shares nothing with the validator) and as the source of operational
statistics a scheduler owner would actually look at: per-machine utilization,
calibrated-but-idle time, makespan.

Events:

* ``calibrate``   — a calibration opens; rejected while a previous calibrated
  interval is still open (unless the footnote-3 ``allow_overlap`` mode is on).
* ``job_start``   — rejected if the machine is not calibrated through the
  job's whole execution, the job is not yet released, or the machine is busy.
* ``job_end``     — completion; rejected if past the deadline.

The engine never mutates its inputs and reports *all* runtime violations.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from ..core.job import Instance
from ..core.schedule import Schedule
from ..core.tolerance import EPS, geq, gt, leq

__all__ = ["EventKind", "SimEvent", "SimulationResult", "simulate"]


class EventKind(Enum):
    CALIBRATE = "calibrate"
    JOB_START = "job_start"
    JOB_END = "job_end"


@dataclass(frozen=True, slots=True, order=True)
class SimEvent:
    """One timeline event (ordering: time, then kind priority, then machine).

    ``priority`` makes calibrations fire before job starts and job ends fire
    before anything else at the same instant (half-open interval semantics).
    """

    time: float
    priority: int
    machine: int
    kind: EventKind = field(compare=False)
    job_id: int | None = field(default=None, compare=False)


@dataclass
class _MachineState:
    calibrated_until: float = float("-inf")
    busy_until: float = float("-inf")
    running_job: int | None = None
    busy_time: float = 0.0
    calibrated_time: float = 0.0
    calibrations: int = 0


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of executing a schedule."""

    events: tuple[SimEvent, ...]
    violations: tuple[str, ...]
    completed_jobs: frozenset[int]
    makespan: float
    busy_time_per_machine: dict[int, float]
    calibrated_time_per_machine: dict[int, float]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_busy_time(self) -> float:
        return sum(self.busy_time_per_machine.values())

    @property
    def total_calibrated_time(self) -> float:
        return sum(self.calibrated_time_per_machine.values())

    @property
    def utilization(self) -> float:
        """Busy time over calibrated time (1.0 = no calibrated idling)."""
        cal = self.total_calibrated_time
        return (self.total_busy_time / cal) if cal > 0 else 0.0


def _build_events(
    instance: Instance, schedule: Schedule
) -> list[SimEvent]:
    events: list[SimEvent] = []
    job_map = instance.job_map()
    for cal in schedule.calibrations:
        events.append(
            SimEvent(time=cal.start, priority=1, machine=cal.machine,
                     kind=EventKind.CALIBRATE)
        )
    for placement in schedule.placements:
        job = job_map.get(placement.job_id)
        duration = (
            (job.processing / schedule.speed) if job is not None else 0.0
        )
        events.append(
            SimEvent(time=placement.start, priority=2, machine=placement.machine,
                     kind=EventKind.JOB_START, job_id=placement.job_id)
        )
        events.append(
            SimEvent(time=placement.start + duration, priority=0,
                     machine=placement.machine, kind=EventKind.JOB_END,
                     job_id=placement.job_id)
        )
    events.sort()
    return events


def simulate(
    instance: Instance,
    schedule: Schedule,
    allow_overlap: bool = False,
) -> SimulationResult:
    """Execute ``schedule`` event by event and report runtime violations.

    ``allow_overlap`` selects the footnote-3 variant (calibrations may renew
    an open calibrated interval early).
    """
    T = schedule.calibration_length
    job_map = instance.job_map()
    machines: dict[int, _MachineState] = {}
    violations: list[str] = []
    completed: set[int] = set()
    started: set[int] = set()
    makespan = 0.0

    def state(machine: int) -> _MachineState:
        return machines.setdefault(machine, _MachineState())

    for event in _build_events(instance, schedule):
        st = state(event.machine)
        makespan = max(makespan, event.time)
        if event.kind is EventKind.CALIBRATE:
            if not allow_overlap and gt(st.calibrated_until, event.time):
                violations.append(
                    f"t={event.time:g}: machine {event.machine} recalibrated "
                    f"while calibrated until {st.calibrated_until:g}"
                )
            new_until = event.time + T
            # Accumulate calibrated wall-clock without double counting the
            # overlapping-variant renewals.
            overlap = max(0.0, min(st.calibrated_until, new_until) - event.time)
            st.calibrated_time += T - overlap
            st.calibrated_until = max(st.calibrated_until, new_until)
            st.calibrations += 1
        elif event.kind is EventKind.JOB_START:
            job = job_map.get(event.job_id)  # type: ignore[arg-type]
            if job is None:
                violations.append(
                    f"t={event.time:g}: unknown job {event.job_id} started"
                )
                continue
            if event.job_id in started:
                violations.append(
                    f"t={event.time:g}: job {event.job_id} started twice"
                )
                continue
            started.add(event.job_id)  # type: ignore[arg-type]
            duration = job.processing / schedule.speed
            end = event.time + duration
            if not geq(event.time, job.release):
                violations.append(
                    f"t={event.time:g}: job {job.job_id} started before its "
                    f"release {job.release:g}"
                )
            if st.running_job is not None and gt(st.busy_until, event.time):
                violations.append(
                    f"t={event.time:g}: machine {event.machine} still running "
                    f"job {st.running_job}"
                )
            if not leq(end, st.calibrated_until):
                violations.append(
                    f"t={event.time:g}: job {job.job_id} would run past the "
                    f"machine's calibrated horizon {st.calibrated_until:g}"
                )
            st.running_job = job.job_id
            st.busy_until = end
            st.busy_time += duration
        else:  # JOB_END
            job = job_map.get(event.job_id)  # type: ignore[arg-type]
            if job is None:
                continue
            if not leq(event.time, job.deadline):
                violations.append(
                    f"t={event.time:g}: job {job.job_id} completed after its "
                    f"deadline {job.deadline:g}"
                )
            if st.running_job == job.job_id:
                st.running_job = None
            completed.add(job.job_id)

    for job in instance.jobs:
        if job.job_id not in completed:
            violations.append(f"job {job.job_id} never completed")

    return SimulationResult(
        events=tuple(_build_events(instance, schedule)),
        violations=tuple(violations),
        completed_jobs=frozenset(completed),
        makespan=makespan,
        busy_time_per_machine={
            m: st.busy_time for m, st in machines.items()
        },
        calibrated_time_per_machine={
            m: st.calibrated_time for m, st in machines.items()
        },
    )
