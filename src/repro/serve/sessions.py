"""Session manager: fenced, lock-striped, TTL-evicted online sessions.

One :class:`SessionManager` owns every live
:class:`~repro.online.session.ISESession` a server is fronting.  Its job
is the concurrency and lifecycle story the session object itself refuses
to have:

* **Per-session locks** — sessions are single-writer; the manager
  serializes all access to one session behind its own lock while letting
  distinct sessions proceed in parallel (lock striping by session id).
* **Fencing tokens** — every mutation must present the session's current
  fence epoch.  The epoch bumps (durably) on every create *and* every
  recovery, so a server that lost a session and got it back — or a
  zombie process that never noticed it was superseded — presents an old
  epoch and is rejected with a typed
  :class:`~repro.core.errors.StaleFenceError` instead of silently
  interleaving writes with the new owner (split-brain safety).  Reads
  return the current epoch so displaced clients can re-fence.
* **TTL persist-then-evict** — idle sessions are dropped from memory.
  There is nothing to flush at eviction time because every accepted
  mutation was already fsynced by the session journal; eviction is
  purely a memory-bound guard.  A later request lazily recovers the
  session from its journal — which bumps the fence, so writers that
  slept through an eviction re-fence like everyone else.
* **Graceful drain** — :meth:`drain` closes every in-memory session so a
  terminating server stops accepting session mutations; the journals are
  already durable, so drain loses nothing.

The manager keeps all mutable state on the instance (no module globals)
and takes its table lock only for table operations — never across a
solve — so one slow re-plan cannot stall unrelated sessions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.errors import SessionConflictError, StaleFenceError
from ..core.solver import ISEConfig
from ..online.session import AdvanceResult, ISESession, SubmitReceipt

__all__ = ["SessionManager", "SessionSnapshot"]


@dataclass(frozen=True)
class SessionSnapshot:
    """A read-only view of one session, taken under its lock."""

    session_id: str
    fence: int
    now: float
    job_count: int
    committed: tuple[tuple[float, int], ...]
    replans: int
    repairs: int
    schedule: Any  # repro.core.schedule.Schedule
    digest: str


@dataclass
class _Entry:
    session: ISESession
    lock: threading.Lock = field(default_factory=threading.Lock)
    last_used: float = 0.0


class SessionManager:
    """Front N durable sessions with locks, fences, and TTL eviction."""

    def __init__(
        self,
        directory: str | Path,
        *,
        config: ISEConfig | None = None,
        ttl: float | None = 600.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.ttl = ttl
        self.clock = clock
        self._table_lock = threading.Lock()
        self._entries: dict[str, _Entry] = {}
        self._next_id = 1
        self._draining = False
        self._counters = {
            "sessions_created": 0,
            "sessions_recovered": 0,
            "sessions_evicted": 0,
            "sessions_deleted": 0,
            "session_jobs_accepted": 0,
            "session_jobs_replayed": 0,
            "session_commits": 0,
            "session_repairs": 0,
            "session_replans": 0,
            "stale_fence_rejections": 0,
        }

    # -- Lifecycle -----------------------------------------------------------

    def create(
        self,
        session_id: str | None = None,
        *,
        machines: int,
        calibration_length: float,
        commit_horizon: float = 0.0,
    ) -> SessionSnapshot:
        """Create (and journal) a fresh session; returns its first snapshot."""
        self._require_serving()
        with self._table_lock:
            if session_id is None:
                while True:
                    candidate = f"session-{self._next_id}"
                    self._next_id += 1
                    if (
                        candidate not in self._entries
                        and not ISESession.journal_path(
                            self.directory, candidate
                        ).exists()
                    ):
                        session_id = candidate
                        break
            elif (
                session_id in self._entries
                or ISESession.journal_path(self.directory, session_id).exists()
            ):
                raise SessionConflictError(
                    f"session {session_id!r} already exists"
                )
            session = ISESession.create(
                self.directory,
                session_id,
                machines=machines,
                calibration_length=calibration_length,
                commit_horizon=commit_horizon,
                config=self.config,
            )
            entry = _Entry(session=session, last_used=self.clock())
            self._entries[session_id] = entry
            self._bump("sessions_created", locked=True)
        with entry.lock:
            return self._snapshot(session)

    def delete(self, session_id: str) -> None:
        """Close the session, evict it, and delete its journal.

        This is the one deliberately destructive operation: the client is
        declaring the session's durable history disposable.  Everything
        else (eviction, drain, crash) keeps the journal.
        """
        entry = self._entry(session_id)
        with entry.lock:
            entry.session.close()
            path = ISESession.journal_path(self.directory, session_id)
            path.unlink(missing_ok=True)
        with self._table_lock:
            self._entries.pop(session_id, None)
            self._bump("sessions_deleted", locked=True)

    def drain(self) -> int:
        """Stop serving sessions; close all in-memory ones.  Returns count.

        Journals are fsynced per-append, so there is nothing to flush —
        closing just makes late mutations fail typed instead of racing
        process teardown.
        """
        with self._table_lock:
            self._draining = True
            entries = list(self._entries.values())
        for entry in entries:
            with entry.lock:
                entry.session.close()
        return len(entries)

    def evict_idle(self) -> int:
        """Drop sessions idle past the TTL from memory (journals remain)."""
        if self.ttl is None:
            return 0
        horizon = self.clock() - self.ttl
        evicted = 0
        with self._table_lock:
            for session_id in list(self._entries):
                entry = self._entries[session_id]
                if entry.last_used < horizon and not entry.lock.locked():
                    del self._entries[session_id]
                    self._bump("sessions_evicted", locked=True)
                    evicted += 1
        return evicted

    # -- Operations ----------------------------------------------------------

    def submit_job(
        self,
        session_id: str,
        fence: int,
        *,
        job_id: int,
        release: float,
        deadline: float,
        processing: float,
        at: float | None = None,
    ) -> tuple[SubmitReceipt, int]:
        """Submit one job under a fencing token; returns (receipt, fence)."""
        self._require_serving()
        entry = self._entry(session_id)
        with entry.lock:
            self._check_fence(entry.session, fence)
            receipt = entry.session.submit_job(
                job_id,
                release=release,
                deadline=deadline,
                processing=processing,
                at=at,
            )
            current = entry.session.fence
        entry.last_used = self.clock()
        self._bump(
            "session_jobs_replayed" if receipt.replayed else "session_jobs_accepted"
        )
        if receipt.repaired:
            self._bump("session_repairs")
        elif not receipt.replayed:
            self._bump("session_replans")
        if receipt.newly_committed:
            self._bump("session_commits", by=len(receipt.newly_committed))
        self.evict_idle()
        return receipt, current

    def advance(
        self, session_id: str, fence: int, *, to: float
    ) -> tuple[AdvanceResult, int]:
        """Advance one session's clock under a fencing token."""
        self._require_serving()
        entry = self._entry(session_id)
        with entry.lock:
            self._check_fence(entry.session, fence)
            result = entry.session.advance(to)
            current = entry.session.fence
        entry.last_used = self.clock()
        if result.newly_committed:
            self._bump("session_commits", by=len(result.newly_committed))
        self.evict_idle()
        return result, current

    def snapshot(self, session_id: str) -> SessionSnapshot:
        """Read one session's current state (no fence needed for reads —
        the snapshot carries the current epoch so clients can re-fence)."""
        entry = self._entry(session_id)
        with entry.lock:
            snap = self._snapshot(entry.session)
        entry.last_used = self.clock()
        return snap

    # -- Observability -------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """JSON-ready counters for the service's ``/stats``."""
        with self._table_lock:
            payload = dict(self._counters)
            payload["sessions_active"] = len(self._entries)
            payload["draining"] = self._draining
        return payload

    # -- Internals -----------------------------------------------------------

    def _require_serving(self) -> None:
        with self._table_lock:
            if self._draining:
                raise SessionConflictError(
                    "session manager is draining; no new session mutations"
                )

    def _entry(self, session_id: str) -> _Entry:
        with self._table_lock:
            entry = self._entries.get(session_id)
            if entry is not None:
                return entry
            if not ISESession.journal_path(self.directory, session_id).exists():
                raise KeyError(f"no such session: {session_id!r}")
            # Lazy recovery after an eviction or a restart.  open() bumps
            # the fence, so any writer fenced before the eviction is now
            # stale — by design.
            session = ISESession.open(
                self.directory, session_id, config=self.config
            )
            entry = _Entry(session=session, last_used=self.clock())
            self._entries[session_id] = entry
            self._bump("sessions_recovered", locked=True)
            return entry

    def _check_fence(self, session: ISESession, fence: int) -> None:
        if fence != session.fence:
            self._bump("stale_fence_rejections")
            raise StaleFenceError(
                f"stale fencing token for session {session.session_id!r}; "
                "the session was recovered or re-owned since this token "
                "was issued — re-read the session to obtain the current "
                "epoch",
                presented=fence,
                current=session.fence,
            )

    def _snapshot(self, session: ISESession) -> SessionSnapshot:
        return SessionSnapshot(
            session_id=session.session_id,
            fence=session.fence,
            now=session.now,
            job_count=session.job_count,
            committed=tuple(
                (c.start, c.machine) for c in session.committed_calibrations
            ),
            replans=session.replans,
            repairs=session.repairs,
            schedule=session.schedule,
            digest=session.state_digest(),
        )

    def _bump(self, name: str, by: int = 1, *, locked: bool = False) -> None:
        if locked:
            self._counters[name] += by
            return
        with self._table_lock:
            self._counters[name] += by
