"""Stdlib JSON/HTTP frontend for :class:`~repro.serve.service.SolveService`.

Endpoints:

* ``POST /solve`` — body ``{"instance": <ise-instance JSON>, "deadline":
  seconds?, "include_schedule": bool?, "request_id": str?}``; the instance
  may be the raw wire dict or a checksummed artifact envelope as written
  by ``repro-ise generate``; replies with solve metrics (and the full
  schedule when asked), plus a certificate summary when the service runs
  in verified mode.  A ``request_id`` makes the POST idempotent: a
  duplicate within the service's LRU window returns the original result
  with ``"idempotent_replay": true``.  Failures map to honest status
  codes: 400 malformed payload, 422 infeasible/invalid instance, 429
  overloaded (with a ``Retry-After`` computed from the live backlog and
  observed solve times), 503 draining, 504 deadline exceeded, 500 solver
  failure.
* ``POST /sessions`` — create a durable online session; body
  ``{"session_id": str?, "machines": int, "calibration_length": number,
  "commit_horizon": number?}``; replies 201 with the session's snapshot
  including its fencing token.
* ``POST /sessions/{id}/jobs`` — stream one job in; body ``{"fence": int,
  "job": {"id", "release", "deadline", "processing"}, "at": number?}``.
* ``POST /sessions/{id}/advance`` — move the session clock; body
  ``{"fence": int, "to": number}``; replies with newly committed
  calibrations.
* ``GET /sessions/{id}/schedule`` — the session's full current schedule,
  committed set, state digest, and current fence (how a displaced writer
  re-fences).
* ``DELETE /sessions/{id}`` — close the session and delete its journal.
  Session conflicts and stale fencing tokens map to 409; unknown session
  ids to 404.
* ``GET /healthz`` — liveness: 200 whenever the process can answer at all.
* ``GET /readyz`` — readiness: 503 (with a reason) while the service is
  draining or its breaker board is dark, so load balancers stop routing
  new work here before it would be wasted.
* ``GET /stats`` — the service's counters, queue state, per-backend
  breaker states, and (when sessions are enabled) session counters as
  JSON.

Built on :class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies — which is plenty for an internal solve service whose unit of
work is seconds of CPU, not microseconds of IO.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.errors import (
    CertificationError,
    CommitRetractionError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    LimitExceededError,
    OverloadError,
    ReproError,
    ServiceShutdownError,
    SessionConflictError,
    StageTimeoutError,
    StaleFenceError,
)
from ..instances import instance_from_dict, schedule_to_dict
from .service import ServeOutcome, SolveService
from .sessions import SessionManager, SessionSnapshot

__all__ = ["SolveHTTPServer", "make_server"]


class _BadSessionPayload(ValueError):
    """A session request body is malformed (maps to 400, not 404/409)."""


def _field(payload: dict[str, Any], name: str, cast: Any, default: Any = None) -> Any:
    """Pull and coerce one body field; raises :class:`_BadSessionPayload`."""
    value = payload.get(name, default)
    if value is None:
        raise _BadSessionPayload(f'missing required field "{name}"')
    try:
        return cast(value)
    except (TypeError, ValueError) as exc:
        raise _BadSessionPayload(
            f'field "{name}" must be a {cast.__name__}: {exc}'
        ) from exc


class SolveHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns the :class:`SolveService` it fronts.

    ``sessions`` is the optional :class:`SessionManager` behind the
    ``/sessions`` routes; without one those routes answer 404 with a hint
    to start the server with a session directory.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: SolveService,
        sessions: SessionManager | None = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.sessions = sessions

    @property
    def port(self) -> int:
        return self.server_address[1]


def _error_status(exc: BaseException) -> int:
    """Map a typed solve failure to an HTTP status code."""
    if isinstance(exc, OverloadError):
        return 429
    if isinstance(exc, ServiceShutdownError):
        return 503
    if isinstance(exc, (StageTimeoutError, LimitExceededError)):
        return 504
    if isinstance(exc, (StaleFenceError, SessionConflictError)):
        # The request is well-formed but clashes with the session's
        # current state or ownership epoch — a conflict, not a bad
        # request: re-reading the session resolves it.
        return 409
    if isinstance(exc, (CertificationError, CommitRetractionError)):
        # The solver produced an answer but it failed certification and
        # was quarantined (or a session mutation would have retracted a
        # committed calibration and was refused) — a server-side
        # integrity failure, not a client problem.
        return 500
    if isinstance(
        exc,
        (InvalidInstanceError, InfeasibleInstanceError, InfeasibleScheduleError),
    ):
        return 422
    return 500


def _snapshot_payload(
    snap: SessionSnapshot, include_schedule: bool = True
) -> dict[str, Any]:
    """JSON-ready view of one session snapshot."""
    payload: dict[str, Any] = {
        "session_id": snap.session_id,
        "fence": snap.fence,
        "now": snap.now,
        "job_count": snap.job_count,
        "committed": [list(key) for key in snap.committed],
        "replans": snap.replans,
        "repairs": snap.repairs,
        "digest": snap.digest,
    }
    if include_schedule:
        payload["schedule"] = schedule_to_dict(snap.schedule)
    return payload


def _outcome_payload(outcome: ServeOutcome, include_schedule: bool) -> dict[str, Any]:
    result = outcome.result
    payload: dict[str, Any] = {
        "request_id": outcome.request_id,
        "shed": outcome.shed,
        "queue_wait": outcome.queue_wait,
        "solve_seconds": outcome.solve_seconds,
        "num_calibrations": result.num_calibrations,
        "machines_used": result.machines_used,
        "lower_bound": result.lower_bound.best,
        "approximation_ratio": result.approximation_ratio,
        "degraded": result.degraded,
    }
    if result.resilience is not None:
        payload["resilience"] = result.resilience.to_dict()
    certificate = getattr(result, "certificate", None)
    if certificate is not None:
        payload["certificate"] = certificate.summary()
    if include_schedule:
        payload["schedule"] = schedule_to_dict(result.schedule)
    return payload


class _Handler(BaseHTTPRequestHandler):
    server: SolveHTTPServer  # narrowed for type checkers

    # The default handler logs every request to stderr; a service's access
    # log belongs to its operator, not hard-coded prints.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ReproError) -> None:
        """One typed-failure -> HTTP response mapping for every route."""
        status = _error_status(exc)
        headers: dict[str, str] | None = None
        if status == 429:
            headers = {
                "Retry-After": str(self.server.service.retry_after_estimate())
            }
        body: dict[str, Any] = {
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
        if isinstance(exc, StaleFenceError):
            body["presented"] = exc.presented
            body["current"] = exc.current
        if isinstance(exc, CertificationError) and exc.certificate is not None:
            # The quarantined schedule stays quarantined, but the failed
            # certificate itself is safe (and useful) to show clients.
            body["certificate"] = exc.certificate.summary()
        self._send_json(status, body, headers=headers)

    def _read_body(self) -> dict[str, Any] | None:
        """Parse the JSON request body; answers 400 and returns None on junk."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"malformed JSON body: {exc}"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    def _session_manager(self) -> SessionManager | None:
        sessions = self.server.sessions
        if sessions is None:
            self._send_json(
                404,
                {
                    "error": "session routes are disabled; start the server "
                    "with a session directory (repro-ise serve "
                    "--session-dir ...)"
                },
            )
        return sessions

    @staticmethod
    def _session_route(path: str) -> tuple[str, str] | None:
        """Split ``/sessions/{id}[/verb]`` into (id, verb)."""
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "sessions":
            return None
        if len(parts) == 1:
            return "", ""
        if len(parts) == 2:
            return parts[1], ""
        if len(parts) == 3:
            return parts[1], parts[2]
        return None

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/readyz":
            if service.ready:
                self._send_json(200, {"status": "ready"})
            else:
                if not service.started:
                    reason = "not started"
                elif service.draining:
                    reason = "draining"
                else:
                    reason = "all solver backends dark (circuit breakers open)"
                self._send_json(503, {"status": "not ready", "reason": reason})
        elif self.path == "/stats":
            snapshot = service.stats_snapshot()
            if self.server.sessions is not None:
                snapshot["sessions"] = self.server.sessions.stats_snapshot()
            self._send_json(200, snapshot)
        elif (route := self._session_route(self.path)) is not None:
            self._get_session(route)
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    def _get_session(self, route: tuple[str, str]) -> None:
        sessions = self._session_manager()
        if sessions is None:
            return
        session_id, verb = route
        if not session_id or verb not in ("", "schedule"):
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        try:
            snap = sessions.snapshot(session_id)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        except ReproError as exc:
            self._send_error(exc)
            return
        self._send_json(200, _snapshot_payload(snap))

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if self.path == "/solve":
            self._post_solve()
            return
        route = self._session_route(self.path)
        if route is not None:
            self._post_session(route)
            return
        self._send_json(404, {"error": f"no such path: {self.path}"})

    def _post_solve(self) -> None:
        payload = self._read_body()
        if payload is None:
            return
        if "instance" not in payload:
            self._send_json(
                400, {"error": 'body must be a JSON object with an "instance" key'}
            )
            return
        deadline = payload.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            self._send_json(400, {"error": '"deadline" must be a number of seconds'})
            return
        request_id = payload.get("request_id")
        if request_id is not None and not isinstance(request_id, str):
            self._send_json(400, {"error": '"request_id" must be a string'})
            return
        instance_payload = payload["instance"]
        if isinstance(instance_payload, dict) and "envelope" in instance_payload:
            # Accept checksummed artifact files (repro-ise generate output)
            # verbatim, so `--data @instance.json` round-trips from the CLI.
            instance_payload = instance_payload.get("payload")
        try:
            instance = instance_from_dict(instance_payload)
        except (ReproError, ValueError, TypeError, KeyError) as exc:
            self._send_json(400, {"error": f"invalid instance payload: {exc}"})
            return

        service = self.server.service
        try:
            request, replayed = service.submit_idempotent(
                instance, deadline=deadline, request_id=request_id
            )
            outcome = request.future.result()
        except ValueError as exc:  # e.g. non-positive deadline
            self._send_json(400, {"error": str(exc)})
            return
        except ReproError as exc:
            self._send_error(exc)
            return
        body = _outcome_payload(
            outcome, include_schedule=bool(payload.get("include_schedule"))
        )
        body["idempotent_replay"] = replayed
        self._send_json(200, body)

    def _post_session(self, route: tuple[str, str]) -> None:
        sessions = self._session_manager()
        if sessions is None:
            return
        session_id, verb = route
        payload = self._read_body()
        if payload is None:
            return
        try:
            if not session_id and not verb:
                self._create_session(sessions, payload)
            elif session_id and verb == "jobs":
                self._submit_session_job(sessions, session_id, payload)
            elif session_id and verb == "advance":
                self._advance_session(sessions, session_id, payload)
            else:
                self._send_json(404, {"error": f"no such path: {self.path}"})
        except _BadSessionPayload as exc:
            self._send_json(400, {"error": str(exc)})
        except KeyError as exc:
            # Only the manager raises KeyError here: unknown session id.
            self._send_json(404, {"error": str(exc)})
        except ReproError as exc:
            self._send_error(exc)

    def _create_session(
        self, sessions: SessionManager, payload: dict[str, Any]
    ) -> None:
        machines = _field(payload, "machines", int)
        length = _field(payload, "calibration_length", float)
        horizon = _field(payload, "commit_horizon", float, default=0.0)
        snap = sessions.create(
            payload.get("session_id"),
            machines=machines,
            calibration_length=length,
            commit_horizon=horizon,
        )
        self._send_json(201, _snapshot_payload(snap, include_schedule=False))

    def _submit_session_job(
        self, sessions: SessionManager, session_id: str, payload: dict[str, Any]
    ) -> None:
        fence = _field(payload, "fence", int)
        job = payload.get("job")
        if not isinstance(job, dict):
            raise _BadSessionPayload('"job" must be a JSON object')
        at = payload.get("at")
        receipt, current = sessions.submit_job(
            session_id,
            fence,
            job_id=_field(job, "id", int),
            release=_field(job, "release", float),
            deadline=_field(job, "deadline", float),
            processing=_field(job, "processing", float),
            at=None if at is None else _field(payload, "at", float),
        )
        self._send_json(
            200,
            {
                "session_id": session_id,
                "fence": current,
                "job_id": receipt.job_id,
                "replayed": receipt.replayed,
                "repaired": receipt.repaired,
                "start": receipt.start,
                "machine": receipt.machine,
                "locked": receipt.locked,
                "newly_committed": [list(k) for k in receipt.newly_committed],
            },
        )

    def _advance_session(
        self, sessions: SessionManager, session_id: str, payload: dict[str, Any]
    ) -> None:
        fence = _field(payload, "fence", int)
        to = _field(payload, "to", float)
        result, current = sessions.advance(session_id, fence, to=to)
        self._send_json(
            200,
            {
                "session_id": session_id,
                "fence": current,
                "now": result.now,
                "newly_committed": [list(k) for k in result.newly_committed],
            },
        )

    # -- DELETE --------------------------------------------------------------

    def do_DELETE(self) -> None:  # noqa: N802 — http.server naming
        route = self._session_route(self.path)
        if route is None or not route[0] or route[1]:
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        sessions = self._session_manager()
        if sessions is None:
            return
        try:
            sessions.delete(route[0])
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        except ReproError as exc:
            self._send_error(exc)
            return
        self._send_json(200, {"session_id": route[0], "deleted": True})


def make_server(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    sessions: SessionManager | None = None,
) -> SolveHTTPServer:
    """Bind a :class:`SolveHTTPServer` (``port=0`` picks a free port).

    Starts the service's worker pool; the caller owns ``serve_forever`` /
    ``shutdown`` so tests can run the server on a thread and the CLI can
    install signal handlers around it.  Pass a :class:`SessionManager` to
    enable the ``/sessions`` routes.
    """
    service.start()
    return SolveHTTPServer((host, port), service, sessions)
