"""Stdlib JSON/HTTP frontend for :class:`~repro.serve.service.SolveService`.

Endpoints:

* ``POST /solve`` — body ``{"instance": <ise-instance JSON>, "deadline":
  seconds?, "include_schedule": bool?}``; the instance may be the raw wire
  dict or a checksummed artifact envelope as written by ``repro-ise
  generate``; replies with solve metrics (and the full schedule when
  asked), plus a certificate summary when the service runs in verified
  mode.  Failures map to honest status codes:
  400 malformed payload, 422 infeasible/invalid instance, 429 overloaded
  (with ``Retry-After``), 503 draining, 504 deadline exceeded, 500 solver
  failure.
* ``GET /healthz`` — liveness: 200 whenever the process can answer at all.
* ``GET /readyz`` — readiness: 503 (with a reason) while the service is
  draining or its breaker board is dark, so load balancers stop routing
  new work here before it would be wasted.
* ``GET /stats`` — the service's counters, queue state, and per-backend
  breaker states as JSON.

Built on :class:`http.server.ThreadingHTTPServer` — no framework, no new
dependencies — which is plenty for an internal solve service whose unit of
work is seconds of CPU, not microseconds of IO.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.errors import (
    CertificationError,
    InfeasibleInstanceError,
    InfeasibleScheduleError,
    InvalidInstanceError,
    LimitExceededError,
    OverloadError,
    ReproError,
    ServiceShutdownError,
    StageTimeoutError,
)
from ..instances import instance_from_dict, schedule_to_dict
from .service import ServeOutcome, SolveService

__all__ = ["SolveHTTPServer", "make_server"]

#: Suggested client back-off (seconds) sent with 429 responses.
_RETRY_AFTER = "1"


class SolveHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns the :class:`SolveService` it fronts."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SolveService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]


def _error_status(exc: BaseException) -> int:
    """Map a typed solve failure to an HTTP status code."""
    if isinstance(exc, OverloadError):
        return 429
    if isinstance(exc, ServiceShutdownError):
        return 503
    if isinstance(exc, (StageTimeoutError, LimitExceededError)):
        return 504
    if isinstance(exc, CertificationError):
        # The solver produced an answer but it failed certification and
        # was quarantined — a server-side integrity failure, not a client
        # problem, and retryable against a healthy replica.
        return 500
    if isinstance(
        exc,
        (InvalidInstanceError, InfeasibleInstanceError, InfeasibleScheduleError),
    ):
        return 422
    return 500


def _outcome_payload(outcome: ServeOutcome, include_schedule: bool) -> dict[str, Any]:
    result = outcome.result
    payload: dict[str, Any] = {
        "request_id": outcome.request_id,
        "shed": outcome.shed,
        "queue_wait": outcome.queue_wait,
        "solve_seconds": outcome.solve_seconds,
        "num_calibrations": result.num_calibrations,
        "machines_used": result.machines_used,
        "lower_bound": result.lower_bound.best,
        "approximation_ratio": result.approximation_ratio,
        "degraded": result.degraded,
    }
    if result.resilience is not None:
        payload["resilience"] = result.resilience.to_dict()
    certificate = getattr(result, "certificate", None)
    if certificate is not None:
        payload["certificate"] = certificate.summary()
    if include_schedule:
        payload["schedule"] = schedule_to_dict(result.schedule)
    return payload


class _Handler(BaseHTTPRequestHandler):
    server: SolveHTTPServer  # narrowed for type checkers

    # The default handler logs every request to stderr; a service's access
    # log belongs to its operator, not hard-coded prints.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- GET -----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/readyz":
            if service.ready:
                self._send_json(200, {"status": "ready"})
            else:
                if not service.started:
                    reason = "not started"
                elif service.draining:
                    reason = "draining"
                else:
                    reason = "all solver backends dark (circuit breakers open)"
                self._send_json(503, {"status": "not ready", "reason": reason})
        elif self.path == "/stats":
            self._send_json(200, service.stats_snapshot())
        else:
            self._send_json(404, {"error": f"no such path: {self.path}"})

    # -- POST ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if self.path != "/solve":
            self._send_json(404, {"error": f"no such path: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"malformed JSON body: {exc}"})
            return
        if not isinstance(payload, dict) or "instance" not in payload:
            self._send_json(
                400, {"error": 'body must be a JSON object with an "instance" key'}
            )
            return
        deadline = payload.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            self._send_json(400, {"error": '"deadline" must be a number of seconds'})
            return
        instance_payload = payload["instance"]
        if isinstance(instance_payload, dict) and "envelope" in instance_payload:
            # Accept checksummed artifact files (repro-ise generate output)
            # verbatim, so `--data @instance.json` round-trips from the CLI.
            instance_payload = instance_payload.get("payload")
        try:
            instance = instance_from_dict(instance_payload)
        except (ReproError, ValueError, TypeError, KeyError) as exc:
            self._send_json(400, {"error": f"invalid instance payload: {exc}"})
            return

        service = self.server.service
        try:
            outcome = service.solve(instance, deadline=deadline)
        except ValueError as exc:  # e.g. non-positive deadline
            self._send_json(400, {"error": str(exc)})
            return
        except ReproError as exc:
            status = _error_status(exc)
            headers = {"Retry-After": _RETRY_AFTER} if status == 429 else None
            body = {"error": str(exc), "error_type": type(exc).__name__}
            if isinstance(exc, CertificationError) and exc.certificate is not None:
                # The quarantined schedule stays quarantined, but the failed
                # certificate itself is safe (and useful) to show clients.
                body["certificate"] = exc.certificate.summary()
            self._send_json(status, body, headers=headers)
            return
        self._send_json(
            200,
            _outcome_payload(
                outcome, include_schedule=bool(payload.get("include_schedule"))
            ),
        )


def make_server(
    service: SolveService, host: str = "127.0.0.1", port: int = 8080
) -> SolveHTTPServer:
    """Bind a :class:`SolveHTTPServer` (``port=0`` picks a free port).

    Starts the service's worker pool; the caller owns ``serve_forever`` /
    ``shutdown`` so tests can run the server on a thread and the CLI can
    install signal handlers around it.
    """
    service.start()
    return SolveHTTPServer((host, port), service)
