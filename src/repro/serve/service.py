"""The supervised solve service: worker pool, shedding, graceful drain.

:class:`SolveService` turns the library's one-shot :func:`solve_ise` into a
long-lived, supervised service:

* **Admission control** — a bounded :class:`~repro.serve.queue.AdmissionQueue`
  rejects work beyond capacity with a typed
  :class:`~repro.core.errors.OverloadError` instead of buffering it into
  unbounded latency.
* **Deadline propagation** — each request's client deadline becomes a
  :class:`~repro.core.resilience.SolveBudget` started *at admission*; the
  worker snapshots the remainder via ``subbudget()`` into the per-request
  resilience policy, so the existing budget machinery enforces it all the
  way down to the simplex pivot loop.
* **Circuit breaking** — every fallback-chain attempt feeds the shared
  :class:`~repro.serve.breaker.BreakerBoard`; a backend that keeps failing
  is skipped by subsequent requests until its breaker half-opens.
* **Load shedding** — above the queue's high watermark, requests are solved
  under a cheaper policy (non-strict, cheap MM chain) so the backlog burns
  down; hysteresis clears the mode at the low watermark.
* **Graceful drain** — :meth:`SolveService.shutdown` stops admission,
  finishes in-flight and queued work within a drain deadline, and resolves
  anything it must abandon with a typed
  :class:`~repro.core.errors.ServiceShutdownError` rather than leaving
  callers hanging.

Every solve request runs the PR-1 degradation ladder (fallback chains, then
whole-pipeline rescue) unless the service config says otherwise, so one
poisoned request costs quality, never availability.
"""

from __future__ import annotations

import dataclasses
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.errors import (
    CertificationError,
    OverloadError,
    ReproError,
    ServiceShutdownError,
    SolverError,
    StageTimeoutError,
)
from ..core.job import Instance
from ..core.resilience import ResiliencePolicy, RetryPolicy, SolveBudget
from ..core.solver import ISEConfig, solve_ise
from ..lp import BasisStash
from .breaker import BreakerBoard
from .queue import AdmissionQueue, SolveRequest

__all__ = [
    "ServiceConfig",
    "ServeOutcome",
    "ServiceStats",
    "DrainReport",
    "SolveService",
]

#: How often an idle worker wakes to poll its stop flag (seconds).
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`SolveService`.

    Attributes:
        workers: worker threads pulling from the admission queue.
        queue_capacity: bound on queued (not yet started) requests.
        high_watermark: queue depth that turns load shedding on; None
            uses the queue default (3/4 of capacity).
        low_watermark: depth at which shedding clears; None uses the
            queue default (1/4 of capacity).
        default_deadline: seconds granted to a request that names no
            deadline (None = unlimited, not recommended for a service).
        max_deadline: cap on client-requested deadlines (None = no cap).
        drain_deadline: default seconds :meth:`SolveService.shutdown`
            waits for queued + in-flight work before abandoning it.
        solver: the :class:`ISEConfig` template each request is solved
            under.  The service default is non-strict: degrade, not die.
        shed_mm: cheap MM algorithm used while shedding load.
        breaker_failure_threshold / breaker_reset_timeout /
        breaker_half_open_trials: circuit-breaker tuning, shared by every
            per-backend breaker on the board.
        retry: per-candidate retry/backoff policy for fallback chains.
        idempotency_capacity: how many recent client ``request_id``s the
            service remembers for duplicate-submission dedupe (bounded
            LRU; 0 disables the cache entirely).
        lp_warm_start: give each worker thread its own small LP basis
            stash, so a client re-solving the same instance (retries,
            idempotent replays, polling dashboards) warm-starts the LP
            stage.  Exact-content keys keep warm results bit-identical to
            cold ones; stale bases fall back to phase 1 in the solver.
        verify_results: certify every result before it escapes a worker
            (see :mod:`repro.core.certify`).  A failed certificate dumps
            the worker's basis stash and re-solves once, cold and still
            verified; if that repair also fails, the request resolves
            with a typed :class:`CertificationError` — a corrupted
            schedule is never handed to a client.
    """

    workers: int = 2
    queue_capacity: int = 64
    high_watermark: int | None = None
    low_watermark: int | None = None
    default_deadline: float | None = 30.0
    max_deadline: float | None = None
    drain_deadline: float = 10.0
    solver: ISEConfig = field(default_factory=lambda: ISEConfig(strict=False))
    shed_mm: str = "greedy_edf"
    breaker_failure_threshold: int = 3
    breaker_reset_timeout: float = 30.0
    breaker_half_open_trials: int = 1
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    idempotency_capacity: int = 128
    lp_warm_start: bool = True
    verify_results: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class ServeOutcome:
    """A completed request: the solver result plus service telemetry."""

    result: Any  # ISEResult from the configured solve function
    request_id: str
    shed: bool
    queue_wait: float
    solve_seconds: float


class ServiceStats:
    """Thread-safe service counters (the numbers behind ``/stats``).

    The ``lp_*`` counters aggregate the LP telemetry that successful solves
    carry in their resilience attempt records (``detail`` of "ok" LP
    attempts): total LP solves observed, how many of them warm-started,
    and the cumulative simplex iteration count.

    Verified mode adds three more: ``verified`` results that carried a
    passing certificate out the door, ``repaired`` results whose first
    solve failed certification but whose cold re-solve passed, and
    ``quarantined`` requests whose repair also failed — those resolve with
    a typed error instead of a result.
    """

    _FIELDS = (
        "submitted",
        "rejected_overload",
        "rejected_shutdown",
        "completed",
        "failed",
        "timed_out",
        "shed_solves",
        "abandoned",
        "lp_solves",
        "lp_warm_solves",
        "lp_iterations",
        "verified",
        "repaired",
        "quarantined",
        "idempotent_replays",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {name: 0 for name in self._FIELDS}

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def processed(self) -> int:
        """Requests that reached a final state through a worker."""
        with self._lock:
            return (
                self._counts["completed"]
                + self._counts["failed"]
                + self._counts["timed_out"]
            )

    def to_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`SolveService.shutdown` managed to finish.

    ``clean`` is True when nothing was abandoned — every queued and
    in-flight request reached a real outcome before the drain deadline.
    """

    drained: int
    abandoned_queued: int
    abandoned_in_flight: int
    duration: float

    @property
    def clean(self) -> bool:
        return self.abandoned_queued == 0 and self.abandoned_in_flight == 0


class SolveService:
    """N worker threads supervising solves behind an admission queue.

    ``solve_fn`` is injectable — chaos tests swap in functions that stall,
    crash, or consult a fault plan, without touching the service logic.
    ``clock`` drives admission timestamps and deadline budgets; inject a
    :class:`~repro.testing.faults.FakeClock` for deterministic timing tests
    (worker polling still uses real time — only *measurements* use the
    injected clock).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        solve_fn: Callable[[Instance, ISEConfig], Any] = solve_ise,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self.solve_fn = solve_fn
        self.clock = clock
        self.queue: AdmissionQueue[SolveRequest] = AdmissionQueue(
            self.config.queue_capacity,
            high_watermark=self.config.high_watermark,
            low_watermark=self.config.low_watermark,
            clock=clock,
        )
        self.breakers = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            half_open_trials=self.config.breaker_half_open_trials,
            clock=clock,
        )
        self.stats = ServiceStats()
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        self._draining = False
        self._state_lock = threading.Lock()
        self._in_flight: dict[str, SolveRequest] = {}
        self._idle = threading.Condition(self._state_lock)
        # Per-worker-thread LP basis stashes: thread-local to stay
        # contention-free on the hot path, registered centrally so
        # stats_snapshot() can aggregate hit/miss counters.
        self._stash_local = threading.local()
        self._stashes: list[BasisStash] = []
        # Bounded LRU of recent client request_ids -> their SolveRequest,
        # so a duplicate POST (client retry, proxy replay) reuses the
        # original future instead of burning a second solve.
        self._idempotency: OrderedDict[str, SolveRequest] = OrderedDict()
        # EWMA of observed solve seconds, feeding retry_after_estimate().
        self._avg_solve_seconds: float | None = None

    # -- Lifecycle ----------------------------------------------------------

    def start(self) -> "SolveService":
        """Spawn the worker pool (idempotent); returns self for chaining."""
        with self._state_lock:
            if self._started:
                return self
            self._started = True
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def started(self) -> bool:
        with self._state_lock:
            return self._started

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    @property
    def in_flight(self) -> int:
        with self._state_lock:
            return len(self._in_flight)

    @property
    def ready(self) -> bool:
        """True when the service can usefully accept a solve right now.

        Not-ready while unstarted or draining, and while the breaker board
        is dark (every backend the service has used is currently open) —
        a dark board means new requests would only burn their deadlines on
        skip-and-degrade paths, so readiness probes should route traffic
        elsewhere until a breaker half-opens.
        """
        with self._state_lock:
            if not self._started or self._draining:
                return False
        return not self.breakers.dark()

    # -- Admission ----------------------------------------------------------

    def _effective_deadline(self, deadline: float | None) -> float | None:
        if deadline is not None and deadline <= 0.0:
            raise ValueError(f"deadline must be > 0 seconds, got {deadline}")
        effective = deadline if deadline is not None else self.config.default_deadline
        if self.config.max_deadline is not None:
            effective = (
                self.config.max_deadline
                if effective is None
                else min(effective, self.config.max_deadline)
            )
        return effective

    def submit(
        self, instance: Instance, deadline: float | None = None
    ) -> SolveRequest:
        """Admit one solve request; never blocks.

        Raises :class:`OverloadError` when the queue is full and
        :class:`ServiceShutdownError` when the service is draining or was
        never started — both typed, both immediate, so clients learn the
        truth in microseconds rather than via a timeout.
        """
        with self._state_lock:
            if not self._started or self._draining:
                self.stats.bump("rejected_shutdown")
                raise ServiceShutdownError(
                    "service is not accepting work"
                    + (" (draining)" if self._draining else " (not started)"),
                    stage="serve",
                )
        effective = self._effective_deadline(deadline)
        request = SolveRequest(
            instance=instance,
            budget=SolveBudget(wall_clock=effective, clock=self.clock).start(),
            submitted_at=self.clock(),
            deadline=effective,
        )
        try:
            self.queue.put(request)
        except OverloadError:
            self.stats.bump("rejected_overload")
            raise
        except ServiceShutdownError:
            self.stats.bump("rejected_shutdown")
            raise
        self.stats.bump("submitted")
        return request

    def submit_idempotent(
        self,
        instance: Instance,
        deadline: float | None = None,
        *,
        request_id: str | None = None,
    ) -> tuple[SolveRequest, bool]:
        """Admit a request, deduping by client ``request_id``.

        A duplicate of a remembered id returns the *original* request (its
        future may already hold the result) with ``replayed=True`` — the
        client gets the first answer, and no second solve runs.  The
        memory is a bounded LRU (``ServiceConfig.idempotency_capacity``),
        so dedupe covers retries-in-the-window, not forever; with no
        ``request_id`` this degrades to a plain :meth:`submit`.
        """
        if request_id is None or self.config.idempotency_capacity <= 0:
            return self.submit(instance, deadline=deadline), False
        with self._state_lock:
            cached = self._idempotency.get(request_id)
            if cached is not None:
                self._idempotency.move_to_end(request_id)
                self.stats.bump("idempotent_replays")
                return cached, True
        # Admission happens outside the lock (it takes queue locks and may
        # raise typed rejections); a racing duplicate may double-solve,
        # which is the documented best-effort contract of the LRU.
        request = self.submit(instance, deadline=deadline)
        with self._state_lock:
            self._idempotency[request_id] = request
            self._idempotency.move_to_end(request_id)
            while len(self._idempotency) > self.config.idempotency_capacity:
                self._idempotency.popitem(last=False)
        return request, False

    def solve(
        self,
        instance: Instance,
        deadline: float | None = None,
        *,
        timeout: float | None = None,
    ) -> ServeOutcome:
        """Blocking convenience: submit and wait for the outcome."""
        request = self.submit(instance, deadline=deadline)
        return request.future.result(timeout=timeout)

    def retry_after_estimate(self) -> int:
        """Honest 429 ``Retry-After``: seconds until the backlog drains.

        Backlog (queued + in-flight) divided by worker parallelism, scaled
        by the observed average solve time (EWMA).  Before any solve has
        completed the estimate falls back to 1 second — the historical
        constant — and the result is always a positive whole number of
        seconds, as the HTTP header requires.
        """
        with self._state_lock:
            avg = self._avg_solve_seconds
            backlog = len(self._in_flight)
        backlog += self.queue.depth
        if avg is None or backlog == 0:
            return 1
        estimate = (backlog / self.config.workers) * avg
        return max(1, math.ceil(estimate))

    # -- The worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self.queue.get(timeout=_POLL_INTERVAL)
            if request is None:
                if self._stop.is_set():
                    return
                continue
            with self._state_lock:
                self._in_flight[request.request_id] = request
            try:
                self._handle(request)
            finally:
                with self._state_lock:
                    self._in_flight.pop(request.request_id, None)
                    self._idle.notify_all()

    def _worker_stash(self) -> BasisStash:
        """This worker thread's LP basis stash (created and registered once)."""
        stash = getattr(self._stash_local, "stash", None)
        if stash is None:
            stash = BasisStash()
            self._stash_local.stash = stash
            with self._state_lock:
                self._stashes.append(stash)
        return stash

    def _request_config(self, request: SolveRequest, shed: bool) -> ISEConfig:
        """The per-request solver config: base template + deadline + gate."""
        base = self.config.solver
        base_policy = base.resilience_policy()
        strict_effective = base.strict and not shed
        policy = ResiliencePolicy(
            strict=strict_effective,
            # subbudget(): queue wait already spent part of the deadline.
            budget=request.budget.subbudget(),
            retry=self.config.retry,
            lp_chain=base_policy.lp_chain,
            mm_chain=(self.config.shed_mm,) if shed else base_policy.mm_chain,
            pipeline_fallback=base_policy.pipeline_fallback,
            gate=self.breakers,
        )
        warm = self.config.lp_warm_start
        return dataclasses.replace(
            base,
            strict=strict_effective,
            mm_algorithm=self.config.shed_mm if shed else base.mm_algorithm,
            timeout=None,
            resilience=policy,
            lp_warm_start=warm or base.lp_warm_start,
            lp_warm_stash=self._worker_stash() if warm else base.lp_warm_stash,
            verify=self.config.verify_results or base.verify,
        )

    def _handle(self, request: SolveRequest) -> None:
        now = self.clock()
        if request.budget.expired:
            # The deadline died in the queue; don't burn a solve on it.
            self.stats.bump("timed_out")
            request.future.set_exception(
                StageTimeoutError(
                    f"request {request.request_id} spent its deadline "
                    f"({request.deadline:g}s) waiting in the queue",
                    stage="serve",
                    elapsed=request.queue_wait(now),
                )
            )
            return
        shed = self.queue.shedding
        request.shed = shed
        cfg = self._request_config(request, shed)
        tic = self.clock()
        try:
            try:
                result = self.solve_fn(request.instance, cfg)
            except CertificationError as exc:
                result = self._repair_or_quarantine(request, cfg, exc)
        except ReproError as exc:
            if isinstance(exc, StageTimeoutError):
                self.stats.bump("timed_out")
            else:
                self.stats.bump("failed")
            request.future.set_exception(exc)
        except Exception as exc:  # noqa: BLE001 — a worker must not die
            self.stats.bump("failed")
            wrapped = SolverError(
                f"solve crashed for request {request.request_id}: {exc}",
                stage="serve",
                elapsed=max(0.0, self.clock() - tic),
            )
            wrapped.__cause__ = exc
            request.future.set_exception(wrapped)
        else:
            self.stats.bump("completed")
            if shed:
                self.stats.bump("shed_solves")
            if getattr(result, "certificate", None) is not None:
                self.stats.bump("verified")
            self._record_lp_telemetry(result)
            solve_seconds = max(0.0, self.clock() - tic)
            with self._state_lock:
                if self._avg_solve_seconds is None:
                    self._avg_solve_seconds = solve_seconds
                else:
                    self._avg_solve_seconds = (
                        0.8 * self._avg_solve_seconds + 0.2 * solve_seconds
                    )
            request.future.set_result(
                ServeOutcome(
                    result=result,
                    request_id=request.request_id,
                    shed=shed,
                    queue_wait=request.queue_wait(tic),
                    solve_seconds=solve_seconds,
                )
            )

    def _repair_or_quarantine(
        self, request: SolveRequest, cfg: ISEConfig, failure: CertificationError
    ) -> Any:
        """One certified cold re-solve after a failed certificate.

        The likeliest corruption vector for a bad result is shared mutable
        state — above all a poisoned warm-start basis — so the repair dumps
        this worker's entire stash, disables warm starting for the retry,
        and re-solves under whatever deadline budget the request has left,
        still in verified mode.  A passing repair is returned (and counted
        as ``repaired``); any failure quarantines the request — the
        original :class:`CertificationError` propagates and the caller
        never sees the uncertified schedule.
        """
        if self.config.lp_warm_start:
            self._worker_stash().clear()
        policy = cfg.resilience
        if policy is not None:
            policy = dataclasses.replace(
                policy, budget=request.budget.subbudget()
            )
        cold_cfg = dataclasses.replace(
            cfg,
            lp_warm_start=False,
            lp_warm_stash=None,
            resilience=policy,
        )
        try:
            result = self.solve_fn(request.instance, cold_cfg)
        except ReproError as exc:
            self.stats.bump("quarantined")
            if isinstance(exc, CertificationError):
                raise
            raise failure from exc
        self.stats.bump("repaired")
        return result

    def _record_lp_telemetry(self, result: Any) -> None:
        """Fold a solve's LP attempt telemetry into the service counters.

        Tolerates arbitrary ``solve_fn`` results (chaos tests inject fakes
        with no resilience report) — missing telemetry simply counts
        nothing.
        """
        report = getattr(result, "resilience", None)
        attempts = getattr(report, "attempts", None) or ()
        for attempt in attempts:
            if attempt.stage != "lp" or not attempt.ok:
                continue
            self.stats.bump("lp_solves")
            detail = attempt.detail or {}
            if detail.get("warm_started"):
                self.stats.bump("lp_warm_solves")
            self.stats.bump("lp_iterations", int(detail.get("iterations", 0)))

    # -- Drain ---------------------------------------------------------------

    def shutdown(self, drain_deadline: float | None = None) -> DrainReport:
        """Stop admission, drain within the deadline, abandon the rest.

        Idempotent in effect: a second call finds nothing to drain.  The
        drain wait runs on real time (``time.monotonic``) because it waits
        on OS-level conditions; the injected clock only times measurements.
        """
        deadline = (
            drain_deadline
            if drain_deadline is not None
            else self.config.drain_deadline
        )
        wait_clock = time.monotonic
        started = wait_clock()
        processed_before = self.stats.processed()
        with self._state_lock:
            self._draining = True
        self.queue.close()

        # Wait for queued work to be picked up and in-flight work to finish.
        with self._idle:
            while wait_clock() - started < deadline:
                if self.queue.depth == 0 and not self._in_flight:
                    break
                remaining = deadline - (wait_clock() - started)
                self._idle.wait(timeout=min(_POLL_INTERVAL, max(0.0, remaining)))

        # Abandon whatever the deadline stranded: queued requests get a
        # typed error now; in-flight ones are counted but left to their
        # (daemon) workers — their futures still resolve eventually.
        abandoned_queued = 0
        for request in self.queue.drain_remaining():
            abandoned_queued += 1
            self.stats.bump("abandoned")
            request.future.set_exception(
                ServiceShutdownError(
                    f"request {request.request_id} abandoned: service "
                    f"drain deadline ({deadline:g}s) expired before a "
                    "worker picked it up",
                    stage="serve",
                )
            )
        with self._state_lock:
            abandoned_in_flight = len(self._in_flight)
        self.stats.bump("abandoned", abandoned_in_flight)

        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=max(2 * _POLL_INTERVAL, 0.5))
        return DrainReport(
            drained=self.stats.processed() - processed_before,
            abandoned_queued=abandoned_queued,
            abandoned_in_flight=abandoned_in_flight,
            duration=wait_clock() - started,
        )

    # -- Observability -------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """JSON-ready service state for ``/stats`` and operator logs."""
        return {
            "counters": self.stats.to_dict(),
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.queue.capacity,
                "high_watermark": self.queue.high_watermark,
                "low_watermark": self.queue.low_watermark,
                "peak_depth": self.queue.peak_depth,
                "rejected": self.queue.rejected,
                "shedding": self.queue.shedding,
            },
            "in_flight": self.in_flight,
            "workers": self.config.workers,
            "draining": self.draining,
            "ready": self.ready,
            "retry_after": self.retry_after_estimate(),
            "breakers": self.breakers.snapshot(),
            "lp_basis_stash": self._stash_summary(),
        }

    def _stash_summary(self) -> dict[str, int]:
        """Aggregated per-worker basis-stash counters for ``/stats``."""
        with self._state_lock:
            stashes = list(self._stashes)
        summary = {
            "stashes": len(stashes),
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
        }
        for stash in stashes:
            snap = stash.snapshot()
            summary["entries"] += snap["entries"]
            summary["hits"] += snap["hits"]
            summary["misses"] += snap["misses"]
            summary["evictions"] += snap["evictions"]
        return summary
