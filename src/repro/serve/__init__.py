"""The supervised solve service (serve layer).

Everything the library needs to run as a long-lived service rather than a
one-shot solver: bounded admission with typed overload rejection
(:mod:`repro.serve.queue`), per-backend circuit breakers
(:mod:`repro.serve.breaker`), the worker-pool supervisor with deadline
propagation, load shedding, and graceful drain
(:mod:`repro.serve.service`), the fenced session manager fronting durable
online sessions (:mod:`repro.serve.sessions`), and a stdlib JSON/HTTP
frontend (:mod:`repro.serve.http`), wired into the CLI as ``repro-ise
serve``.

The dependency points one way: this package imports :mod:`repro.core`;
the core never imports this package (the breaker board plugs into the
fallback chains through the :class:`~repro.core.resilience.FallbackGate`
protocol).
"""

from .breaker import BreakerBoard, CircuitBreaker
from .http import SolveHTTPServer, make_server
from .queue import AdmissionQueue, SolveRequest
from .service import (
    DrainReport,
    ServeOutcome,
    ServiceConfig,
    ServiceStats,
    SolveService,
)
from .sessions import SessionManager, SessionSnapshot

__all__ = [
    "AdmissionQueue",
    "SolveRequest",
    "CircuitBreaker",
    "BreakerBoard",
    "ServiceConfig",
    "ServeOutcome",
    "ServiceStats",
    "DrainReport",
    "SolveService",
    "SessionManager",
    "SessionSnapshot",
    "SolveHTTPServer",
    "make_server",
]
