"""Bounded admission queue with watermark-based load shedding.

The service's first line of defense is *backpressure, not buffering*: a
bounded queue that rejects immediately — with a typed
:class:`~repro.core.errors.OverloadError` carrying the queue depth and
capacity — the moment it is full.  An unbounded queue converts overload
into unbounded latency, which clients experience as mysterious timeouts;
a bounded one converts it into a fast, honest "try elsewhere / try later".

Two watermarks give the supervisor a *shedding* signal with hysteresis:
crossing the high watermark flips the queue into shedding mode (the
workers switch to ``strict=False`` + cheap MM chains so the backlog burns
down faster), and the flag clears only once depth falls back to the low
watermark.  Hysteresis prevents the policy from flapping at the boundary.

Each admitted request carries a client deadline converted into a started
:class:`~repro.core.resilience.SolveBudget` at admission time, so time
spent *waiting in the queue* counts against the deadline; the worker later
snapshots the remainder via ``SolveBudget.subbudget()`` and the existing
budget machinery enforces it all the way down to the simplex pivot loop.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, TypeVar

from ..core.errors import OverloadError, ServiceShutdownError
from ..core.job import Instance
from ..core.resilience import SolveBudget

__all__ = ["AdmissionQueue", "SolveRequest"]

T = TypeVar("T")

#: Request-id allocation is lock-guarded: ``SolveRequest`` is constructed
#: from every submitting client thread concurrently, and ``next()`` on a
#: shared iterator is not guaranteed atomic across implementations.
_REQUEST_IDS = itertools.count(1)
_REQUEST_ID_LOCK = threading.Lock()


def _next_request_id() -> str:
    with _REQUEST_ID_LOCK:
        return f"req-{next(_REQUEST_IDS)}"


@dataclass
class SolveRequest:
    """One admitted solve request and the promise of its answer.

    Attributes:
        instance: the ISE instance to solve.
        budget: wall-clock budget, *started at admission* — queue wait
            spends the client's deadline, exactly as it should.
        future: resolved by a worker with a ``ServeOutcome`` (see
            :mod:`repro.serve.service`) or a typed :class:`ReproError`.
        request_id: unique id echoed in responses and logs.
        submitted_at: admission timestamp on the service clock.
        deadline: the effective deadline in seconds (None = unlimited).
        shed: set by the worker when the request was solved under the
            load-shedding policy (cheap chains, non-strict).
    """

    instance: Instance
    budget: SolveBudget
    future: "Future[Any]" = field(default_factory=Future)
    request_id: str = ""
    submitted_at: float = 0.0
    deadline: float | None = None
    shed: bool = False

    def __post_init__(self) -> None:
        if not self.request_id:
            self.request_id = _next_request_id()

    def queue_wait(self, now: float) -> float:
        """Seconds between admission and ``now`` on the service clock."""
        return max(0.0, now - self.submitted_at)


class AdmissionQueue(Generic[T]):
    """A bounded FIFO with immediate typed rejection and shed watermarks.

    Thread-safe.  ``put`` never blocks: a full queue raises
    :class:`OverloadError` and a closed queue raises
    :class:`ServiceShutdownError` — admission control happens at the edge,
    not deep in a worker.  ``get`` blocks up to a timeout so workers can
    poll their stop flag.

    The watermark state machine: depth reaching ``high_watermark`` sets
    ``shedding``; it clears only when depth falls to ``low_watermark`` or
    below.  With ``low < high`` this is hysteresis, not a threshold.
    """

    def __init__(
        self,
        capacity: int,
        *,
        high_watermark: int | None = None,
        low_watermark: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.high_watermark = (
            high_watermark if high_watermark is not None else max(1, (3 * capacity) // 4)
        )
        self.low_watermark = (
            low_watermark if low_watermark is not None else capacity // 4
        )
        if not 0 <= self.low_watermark < self.high_watermark <= capacity:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= capacity, got "
                f"low={self.low_watermark} high={self.high_watermark} "
                f"capacity={capacity}"
            )
        self.clock = clock
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._shedding = False
        self._rejected = 0
        self._peak_depth = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def shedding(self) -> bool:
        """True while the queue is between its watermarks on the way down."""
        with self._lock:
            return self._shedding

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def rejected(self) -> int:
        """Requests turned away with :class:`OverloadError` so far."""
        with self._lock:
            return self._rejected

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    def _update_watermarks_locked(self) -> None:
        depth = len(self._items)
        if depth >= self.high_watermark:
            self._shedding = True
        elif depth <= self.low_watermark:
            self._shedding = False

    def put(self, item: T) -> None:
        """Admit ``item`` or reject immediately with a typed error."""
        with self._lock:
            if self._closed:
                raise ServiceShutdownError(
                    "service is draining; admission is closed", stage="serve"
                )
            if len(self._items) >= self.capacity:
                self._rejected += 1
                raise OverloadError(
                    "admission queue is full; request shed",
                    depth=len(self._items),
                    capacity=self.capacity,
                    stage="serve",
                )
            self._items.append(item)
            self._peak_depth = max(self._peak_depth, len(self._items))
            self._update_watermarks_locked()
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> T | None:
        """Pop the oldest item, waiting up to ``timeout``; None on timeout."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            item = self._items.popleft()
            self._update_watermarks_locked()
            return item

    def close(self) -> None:
        """Stop admission (idempotent); queued items remain to be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> list[T]:
        """Remove and return everything still queued (for abandonment)."""
        with self._lock:
            leftover = list(self._items)
            self._items.clear()
            self._update_watermarks_locked()
            return leftover
