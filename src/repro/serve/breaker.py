"""Per-backend circuit breakers for the solve service's fallback chains.

A failing backend inside a fallback chain still costs every request its
timeout before the chain moves on.  A circuit breaker remembers: after
``failure_threshold`` consecutive failures the breaker *opens* and the
chain skips that backend outright (recorded as a ``"skipped"``
:class:`~repro.core.resilience.StageAttempt` on the
:class:`~repro.core.resilience.ResilienceReport`).  After
``reset_timeout`` seconds the breaker goes *half-open* and admits a
bounded number of probe attempts: one success closes it, one failure
re-opens it for another full timeout.

The board (:class:`BreakerBoard`) implements the core layer's
:class:`~repro.core.resilience.FallbackGate` protocol, which is how an
open breaker plugs into :func:`~repro.core.resilience.run_with_fallbacks`
without the core layer ever importing this module.

Clocks are injectable (the :class:`~repro.testing.faults.FakeClock`
convention), so breaker timing is deterministic in tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-counting state machine: closed -> open -> half-open.

    Not thread-safe on its own; :class:`BreakerBoard` serializes access
    under one lock (breaker operations are a handful of float/int updates,
    so one board-wide lock is cheaper than a lock per breaker).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        half_open_trials: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0.0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if half_open_trials < 1:
            raise ValueError(
                f"half_open_trials must be >= 1, got {half_open_trials}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self.clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_admitted = 0
        self.times_opened = 0
        self.successes = 0
        self.failures = 0
        self.skips = 0

    @property
    def state(self) -> str:
        """Current state, applying the open -> half-open timer lazily."""
        if self._state == OPEN and (
            self.clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probes_admitted = 0
        return self._state

    def allow(self) -> str | None:
        """None to admit an attempt; a human-readable reason to skip it."""
        state = self.state
        if state == CLOSED:
            return None
        if state == HALF_OPEN:
            if self._probes_admitted < self.half_open_trials:
                self._probes_admitted += 1
                return None
            self.skips += 1
            return (
                f"circuit breaker half-open: {self.half_open_trials} probe(s) "
                "already in flight"
            )
        self.skips += 1
        retry_in = max(
            0.0, self.reset_timeout - (self.clock() - self._opened_at)
        )
        return (
            f"circuit breaker open after {self._consecutive_failures} "
            f"consecutive failure(s); probes resume in {retry_in:.1f}s"
        )

    def record(self, ok: bool) -> None:
        """Observe one attempt's outcome and advance the state machine."""
        state = self.state
        if ok:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = CLOSED
            return
        self.failures += 1
        self._consecutive_failures += 1
        if state == HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
            # A failed probe, or the threshold reached: (re)open for a
            # full reset_timeout from now.
            if self._state != OPEN:
                self.times_opened += 1
            self._state = OPEN
            self._opened_at = self.clock()

    def snapshot(self) -> dict[str, object]:
        """JSON-ready state for ``/stats`` and drain logs."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "times_opened": self.times_opened,
            "successes": self.successes,
            "failures": self.failures,
            "skips": self.skips,
        }


class BreakerBoard:
    """One breaker per ``(stage, backend)`` pair, as a FallbackGate.

    Breakers are created lazily on first sight of a backend, all sharing
    the board's thresholds and clock.  The board is thread-safe: the
    worker pool's threads consult and update it concurrently.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        half_open_trials: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_trials = half_open_trials
        self.clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(stage: str, backend: str) -> str:
        return f"{stage}:{backend}"

    def _breaker_locked(self, stage: str, backend: str) -> CircuitBreaker:
        key = self._key(stage, backend)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                half_open_trials=self.half_open_trials,
                clock=self.clock,
            )
            self._breakers[key] = breaker
        return breaker

    # -- FallbackGate protocol ---------------------------------------------

    def allow(self, stage: str, backend: str) -> str | None:
        """Veto reason when the breaker for this backend is open."""
        with self._lock:
            reason = self._breaker_locked(stage, backend).allow()
        if reason is None:
            return None
        return f"{self._key(stage, backend)}: {reason}"

    def record_outcome(self, stage: str, backend: str, ok: bool) -> None:
        """Feed one attempt outcome into the backend's breaker."""
        with self._lock:
            self._breaker_locked(stage, backend).record(ok)

    # -- Observability ------------------------------------------------------

    def states(self) -> dict[str, str]:
        with self._lock:
            return {key: b.state for key, b in self._breakers.items()}

    def dark(self, stage: str | None = None) -> bool:
        """True when every known breaker (for ``stage``, if given) is open.

        "Dark" means no backend the service has ever used is currently
        admitting work — the readiness probe turns not-ready so load
        balancers route elsewhere.  A board that has seen no traffic is
        not dark.
        """
        with self._lock:
            states = [
                b.state
                for key, b in self._breakers.items()
                if stage is None or key.startswith(f"{stage}:")
            ]
        return bool(states) and all(s == OPEN for s in states)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready per-breaker state for ``/stats``."""
        with self._lock:
            return {key: b.snapshot() for key, b in sorted(self._breakers.items())}
