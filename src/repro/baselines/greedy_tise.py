"""A direct lazy-greedy heuristic for long-window ISE (LP-free baseline).

The Section 3 pipeline buys its worst-case guarantee with an LP solve and
constant-factor machinery.  This baseline asks: how well does plain lazy
greed do on the same inputs?

Strategy (in the spirit of Bender et al.'s lazy binning, generalized to
non-unit jobs through the TISE restriction):

1. among unscheduled jobs, find the most urgent TISE-latest point
   ``L = min_j (d_j - T)``;
2. open one calibration at exactly ``L`` — as late as that job permits
   (laziness maximizes how many other windows contain the calibration);
3. fill it with eligible unscheduled jobs (TISE-feasible at ``L``) in EDF
   order under the capacity ``T``, always including the urgent job first;
4. repeat; finally pack the calibrations onto machines by interval coloring.

Always succeeds on long-window instances (every job is eligible at its own
latest point), uses no LP, and has no approximation guarantee — the BASE2
bench measures where it beats the Theorem 12 pipeline and where it loses.
"""

from __future__ import annotations

from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import InvalidInstanceError, SolverError
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, leq
from ..longwindow.tise import tise_feasible_for
from ..mm.base import color_intervals

__all__ = ["lazy_tise_greedy"]


def lazy_tise_greedy(instance: Instance) -> Schedule:
    """Greedy lazy calibration placement for long-window jobs.

    Raises :class:`InvalidInstanceError` if any job has a short window
    (``d - r < 2T``): short jobs admit no TISE placement discipline and
    belong to the Section 4 pipeline.
    """
    T = instance.calibration_length
    for job in instance.jobs:
        if not job.is_long(T):
            raise InvalidInstanceError(
                f"lazy_tise_greedy requires long-window jobs; job "
                f"{job.job_id} has window {job.window} < 2T"
            )

    unscheduled: dict[int, Job] = {j.job_id: j for j in instance.jobs}
    calibration_plan: list[tuple[float, list[tuple[Job, float]]]] = []

    while unscheduled:
        urgent = min(unscheduled.values(), key=lambda j: (j.deadline - T, j.job_id))
        t = urgent.deadline - T  # as late as the urgent job permits
        # Fill: urgent job first, then other eligible jobs EDF-first.
        contents: list[tuple[Job, float]] = []
        used = 0.0
        eligible = [
            j
            for j in unscheduled.values()
            if tise_feasible_for(j, t, T)
        ]
        eligible.sort(key=lambda j: (j.deadline, j.job_id))
        if not any(j.job_id == urgent.job_id for j in eligible):
            raise SolverError(
                f"job {urgent.job_id} is not TISE-eligible at its own "
                "latest calibration point — tise_feasible_for is "
                "inconsistent with the urgency order",
                stage="baseline",
                backend="lazy_tise_greedy",
            )
        # Guarantee the urgent job a slot by placing it first.
        ordered = [urgent] + [j for j in eligible if j.job_id != urgent.job_id]
        for job in ordered:
            if leq(used + job.processing, T):
                contents.append((job, t + used))
                used += job.processing
                del unscheduled[job.job_id]
        calibration_plan.append((t, contents))

    # Machine assignment: optimal interval coloring of the calibrations.
    intervals = [
        (idx, t, t + T) for idx, (t, _) in enumerate(calibration_plan)
    ]
    coloring = color_intervals(intervals)
    machines = max(coloring.values(), default=-1) + 1

    calibrations = tuple(
        Calibration(start=t, machine=coloring[idx])
        for idx, (t, _) in enumerate(calibration_plan)
    )
    placements = tuple(
        ScheduledJob(start=start, machine=coloring[idx], job_id=job.job_id)
        for idx, (_, contents) in enumerate(calibration_plan)
        for job, start in contents
    )
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=calibrations,
            num_machines=max(machines, 1),
            calibration_length=T,
        ),
        placements=placements,
    )
