"""Baselines: naive policies, prior-work lazy binning, and exact solvers."""

from .bender_unit import edf_feasible_from, lazy_binning, simulate_edf_from
from .exact import exact_unit_calibrations, tise_milp_bound, unit_matching_feasible
from .greedy_tise import lazy_tise_greedy
from .naive import always_calibrated, one_calibration_per_job

__all__ = [
    "one_calibration_per_job",
    "always_calibrated",
    "lazy_tise_greedy",
    "lazy_binning",
    "edf_feasible_from",
    "simulate_edf_from",
    "tise_milp_bound",
    "exact_unit_calibrations",
    "unit_matching_feasible",
]
