"""Naive ISE baselines.

Two strawmen that bracket the solution space from above:

* :func:`one_calibration_per_job` — calibrate once per job, at the job's
  witness-free earliest start.  Always feasible, always ``n`` calibrations;
  the paper's algorithms should beat it by the factor at which jobs can
  share calibrations.
* :func:`always_calibrated` — keep ``w`` machines calibrated back-to-back
  over the whole horizon and schedule jobs greedily into that calendar
  (growing ``w`` until the greedy succeeds).  This models the pre-ISE
  operational policy ("never let a tester go uncalibrated"); its calibration
  count scales with the *horizon*, not the workload, so bursty instances
  make it arbitrarily bad (bench T1 shows the gap).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import SolverError
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import EPS, leq
from ..mm.base import color_intervals

__all__ = ["one_calibration_per_job", "always_calibrated"]


def one_calibration_per_job(instance: Instance) -> Schedule:
    """One dedicated calibration (and execution) per job.

    Each job runs at its release time inside a fresh calibration opened at
    the same moment; the calibration intervals are packed onto machines with
    an optimal interval coloring.  Always feasible because
    ``d_j >= r_j + p_j`` and ``p_j <= T``.
    """
    T = instance.calibration_length
    intervals = [
        (job.job_id, job.release, job.release + T) for job in instance.jobs
    ]
    coloring = color_intervals(intervals)
    machines = max(coloring.values(), default=-1) + 1
    calibrations = tuple(
        Calibration(start=job.release, machine=coloring[job.job_id])
        for job in instance.jobs
    )
    placements = tuple(
        ScheduledJob(
            start=job.release, machine=coloring[job.job_id], job_id=job.job_id
        )
        for job in instance.jobs
    )
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=calibrations,
            num_machines=max(machines, 1),
            calibration_length=T,
        ),
        placements=placements,
    )


def _greedy_into_calendar(
    jobs: Sequence[Job], w: int, origin: float, horizon_end: float, T: float
) -> list[ScheduledJob] | None:
    """EDF list scheduling constrained to the back-to-back calendar.

    Machines are calibrated at ``origin + k*T`` for all k; a job must fit
    inside one calendar cell, so its start may need rounding up to the next
    cell boundary.
    """
    free = [origin] * w
    placements: list[ScheduledJob] = []
    for job in sorted(jobs, key=lambda j: (j.deadline, j.release, j.job_id)):
        best = None  # (start, machine)
        for machine in range(w):
            start = max(job.release, free[machine])
            # Round up if the execution would cross a cell boundary.
            cell = math.floor((start - origin) / T + EPS)
            cell_end = origin + (cell + 1) * T
            if start + job.processing > cell_end + EPS:
                start = cell_end
            if best is None or start < best[0] - EPS:
                best = (start, machine)
        if best is None:
            raise SolverError(
                "always-calibrated packing found no machine slot "
                f"(w = {w})",
                stage="baseline",
                backend="naive",
            )
        start, machine = best
        if not leq(start + job.processing, job.deadline):
            return None
        placements.append(
            ScheduledJob(start=start, machine=machine, job_id=job.job_id)
        )
        free[machine] = start + job.processing
    return placements


def _fits_calendar(job: Job, origin: float, T: float) -> bool:
    """Can the job run inside *some* calendar cell on an empty machine?"""
    cell = math.floor((job.release - origin) / T + EPS)
    for b in (origin + cell * T, origin + (cell + 1) * T):
        start = max(job.release, b)
        if leq(start + job.processing, min(b + T, job.deadline)):
            return True
    return False


def always_calibrated(instance: Instance, max_machines: int | None = None) -> Schedule:
    """Calibrate ``w`` machines continuously over the horizon; grow ``w`` as needed.

    The calendar spans ``[min r_j, max d_j)`` with back-to-back calibrations;
    jobs are EDF-list-scheduled into it.  The returned schedule keeps every
    calendar calibration (that is the point of this baseline — its cost is
    ``w * ceil(horizon / T)``), even empty ones.

    Rigid jobs whose window fits no calendar cell (e.g. ``r_j = 0.6 T``,
    ``p_j = 0.8 T``) get dedicated off-grid calibrations on extra machines —
    the policy's real-world escape hatch.
    """
    if not instance.jobs:
        return Schedule(
            calibrations=CalibrationSchedule(
                calibrations=(),
                num_machines=0,
                calibration_length=instance.calibration_length,
            ),
            placements=(),
        )
    T = instance.calibration_length
    origin, horizon_end = instance.horizon
    num_cells = max(1, math.ceil((horizon_end - origin) / T - EPS))

    gridable = [j for j in instance.jobs if _fits_calendar(j, origin, T)]
    overflow = [j for j in instance.jobs if not _fits_calendar(j, origin, T)]

    limit = max_machines if max_machines is not None else max(1, len(gridable))
    placements: list[ScheduledJob] | None = []
    w = 0
    if gridable:
        for w in range(1, limit + 1):
            placements = _greedy_into_calendar(gridable, w, origin, horizon_end, T)
            if placements is not None:
                break
        if placements is None:
            raise SolverError(
                f"always_calibrated failed with up to {limit} machines — "
                "greedy calendar packing could not fit the jobs",
                stage="baseline",
                backend="always_calibrated",
            )
    calibrations = [
        Calibration(start=origin + k * T, machine=machine)
        for machine in range(w)
        for k in range(num_cells)
    ]
    # Off-grid overflow: dedicated calibrations, optimally colored.
    if overflow:
        intervals = [(j.job_id, j.release, j.release + T) for j in overflow]
        coloring = color_intervals(intervals)
        extra = max(coloring.values()) + 1
        for job in overflow:
            machine = w + coloring[job.job_id]
            calibrations.append(Calibration(start=job.release, machine=machine))
            placements.append(
                ScheduledJob(start=job.release, machine=machine, job_id=job.job_id)
            )
        w += extra
    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=max(w, 1),
            calibration_length=T,
        ),
        placements=tuple(placements),
    )
