"""Unit-job baselines in the style of Bender et al. [5] (lazy binning).

The paper's prior work (Bender, Bunde, Leung, McCauley, Phillips, SPAA 2013)
solves the ``p_j = 1`` special case: an optimal greedy for one machine and a
2-approximation for ``m`` machines, both built on *lazy binning* — delay the
start of the next calibration as long as every remaining job can still be
EDF-scheduled on continuously-calibrated machines from that start.

This module is a faithful-in-spirit reimplementation of that idea (the
precise pseudocode lives in [5], not in the reproduced paper): the
single-machine variant is cross-checked against the exact unit-job solver in
tests, and the multi-machine variant is the UNIT bench's prior-work
baseline.  All times must be integral and all processing times 1.

Unit jobs make per-slot EDF exact: scheduling unit jobs into unit slots is a
bipartite matching problem, and picking the earliest-deadline released job
for every active slot realizes a maximum matching, so the feasibility check
is not heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.calibration import Calibration, CalibrationSchedule
from ..core.errors import (
    InfeasibleInstanceError,
    InvalidInstanceError,
    SolverError,
)
from ..core.job import Instance, Job
from ..core.schedule import Schedule, ScheduledJob
from ..core.tolerance import close

__all__ = ["lazy_binning", "edf_feasible_from", "simulate_edf_from"]


def _require_unit_integral(jobs: Sequence[Job]) -> None:
    for job in jobs:
        if not close(job.processing, 1.0):
            raise InvalidInstanceError(
                f"lazy binning requires unit jobs; job {job.job_id} has "
                f"p = {job.processing}"
            )
        if not close(job.release, round(job.release)) or not close(
            job.deadline, round(job.deadline)
        ):
            raise InvalidInstanceError(
                f"lazy binning requires integral times; job {job.job_id} has "
                f"window [{job.release}, {job.deadline})"
            )


@dataclass(frozen=True)
class _SlotAssignment:
    slot: int
    job: Job
    machine: int


def simulate_edf_from(
    jobs: Sequence[Job], start: int, machine_available: Sequence[int]
) -> list[_SlotAssignment] | None:
    """EDF-schedule unit ``jobs`` assuming machine ``i`` is continuously
    active from ``max(start, machine_available[i])``.

    Returns the slot assignments, or None if some job must miss its
    deadline.  For unit jobs this greedy is exact (maximum bipartite
    matching), so None certifies infeasibility under that activity pattern.
    """
    if not jobs:
        return []
    active_from = [max(start, int(a)) for a in machine_available]
    releases = sorted(jobs, key=lambda j: (j.release, j.deadline, j.job_id))
    idx = 0
    pending: list[Job] = []
    out: list[_SlotAssignment] = []
    s = max(start, min(int(j.release) for j in jobs))
    horizon = max(int(j.deadline) for j in jobs)
    while s < horizon and (idx < len(releases) or pending):
        while idx < len(releases) and int(releases[idx].release) <= s:
            pending.append(releases[idx])
            idx += 1
        if not pending:
            s = int(releases[idx].release)
            continue
        machines = sorted(i for i in range(len(active_from)) if active_from[i] <= s)
        pending.sort(key=lambda j: (j.deadline, j.job_id))
        for machine, job in zip(machines, list(pending[: len(machines)])):
            if int(job.deadline) <= s:
                return None
            out.append(_SlotAssignment(slot=s, job=job, machine=machine))
            pending.remove(job)
        if pending and min(int(j.deadline) for j in pending) <= s + 1:
            return None
        s += 1
    if idx < len(releases) or pending:
        return None
    return out


def edf_feasible_from(
    jobs: Sequence[Job], start: int, machine_available: Sequence[int]
) -> bool:
    """True iff :func:`simulate_edf_from` succeeds."""
    return simulate_edf_from(jobs, start, machine_available) is not None


def _latest_feasible_start(
    jobs: Sequence[Job], lower: int, machine_available: Sequence[int]
) -> int:
    """Largest ``t >= lower`` with ``edf_feasible_from(jobs, t)``.

    Feasibility is monotone nonincreasing in ``t`` (delaying activity only
    removes usable slots), which makes binary search valid.
    """
    if not edf_feasible_from(jobs, lower, machine_available):
        raise InfeasibleInstanceError(
            f"unit instance infeasible from t = {lower} on "
            f"{len(machine_available)} machine(s)"
        )
    hi = max(int(j.deadline) for j in jobs)
    lo = lower
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if edf_feasible_from(jobs, mid, machine_available):
            lo = mid
        else:
            hi = mid - 1
    return lo


def lazy_binning(instance: Instance) -> Schedule:
    """Lazy binning for unit jobs on ``m`` machines.

    Round structure:

    1. find the latest ``t`` from which all remaining jobs are EDF-feasible
       on machines active from ``max(t, avail_i)``;
    2. run that EDF simulation; machine ``i``'s new calibration would start
       at ``c_i = max(t, avail_i)`` (never overlapping its previous one);
    3. commit only the simulation's assignments falling inside
       ``[c_i, c_i + T)`` on each used machine, open those calibrations,
       and recurse on the rest.

    The committed prefix is exactly a prefix of the feasibility witness, so
    later rounds can never become infeasible.  Optimal for one machine
    (cross-checked against the exact unit solver in tests); a lazy-binning
    heuristic in the spirit of [5]'s 2-approximation for ``m > 1``.
    """
    _require_unit_integral(instance.jobs)
    T = int(instance.calibration_length)
    if not close(instance.calibration_length, T):
        raise InvalidInstanceError("lazy binning requires integral T")
    m = instance.machines

    remaining: dict[int, Job] = {j.job_id: j for j in instance.jobs}
    floor = min((int(j.release) for j in instance.jobs), default=0)
    available = [floor] * m
    calibrations: list[Calibration] = []
    placements: list[ScheduledJob] = []

    guard = 0
    while remaining:
        guard += 1
        if guard > 4 * len(instance.jobs) + 8:
            raise SolverError(
                "lazy binning failed to make progress",
                stage="baseline",
                backend="bender_unit",
            )
        jobs_left = list(remaining.values())
        lower = min(available)
        t = _latest_feasible_start(jobs_left, lower, available)
        witness = simulate_edf_from(jobs_left, t, available)
        if witness is None:
            raise SolverError(
                f"lazy binning's latest-feasible search returned t = {t} "
                "but EDF simulation from t is infeasible",
                stage="baseline",
                backend="bender_unit",
            )
        commit: list[_SlotAssignment] = []
        for assignment in witness:
            c = max(t, available[assignment.machine])
            if c <= assignment.slot < c + T:
                commit.append(assignment)
        if not commit:
            # Degenerate: the witness schedules everything beyond the first
            # calibration window (possible when releases are far away).
            # Force progress by committing the earliest assignment.
            first = min(witness, key=lambda a: (a.slot, a.machine))
            commit = [
                a
                for a in witness
                if a.machine == first.machine
                and first.slot <= a.slot < first.slot + T
            ]
            calibrations.append(
                Calibration(start=float(first.slot), machine=first.machine)
            )
            available[first.machine] = first.slot + T
        else:
            used = sorted({a.machine for a in commit})
            for machine in used:
                c = max(t, available[machine])
                calibrations.append(Calibration(start=float(c), machine=machine))
                available[machine] = c + T
        for assignment in commit:
            placements.append(
                ScheduledJob(
                    start=float(assignment.slot),
                    machine=assignment.machine,
                    job_id=assignment.job.job_id,
                )
            )
            del remaining[assignment.job.job_id]

    return Schedule(
        calibrations=CalibrationSchedule(
            calibrations=tuple(calibrations),
            num_machines=m,
            calibration_length=float(T),
        ),
        placements=tuple(placements),
    )
